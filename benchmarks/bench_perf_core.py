"""Perf-core microbenchmark: large-n execution throughput.

Unlike the E1–E12 experiment benchmarks (which time whole experiment
tables), this one times the simulation core itself on the profile the
paper's headline experiments depend on: a quadratic-BA execution at large
n, where certificate verification and delivery fan-out dominate.  Run with
``pytest benchmarks/bench_perf_core.py``; record the tracked numbers with
``python scripts/record_bench.py``.

The scaling sweep behind BENCH_core.json's ``scaling-curve`` profile is
also runnable directly, on any n grid::

    PYTHONPATH=src python benchmarks/bench_perf_core.py \
        --n-grid 96,192,384 [--families quadratic,subquadratic] [--seed 1]
"""

import argparse

from repro.harness.runner import run_instance
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba


def _run_quadratic(n, f, seed=1, **kwargs):
    instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=seed)
    return run_instance(instance, f, seed=seed, **kwargs)


def bench_quadratic_ba_n96(benchmark):
    result = benchmark.pedantic(
        lambda: _run_quadratic(96, 47), rounds=3, iterations=1)
    assert result.consistent()


def bench_quadratic_ba_n192(benchmark):
    result = benchmark.pedantic(
        lambda: _run_quadratic(192, 95), rounds=1, iterations=1)
    assert result.consistent()


def bench_quadratic_ba_n192_metrics_only(benchmark):
    """Same profile without transcript retention (long-execution mode)."""
    result = benchmark.pedantic(
        lambda: _run_quadratic(192, 95, transcript_retention="metrics-only"),
        rounds=1, iterations=1)
    assert result.consistent()
    assert result.transcript == []


def bench_subquadratic_ba_n256(benchmark):
    def run():
        n, f = 256, 100
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=1)
        return run_instance(instance, f, seed=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.consistent()


def main() -> None:
    """Reproduce the scaling curve locally on an arbitrary n grid."""
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--n-grid", required=True,
        help="comma-separated n values, e.g. 96,192,384")
    parser.add_argument(
        "--families", default="quadratic,subquadratic",
        help="comma-separated protocol families to sweep")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    # Imported lazily: scripts/ is not a package, but the sweep logic
    # must stay single-sourced with the recorded benchmark.
    import pathlib
    import sys
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))
    from record_bench import scaling_point

    grid = [int(value) for value in args.n_grid.split(",")]
    for family in args.families.split(","):
        for n in grid:
            point = scaling_point(family, n, seed=args.seed)
            budget = point["budget"]
            breakdown = " ".join(
                f"{phase.split('_')[0]}={budget[phase]}s"
                for phase in ("deliver_seconds", "protocol_seconds",
                              "verify_seconds", "sizing_seconds",
                              "other_seconds"))
            print(f"{family} n={n} f={point['f']}: "
                  f"{budget['wall_seconds']}s wall "
                  f"({point['rounds_executed']} rounds, "
                  f"{point['multicast_complexity_bits']} multicast bits) "
                  f"[{breakdown}]")


if __name__ == "__main__":
    main()
