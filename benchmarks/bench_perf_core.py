"""Perf-core microbenchmark: large-n execution throughput.

Unlike the E1–E12 experiment benchmarks (which time whole experiment
tables), this one times the simulation core itself on the profile the
paper's headline experiments depend on: a quadratic-BA execution at large
n, where certificate verification and delivery fan-out dominate.  Run with
``pytest benchmarks/bench_perf_core.py``; record the tracked numbers with
``python scripts/record_bench.py``.
"""

from repro.harness.runner import run_instance
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba


def _run_quadratic(n, f, seed=1, **kwargs):
    instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=seed)
    return run_instance(instance, f, seed=seed, **kwargs)


def bench_quadratic_ba_n96(benchmark):
    result = benchmark.pedantic(
        lambda: _run_quadratic(96, 47), rounds=3, iterations=1)
    assert result.consistent()


def bench_quadratic_ba_n192(benchmark):
    result = benchmark.pedantic(
        lambda: _run_quadratic(192, 95), rounds=1, iterations=1)
    assert result.consistent()


def bench_quadratic_ba_n192_metrics_only(benchmark):
    """Same profile without transcript retention (long-execution mode)."""
    result = benchmark.pedantic(
        lambda: _run_quadratic(192, 95, transcript_retention="metrics-only"),
        rounds=1, iterations=1)
    assert result.consistent()
    assert result.transcript == []


def bench_subquadratic_ba_n256(benchmark):
    def run():
        n, f = 256, 100
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=1)
        return run_instance(instance, f, seed=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.consistent()
