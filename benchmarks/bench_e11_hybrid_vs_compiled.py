"""E11 — Appendices D/E: the compiled world preserves hybrid security.

Paper claim: replacing the Fmine ideal functionality by the PRF +
commitment + NIZK construction preserves consistency, validity, and
termination (Appendix E's hybrid argument).  Reproduced: identical
protocol code in both worlds, attacked identically, same predicate
outcomes and the same complexity shape.
"""

from repro.harness.experiments import experiment_e11


def bench_e11_hybrid_vs_compiled(run_experiment):
    result = run_experiment(experiment_e11, trials=3)
    fmine = result.data["fmine"]
    vrf = result.data["vrf"]
    for predicate in ("consistency", "validity", "termination"):
        assert fmine[predicate] == 1.0
        assert vrf[predicate] == 1.0
    # Same complexity shape (coins differ, so allow 2x slack).
    assert 0.5 < vrf["multicasts"] / fmine["multicasts"] < 2.0
