"""E9 — the Section 1 comparison: our protocol vs everything else.

Paper claim: the C.2 protocol is the only construction combining
near-optimal resilience, expected O(1) rounds, sublinear multicast
complexity, and adaptive security from PKI-only assumptions.
"""

from repro.harness.experiments import experiment_e9


def bench_e9_protocol_comparison(run_experiment):
    result = run_experiment(experiment_e9, trials=3)
    data = result.data
    subq = data["subquadratic-ba (§C.2)"]
    quad = data["quadratic-ba"]
    ds = data["dolev-strong (BB)"]
    # Sublinear vs linear speakers at n = 150.
    assert subq["multicasts"] < quad["multicasts"] / 2
    # Expected O(1) rounds vs Dolev-Strong's f+1 rounds.
    assert subq["rounds"] < ds["rounds"]
    # The phase-king compile is also sublinear but pays ω(log κ) rounds.
    pk = data["phase-king-subq (§3.2)"]
    assert pk["rounds"] > subq["rounds"]
