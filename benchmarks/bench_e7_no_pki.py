"""E7 — Theorem 3: setup assumptions are necessary.

Paper claim: without any setup (plain authenticated channels, random
oracle allowed), the Q --- 1 --- Q' hypothetical experiment forces a
contradiction on any sublinear-multicast protocol using only
C = #(Q' speakers) adaptive corruptions; a PKI breaks the experiment.
"""

from repro.harness.experiments import experiment_e7


def bench_e7_hypothetical_experiment(run_experiment):
    result = run_experiment(experiment_e7)
    shared = result.data["shared"]
    pki = result.data["pki"]
    assert shared.contradiction
    assert shared.left_outputs == {0} and shared.right_outputs == {1}
    assert shared.bridge_rejections == 0
    assert not pki.contradiction
    assert pki.bridge_rejections > 0
