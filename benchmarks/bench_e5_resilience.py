"""E5 — Theorem 17: resilience up to (1/2 − ε)n.

Paper claim: consistency and validity hold for f < (1/2 − ε)n with
failure probability exp(−Ω(ε²λ)).  At a concrete λ the guarantee is
perfect well inside the envelope and degrades predictably (per the
Lemma 11 binomial tails printed in the last column) as f/n approaches
1/2.
"""

from repro.harness.experiments import experiment_e5


def bench_e5_resilience_sweep(run_experiment):
    result = run_experiment(experiment_e5, trials=5)
    # Inside the envelope: perfect score.
    for fraction in (0.1, 0.2):
        cell = result.data[f"fraction_{fraction}"]
        assert cell["consistency"] == 1.0
        assert cell["validity"] == 1.0
        assert cell["termination"] == 1.0
    # Consistency is the harder predicate and holds across the sweep.
    for fraction in (0.3, 0.4):
        cell = result.data[f"fraction_{fraction}"]
        assert cell["consistency"] >= 0.8
    # The analytical failure envelope is monotone in f.
    predictions = [result.data[f"fraction_{fr}"]
                   ["predicted_per_topic_failure"]
                   for fr in (0.1, 0.2, 0.3, 0.4)]
    assert predictions == sorted(predictions)
