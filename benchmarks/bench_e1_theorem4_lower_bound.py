"""E1 — Theorem 1/4: the strongly adaptive isolation attack.

Paper claim: any BA protocol spending fewer than ``(εf/2)²`` messages is
breakable by an after-the-fact-removal adversary.  Reproduced shape:

- the subquadratic BB is violated in **every** trial, spending a
  corruption budget proportional to its speaker count (≪ f);
- the quadratic BB exhausts the adversary's budget and survives.
"""

from repro.harness.experiments import experiment_e1


def bench_e1_isolation_attack(run_experiment):
    result = run_experiment(experiment_e1, trials=3)
    subq = result.data["subquadratic"]
    quad = result.data["quadratic"]
    # The paper's dichotomy, asserted.
    assert subq.violation_rate == 1.0
    assert subq.mean_corruptions < subq.f / 2
    assert subq.budget_exhausted_rate == 0.0
    assert quad.violation_rate == 0.0
    assert quad.budget_exhausted_rate == 1.0
    # The proof's events hold live: E[z] under the Markov budget and
    # Pr[X ∩ Y] above 1 - 2ε.
    census = result.data["census"]
    assert census.mean_z < census.markov_budget
    assert census.event_xy_rate >= census.theorem_bound
