"""E4 — Corollary 16: expected constant rounds.

Paper claim: the iterated BA terminates in expected O(1) iterations
(per-iteration success probability ≥ 1/2e, Lemma 12), at every network
size; the phase-king family instead runs a fixed R = ω(log κ) epochs.
"""

from repro.analysis import mean
from repro.harness.experiments import experiment_e4


def bench_e4_round_complexity(run_experiment):
    result = run_experiment(experiment_e4, trials=15)
    # Constant across n: the largest network is not slower than 3x the
    # smallest (both are O(1) iterations; noise allowed).
    small = mean(result.data["subq_rounds_n100"])
    large = mean(result.data["subq_rounds_n400"])
    assert large < 3 * small + 10
    # Everyone decides.
    for n in (100, 200, 400):
        assert result.data[f"subq_termination_n{n}"] == 1.0
    # Phase-king runs its full fixed schedule (2R + 1 rounds).
    assert set(result.data["phase_king_rounds"]) == {25.0}
