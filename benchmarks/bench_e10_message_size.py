"""E10 — Theorem 17's message-size bound O(λ(log κ + log n)).

Paper claim: every protocol message — certificates included — carries at
most O(λ) authenticated entries of O(log κ + log n) bits.  Measured:
doubling λ roughly doubles the max message; growing n 4x barely moves it;
the compiled (real VRF) mode pays a constant-factor χ for group elements.
"""

from repro.harness.experiments import experiment_e10


def bench_e10_message_size(run_experiment):
    result = run_experiment(experiment_e10, trials=2)
    data = result.data
    # Linear in λ: λ 20 -> 40 at n=128 gives ~2x (allow 1.5-3x).
    ratio = data["fmine_n128_lam40"] / data["fmine_n128_lam20"]
    assert 1.4 < ratio < 3.2
    # Nearly flat in n: n 128 -> 512 at λ=20 within 30%.
    growth = data["fmine_n512_lam20"] / data["fmine_n128_lam20"]
    assert growth < 1.3
    # Real crypto mode stays in the same ballpark (χ factor).
    assert data["vrf_max_bits"] < 20 * data["fmine_n128_lam20"]
