"""Benchmark-suite helpers.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round): the experiments are Monte-Carlo protocol executions whose value is
the table they print and the claims they assert, not sub-millisecond
timing stability.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Time one run of an experiment and print its table."""

    def runner(experiment, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment(**kwargs), rounds=1, iterations=1)
        with capsys.disabled():
            print("\n" + result.render())
        return result

    return runner
