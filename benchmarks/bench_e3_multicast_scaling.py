"""E3 — Theorem 2/17: multicast complexity is independent of n.

Paper claim: the subquadratic protocol multicasts O(λ²) messages whatever
n is, while the quadratic warmup's multicast count grows linearly in n
(quadratically in pairwise messages).
"""

from repro.harness.experiments import experiment_e3


def bench_e3_multicast_scaling(run_experiment):
    result = run_experiment(experiment_e3, trials=3)
    subq = result.data["subquadratic"]
    quad = result.data["quadratic"]
    # Flat for the subquadratic protocol: 16x more nodes, < 2x multicasts.
    sizes = sorted(subq)
    assert subq[sizes[-1]] < 2 * subq[sizes[0]] + 10
    # Linear for the quadratic protocol: 8x more nodes, > 4x multicasts.
    quad_sizes = sorted(quad)
    assert quad[quad_sizes[-1]] > 4 * quad[quad_sizes[0]]
    # Crossover: subquadratic beats quadratic once n exceeds ~2λ.
    assert subq[512] < quad[128]
