"""E8 — Lemmas 10–12: the stochastic committee bounds, measured.

Paper claims: committees concentrate around λ; the probability of a
corrupt λ/2-quorum and of an honest λ/2-shortfall follow the binomial
tails the Chernoff bounds dominate; a unique honest proposer appears with
probability > 1/2e per iteration.
"""

from repro.harness.experiments import experiment_e8


def bench_e8_stochastic_bounds(run_experiment):
    result = run_experiment(experiment_e8, samples=400)
    data = result.data
    lam = 30
    assert abs(data["mean_committee"] - lam) < 0.15 * lam
    # Measured rates track the exact predictions within Monte-Carlo noise.
    assert abs(data["corrupt_quorum_rate"]
               - data["corrupt_quorum_pred"]) < 0.08
    assert abs(data["honest_miss_rate"] - data["honest_miss_pred"]) < 0.08
    assert abs(data["good_iteration_rate"]
               - data["good_iteration_pred"]) < 0.08
    # Lemma 12's bound.
    assert data["good_iteration_pred"] > 1 / (2 * 2.7182818284)
