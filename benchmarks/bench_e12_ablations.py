"""E12 — ablations of the C.2 design choices.

(a) leader difficulty 1/2n, (b) the p=1 collapse onto the quadratic
warmup, (c) the two-sided λ/2 quorum-threshold envelope.
"""

from repro.harness.experiments import experiment_e12


def bench_e12_design_ablations(run_experiment):
    result = run_experiment(experiment_e12, trials=4)
    data = result.data
    # (b) p = 1 recovers warmup behaviour: consistent, and the multicast
    # count lands in the warmup's linear regime (not the λ² regime).
    assert data["p1_consistent"]
    assert data["p1_multicasts"] > 0.5 * data["warmup_multicasts"]
    # (c) the threshold envelope is two-sided and monotone.
    low_corrupt, low_short = data["threshold_0.35λ"]
    mid_corrupt, mid_short = data["threshold_0.50λ (paper)"]
    high_corrupt, high_short = data["threshold_0.65λ"]
    assert low_corrupt > mid_corrupt > high_corrupt
    assert low_short < mid_short < high_short
    # The paper's choice keeps BOTH failure modes small simultaneously.
    assert max(mid_corrupt, mid_short) < min(low_corrupt, high_short)
