"""E6 — Remark 3.3: bit-specific eligibility defeats equivocation.

Paper claim: with round-specific eligibility an adversary can reuse an
honest ACKer's ticket for the opposite bit in the same round, destroying
consistency — unless the memory-erasure model (ephemeral keys) is
assumed.  Bit-specific eligibility needs no erasure at all.
"""

from repro.harness.experiments import experiment_e6


def bench_e6_eligibility_designs(run_experiment):
    result = run_experiment(experiment_e6, trials=5)
    assert result.data["round_no_erasure"] <= 0.2  # broken
    assert result.data["round_erasure"] == 1.0     # saved by erasure
    assert result.data["bit_specific"] == 1.0      # safe without erasure
