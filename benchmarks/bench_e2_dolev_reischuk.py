"""E2 — the Dolev–Reischuk warmup (Section 2).

Paper claim: a deterministic broadcast sending fewer than ``(f/2)²``
messages is broken by the A/A' adversary pair; message-rich protocols
leave no starved victim.
"""

from repro.harness.experiments import experiment_e2


def bench_e2_dolev_reischuk(run_experiment):
    result = run_experiment(experiment_e2)
    naive = result.data["naive"]
    strong = result.data["dolev_strong"]
    assert naive.messages_into_v < naive.message_budget
    assert naive.attack_feasible and naive.consistency_violated
    assert strong.messages_into_v > strong.message_budget
    assert not strong.attack_feasible
