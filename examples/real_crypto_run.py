"""The Appendix D compiled world, end to end with real cryptography.

Runs the subquadratic BA with genuine VRF eligibility: each node's public
key is a perfectly-binding ElGamal commitment to its PRF key; each
conditional multicast carries the DDH-PRF evaluation plus a Fiat–Shamir
sigma proof that the evaluation matches the committed key (the paper's NP
language L); every recipient verifies every ticket.

Usage::

    python examples/real_crypto_run.py
"""

import time

from repro.crypto.vrf import VrfKeyPair, verify_vrf
from repro.crypto.groups import TEST_GROUP
from repro.harness import run_instance
from repro.protocols import build_subquadratic_ba
from repro.rng import derive_rng
from repro.types import SecurityParameters


def main() -> None:
    # A single VRF evaluation, dissected.
    rng = derive_rng(0, "demo")
    keypair = VrfKeyPair.generate(TEST_GROUP, rng)
    topic = ("Vote", 1, 1)
    output = keypair.evaluate(topic, rng)
    print("one VRF evaluation on topic ('Vote', 1, 1):")
    print(f"  beta (pseudorandom, 256-bit): {output.beta:#066x}"[:70])
    print(f"  verifies against public key:  "
          f"{verify_vrf(TEST_GROUP, keypair.public, topic, output)}")
    print(f"  verifies on the other bit:    "
          f"{verify_vrf(TEST_GROUP, keypair.public, ('Vote', 1, 0), output)}")
    print()

    # A full protocol execution in vrf mode.
    n, f = 32, 9
    params = SecurityParameters(lam=12, epsilon=0.1)
    inputs = [i % 2 for i in range(n)]
    print(f"subquadratic BA, compiled mode: n={n}, f={f}, lambda={params.lam}")
    start = time.time()
    instance = build_subquadratic_ba(n, f, inputs, seed=4, params=params,
                                     mode="vrf")
    result = run_instance(instance, f, seed=4)
    elapsed = time.time() - start
    print(f"  consistent:  {result.consistent()}")
    print(f"  decided:     {result.all_decided()} "
          f"in {result.rounds_executed} rounds")
    print(f"  multicasts:  {result.metrics.multicast_complexity_messages}")
    print(f"  wall clock:  {elapsed:.2f}s "
          f"(every ticket individually proven and verified)")


if __name__ == "__main__":
    main()
