"""Multicast complexity vs network size (Theorem 2's headline plot).

Sweeps n with λ fixed and prints honest multicast counts for the
subquadratic protocol (flat), the quadratic warmup (linear in n) and
Dolev–Strong (linear in n), i.e. the E3 experiment at example scale.

Usage::

    python examples/complexity_scaling.py
"""

from repro.harness import Table, run_trials
from repro.protocols import (
    build_dolev_strong,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters


def main() -> None:
    params = SecurityParameters(lam=24, epsilon=0.15)
    table = Table(
        f"honest multicasts per execution (λ = {params.lam}, 3 seeds)",
        ["n", "subquadratic-ba", "quadratic-ba", "dolev-strong"],
    )
    for n in (32, 64, 128, 256, 512):
        subq = run_trials(build_subquadratic_ba, f=int(0.3 * n),
                          seeds=range(3), n=n, inputs=[1] * n, params=params)
        if n <= 128:
            quad = run_trials(build_quadratic_ba, f=(n - 1) // 2,
                              seeds=range(3), n=n, inputs=[1] * n)
            ds = run_trials(build_dolev_strong, f=(n - 1) // 2,
                            seeds=range(3), n=n, sender_input=1)
            quad_cell = round(quad.mean_multicasts, 1)
            ds_cell = round(ds.mean_multicasts, 1)
        else:
            quad_cell = ds_cell = "(skipped)"
        table.add_row(n, round(subq.mean_multicasts, 1), quad_cell, ds_cell)
    print(table.render())
    print()
    print("The subquadratic column is O(λ²), independent of n — only a")
    print("polylogarithmic number of nodes ever speak (Theorem 2).")


if __name__ == "__main__":
    main()
