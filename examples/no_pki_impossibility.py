"""Theorem 3 live: without setup, sublinear multicast BA is impossible.

Runs the paper's hypothetical experiment — two executions sharing one
bridge node::

    (input: 0)  Q --- 1 --- Q'  (input: 1)

Under a shared random-oracle lottery (all a setup-free world offers), both
sides reach their validity-mandated outputs and the bridge node, a single
machine honestly participating in both, must contradict one of them.  The
adversary realising the Q'-side needs only as many corruptions as Q' has
speakers — sublinear.  With a PKI, the simulated side's proofs fail at the
bridge and the experiment collapses: setup assumptions are necessary.

Usage::

    python examples/no_pki_impossibility.py
"""

from repro.lowerbounds import run_hypothetical_experiment
from repro.types import SecurityParameters


def main() -> None:
    report = run_hypothetical_experiment(
        n=60, seed=2, params=SecurityParameters(lam=24), epochs=6,
        setup="shared-ro")
    print("shared random-oracle setup (no PKI):")
    print(f"  Q outputs:            {sorted(report.left_outputs)}")
    print(f"  Q' outputs:           {sorted(report.right_outputs)}")
    print(f"  bridge node outputs:  {report.bridge_output}")
    print(f"  contradiction:        {report.contradiction}")
    print(f"  Q' speakers (= corruptions needed): {report.right_speakers} "
          f"of n = {report.n}")
    print()

    report = run_hypothetical_experiment(
        n=24, seed=2, params=SecurityParameters(lam=12), epochs=4,
        setup="pki")
    print("with a PKI (independent keys per side):")
    print(f"  Q outputs:            {sorted(report.left_outputs)}")
    print(f"  Q' outputs:           {sorted(report.right_outputs)}")
    print(f"  bridge node outputs:  {report.bridge_output} "
          f"(sides with Q)")
    print(f"  simulated-side messages rejected at bridge: "
          f"{report.bridge_rejections}")
    print(f"  contradiction:        {report.contradiction}")
    print()
    print("The corrupt-1 interpretation cannot forge the real PKI:")
    print("this is why Theorem 2 assumes one.")


if __name__ == "__main__":
    main()
