"""Extension: agreement on 8-bit values via parallel binary BA.

Composes eight domain-separated instances of the paper's binary protocol
into agreement on byte values — consistency and validity lift bit-wise,
and the multicast complexity stays independent of n (just ×8).

Usage::

    python examples/multivalued_agreement.py
"""

from repro.harness import run_instance
from repro.protocols.multivalued import build_multivalued_ba
from repro.types import SecurityParameters


def main() -> None:
    n, f, seed = 200, 60, 11
    params = SecurityParameters(lam=24, epsilon=0.1)

    print(f"multi-valued BA: n={n}, f={f}, 8-bit values\n")

    instance = build_multivalued_ba(n, f, [0xC3] * n, width=8,
                                    seed=seed, params=params)
    result = run_instance(instance, f, seed=seed)
    print("unanimous input 0xC3:")
    print(f"  output:     {hex(result.honest_outputs[0])} "
          f"(valid: {set(result.honest_outputs) == {0xC3}})")
    print(f"  rounds:     {result.rounds_executed}")
    print(f"  multicasts: {result.metrics.multicast_complexity_messages} "
          f"(~8x the binary protocol, still independent of n)\n")

    values = [(i * 37) % 256 for i in range(n)]
    instance = build_multivalued_ba(n, f, values, width=8,
                                    seed=seed, params=params)
    result = run_instance(instance, f, seed=seed)
    outputs = {hex(v) for v in result.honest_outputs}
    print("mixed inputs:")
    print(f"  consistent: {result.consistent()} (all output {outputs})")
    print(f"  rounds:     {result.rounds_executed} "
          f"(max of 8 geometric tails — still O(log width) expected)")


if __name__ == "__main__":
    main()
