"""What Definition 7 costs in a real gossip deployment.

The paper motivates the multicast model by peer-to-peer deployments where
a "multicast" is an epidemic gossip broadcast.  This example (1) checks
the abstraction — a push-gossip broadcast covers the whole network in
O(log n) hops — and (2) translates the Theorem 2 protocol's multicast
complexity into the point-to-point transmissions a deployment would pay,
next to the quadratic baseline.

Usage::

    python examples/gossip_deployment_cost.py
"""

from repro.harness import Table, run_trials
from repro.protocols import build_quadratic_ba, build_subquadratic_ba
from repro.sim.gossip import expected_hops, simulate_push_gossip
from repro.types import SecurityParameters


def main() -> None:
    table = Table("push gossip (fanout 6): hops to full coverage",
                  ["n", "hops", "~log2(n)+ln(n)", "relays"])
    for n in (128, 512, 2048, 8192):
        outcome = simulate_push_gossip(n=n, fanout=6, seed=1)
        table.add_row(n, outcome.hops, round(expected_hops(n), 1),
                      outcome.relays)
    print(table.render())
    print()

    params = SecurityParameters(lam=24, epsilon=0.15)
    cost = Table("deployment cost of one BA (gossip relays ~ 1.5n per "
                 "multicast)",
                 ["protocol", "n", "multicasts", "gossip relays"])
    for n in (64, 128):
        subq = run_trials(build_subquadratic_ba, f=int(0.3 * n),
                          seeds=range(3), n=n, inputs=[1] * n, params=params)
        quad = run_trials(build_quadratic_ba, f=(n - 1) // 2,
                          seeds=range(3), n=n, inputs=[1] * n)
        cost.add_row("subquadratic-ba", n, round(subq.mean_multicasts, 1),
                     round(subq.mean_multicasts * 1.5 * n))
        cost.add_row("quadratic-ba", n, round(quad.mean_multicasts, 1),
                     round(quad.mean_multicasts * 1.5 * n))
    print(cost.render())
    print()
    print("Charging per multicast (Definition 7) matches deployment cost")
    print("up to a protocol-independent O(n) relay factor — so the paper's")
    print("polylog multicast complexity is the right figure of merit.")


if __name__ == "__main__":
    main()
