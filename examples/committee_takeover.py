"""The attack that motivates the paper (Section 1).

A CRS-elected committee gives sublinear communication against a *static*
adversary — and collapses instantly against an *adaptive* one, which
corrupts the publicly-known committee and splits the network.  The same
corruption budget achieves nothing against the paper's protocol, whose
committees are secret until they speak and bit-specific when they do.

Usage::

    python examples/committee_takeover.py
"""

from repro.adversaries import AdaptiveSpeakerAdversary, CommitteeTakeoverAdversary
from repro.harness import run_instance
from repro.protocols import build_static_committee, build_subquadratic_ba
from repro.types import SecurityParameters


def main() -> None:
    n, f, seed = 120, 40, 3
    params = SecurityParameters(lam=24, epsilon=0.1)

    print(f"n={n}, adaptive corruption budget f={f}, unanimous input 1\n")

    instance = build_static_committee(n, f, [1] * n, seed=seed)
    committee = instance.services["committee"]
    adversary = CommitteeTakeoverAdversary(instance)
    result = run_instance(instance, f, adversary, seed=seed)
    print(f"static committee (public, size {len(committee)}):")
    print(f"  corruptions spent: {result.corruptions_used}")
    print(f"  consistent:        {result.consistent()}   <-- broken")
    outputs = sorted(set(result.honest_outputs))
    print(f"  honest outputs:    {outputs}\n")

    instance = build_subquadratic_ba(n, f, [1] * n, seed=seed, params=params)
    adversary = AdaptiveSpeakerAdversary(instance)
    result = run_instance(instance, f, adversary, seed=seed)
    print("subquadratic BA (secret, bit-specific committees), attacked by")
    print("corrupting every observed speaker and equivocating:")
    print(f"  corruptions spent: {result.corruptions_used}")
    print(f"  consistent:        {result.consistent()}   <-- survives")
    print(f"  valid:             {result.agreement_valid()}")
    print()
    print("Corrupting a node after it voted for b gains nothing: its")
    print("eligibility for 1-b is a fresh, independent lottery (Sec. 3.2).")


if __name__ == "__main__":
    main()
