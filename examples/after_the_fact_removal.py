"""Theorem 1/4 live: after-the-fact removal defeats subquadratic BA.

The strongly adaptive adversary watches the wire; whenever anyone stages a
message that would reach the victim, it corrupts the sender *in that
round* and erases the victim's copy — the corrupted sender keeps following
the protocol towards everyone else.  Because the subquadratic protocol has
only O(λ²) speakers, the whole network is silenced towards the victim with
a corruption budget far below f: the victim times out on a default output
while everyone else agrees on the sender's bit.

The identical attack against the quadratic protocol dies: every node
speaks, the budget runs out, the victim hears the tail of the traffic.

Usage::

    python examples/after_the_fact_removal.py
"""

from repro.adversaries import IsolationAdversary
from repro.harness import run_instance
from repro.protocols import (
    build_broadcast_from_ba,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import AdversaryModel, SecurityParameters


def main() -> None:
    params = SecurityParameters(lam=20, epsilon=0.1)
    victim = 5

    n, f = 900, 400
    print(f"subquadratic BB: n={n}, f={f}, sender input 1, victim node {victim}")
    instance = build_broadcast_from_ba(
        build_subquadratic_ba, n=n, f=f, sender_input=1,
        params=params, max_iterations=12)
    adversary = IsolationAdversary(victim=victim)
    result = run_instance(instance, f, adversary,
                          model=AdversaryModel.STRONGLY_ADAPTIVE, seed=1)
    others = sorted({result.outputs[i] for i in result.forever_honest
                     if i != victim})
    print(f"  corruptions spent:   {result.corruptions_used}  (budget {f})")
    print(f"  removed copies:      {adversary.removed_copies}")
    print(f"  victim output:       {result.outputs[victim]}")
    print(f"  everyone else:       {others}")
    print(f"  consistency broken:  {not result.consistent()}\n")

    n, f = 41, 19
    print(f"quadratic BB: n={n}, f={f} — same attack")
    instance = build_broadcast_from_ba(
        build_quadratic_ba, n=n, f=f, sender_input=1, max_iterations=12)
    adversary = IsolationAdversary(victim=victim)
    result = run_instance(instance, f, adversary,
                          model=AdversaryModel.STRONGLY_ADAPTIVE, seed=1)
    print(f"  corruptions spent:   {result.corruptions_used}  (budget {f})")
    print(f"  budget exhausted:    {adversary.budget_exhausted}")
    print(f"  consistency broken:  {not result.consistent()}")
    print()
    print("This is Theorem 1: Ω(f²) communication is the price of")
    print("surviving after-the-fact removal.")


if __name__ == "__main__":
    main()
