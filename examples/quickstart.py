"""Quickstart: run the paper's headline protocol and inspect the result.

Runs the subquadratic BA of Appendix C.2 (Theorem 2) over 500 nodes with
mixed inputs and 150 adaptively-corruptible crash-faulty nodes, then
prints the security predicates and the communication accounting that make
it "subquadratic": only O(λ²) nodes ever multicast, however large n is.

Usage::

    python examples/quickstart.py [n] [seed]
"""

import sys

from repro.adversaries import CrashAdversary
from repro.harness import run_instance
from repro.protocols import build_subquadratic_ba
from repro.types import SecurityParameters


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    f = int(0.3 * n)
    params = SecurityParameters(lam=30, epsilon=0.1)
    inputs = [i % 2 for i in range(n)]

    print(f"subquadratic BA: n={n}, f={f} (30% corrupt), lambda={params.lam}")
    instance = build_subquadratic_ba(n, f, inputs, seed=seed, params=params)
    result = run_instance(instance, f, CrashAdversary(), seed=seed)

    outputs = set(result.honest_outputs)
    metrics = result.metrics
    print(f"  consistent:          {result.consistent()} (outputs {outputs})")
    print(f"  all decided:         {result.all_decided()}")
    print(f"  rounds:              {result.rounds_executed}")
    print(f"  honest multicasts:   {metrics.multicast_complexity_messages} "
          f"(vs n = {n} in the quadratic warmup)")
    print(f"  multicast bits:      {metrics.multicast_complexity_bits}")
    print(f"  max message bits:    {metrics.max_message_bits}")
    print(f"  classical messages:  {metrics.classical_message_count}")
    print()
    print("Try examples/after_the_fact_removal.py to see why the paper's")
    print("'no after-the-fact removal' assumption is necessary (Theorem 1).")


if __name__ == "__main__":
    main()
