"""Setuptools entry point.

All metadata lives in setup.cfg; this shim exists so that offline
environments (no PEP 517 build isolation) can install the package via the
legacy setuptools path: ``pip install -e .`` or ``python setup.py develop``.
"""

from setuptools import setup

setup()
