"""Check intra-repo markdown links.

Scans every ``*.md`` file in the repository for markdown links
``[text](target)`` and verifies that each relative target resolves to an
existing file or directory (anchors are stripped; external ``http(s)``,
``mailto`` and pure-anchor links are skipped).  Exits non-zero listing
every broken link — run by the CI docs job.

Usage::

    python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; deliberately simple — no reference-style links
#: or images are used in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def broken_links(root: Path):
    for md_file in iter_markdown(root):
        text = md_file.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (md_file.parent / relative).resolve()
            if not resolved.exists():
                yield md_file.relative_to(root), target


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    broken = list(broken_links(root))
    for md_file, target in broken:
        print(f"BROKEN {md_file}: ({target})")
    checked = sum(1 for _ in iter_markdown(root))
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} markdown "
              f"file(s)")
        return 1
    print(f"all intra-repo links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
