"""Check intra-repo markdown links.

Scans every ``*.md`` file in the repository for markdown links
``[text](target)`` and verifies that each relative target resolves to an
existing file or directory (anchors are stripped; external ``http(s)``,
``mailto`` and pure-anchor links are skipped).  Additionally enforces
the documentation graph in :data:`REQUIRED_LINKS`: pages that must
cross-link each other (e.g. the protocol reference ``docs/PROTOCOLS.md``
must be reachable from the README and the architecture/network pages).
Exits non-zero listing every broken or missing link — run by the CI
docs and early-stop-smoke jobs.

Usage::

    python scripts/check_doc_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; deliberately simple — no reference-style links
#: or images are used in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}

#: The guaranteed documentation graph: ``(source, target)`` pairs, both
#: repo-relative, where ``source`` must contain a markdown link that
#: resolves to ``target``.  Keeps the cross-linking contract of the
#: docs pass from silently rotting (a page can exist yet be orphaned).
REQUIRED_LINKS = (
    ("README.md", "docs/PROTOCOLS.md"),
    ("README.md", "docs/ARCHITECTURE.md"),
    ("README.md", "docs/RESULTS.md"),
    ("docs/ARCHITECTURE.md", "docs/PROTOCOLS.md"),
    ("docs/ARCHITECTURE.md", "docs/RESULTS.md"),
    ("docs/NETWORK.md", "docs/PROTOCOLS.md"),
    ("docs/NETWORK.md", "docs/PERFORMANCE.md"),
    ("docs/PERFORMANCE.md", "docs/NETWORK.md"),
    ("docs/SCENARIOS.md", "docs/PROTOCOLS.md"),
    ("docs/SCENARIOS.md", "docs/RESULTS.md"),
    ("docs/PROTOCOLS.md", "docs/NETWORK.md"),
    ("docs/PROTOCOLS.md", "docs/SCENARIOS.md"),
    ("docs/RESULTS.md", "docs/SCENARIOS.md"),
    ("docs/RESULTS.md", "docs/PERFORMANCE.md"),
    ("docs/ARCHITECTURE.md", "docs/PERFORMANCE.md"),
    ("docs/PERFORMANCE.md", "docs/ARCHITECTURE.md"),
    # The service/backend pass: the store page documents the service
    # and its backends, so it must stay wired to the pages that explain
    # what the cells contain — and the README must reach it from the
    # service quickstart.
    ("README.md", "docs/SCENARIOS.md"),
    ("README.md", "docs/NETWORK.md"),
    ("docs/RESULTS.md", "docs/ARCHITECTURE.md"),
    ("docs/RESULTS.md", "docs/NETWORK.md"),
    ("docs/RESULTS.md", "docs/PROTOCOLS.md"),
    # The leader-family pass: the protocol reference's leader section
    # points at the results book (where leader-vs-quadratic renders the
    # words-vs-n comparison) and at the module map it slots into.
    ("docs/PROTOCOLS.md", "docs/RESULTS.md"),
    ("docs/PROTOCOLS.md", "docs/ARCHITECTURE.md"),
    # The adaptive-family pass: the scenario schema's network/topology
    # bindings (which the words-vs-actual-f cells ride on) and the
    # network page's scenario pointer must stay mutually reachable.
    ("docs/SCENARIOS.md", "docs/NETWORK.md"),
    ("docs/NETWORK.md", "docs/SCENARIOS.md"),
)


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def broken_links(root: Path):
    for md_file in iter_markdown(root):
        text = md_file.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (md_file.parent / relative).resolve()
            if not resolved.exists():
                yield md_file.relative_to(root), target


def missing_required_links(root: Path):
    for source, target in REQUIRED_LINKS:
        source_path = root / source
        if not source_path.exists():
            yield source, target
            continue
        text = source_path.read_text(encoding="utf-8")
        wanted = (root / target).resolve()
        for match in LINK_RE.finditer(text):
            raw = match.group(1)
            if raw.startswith(SKIP_PREFIXES):
                continue
            relative = raw.split("#", 1)[0]
            if relative and (source_path.parent / relative).resolve() \
                    == wanted:
                break
        else:
            yield source, target


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 \
        else Path(__file__).resolve().parent.parent
    broken = list(broken_links(root))
    for md_file, target in broken:
        print(f"BROKEN {md_file}: ({target})")
    missing = list(missing_required_links(root))
    for source, target in missing:
        print(f"MISSING {source}: required link to {target}")
    checked = sum(1 for _ in iter_markdown(root))
    if broken or missing:
        print(f"{len(broken)} broken and {len(missing)} missing required "
              f"link(s) across {checked} markdown file(s)")
        return 1
    print(f"all intra-repo links resolve across {checked} markdown file(s); "
          f"{len(REQUIRED_LINKS)} required cross-links present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
