"""Record the perf-core trajectory into BENCH_core.json.

Runs the n = 96 / n = 192 quadratic-BA profiles (the paper's large-n
hot path), counting wall time, envelope throughput, and verification-call
counts, and writes the numbers to ``BENCH_core.json`` at the repo root so
the perf trajectory is tracked PR-over-PR.

Usage::

    PYTHONPATH=src python scripts/record_bench.py [--output BENCH_core.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.harness.profiling import profile_check_calls, profile_phase_budget
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba

#: The published scaling grid (docs/PERFORMANCE.md "Scaling curve").
SCALING_GRID = (96, 192, 384, 768, 1536)

#: Seed-state reference numbers (pre-optimization, same machine class),
#: kept in the file so every snapshot carries its own baseline.
SEED_BASELINE = {
    "quadratic-ba-n192": {
        "authenticator_check_calls": 7224671,
        "wall_seconds_reference": 8.04,
    },
    "quadratic-ba-n96": {
        "authenticator_check_calls": 921263,
        "wall_seconds_reference": 1.09,
    },
}


def profile_quadratic(n: int, f: int, seed: int = 1) -> dict:
    instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=seed)
    profile = profile_check_calls(instance, f, seed=seed)
    result, wall = profile.result, profile.wall_seconds

    envelopes = len(result.transcript)
    return {
        "n": n,
        "f": f,
        "seed": seed,
        "wall_seconds": round(wall, 4),
        "rounds_executed": result.rounds_executed,
        "envelopes": envelopes,
        "envelopes_per_second": round(envelopes / wall, 1) if wall else None,
        "authenticator_check_calls": profile.check_calls,
        "multicast_complexity_messages":
            result.metrics.multicast_complexity_messages,
        "multicast_complexity_bits": result.metrics.multicast_complexity_bits,
        "consistent": result.consistent(),
        "all_decided": result.all_decided(),
    }


def scaling_point(family: str, n: int, seed: int = 1) -> dict:
    """One (protocol family, n) point of the scaling curve, with the
    phase-budget breakdown of where its wall clock went."""
    inputs = [i % 2 for i in range(n)]
    if family == "quadratic":
        f = n // 2 - 1
        instance = build_quadratic_ba(n, f, inputs, seed=seed)
    elif family == "subquadratic":
        # Same corruption ratio the subquadratic profiles have always
        # used (f = 100 at n = 256): ~0.39 n, within the < n/2 bound.
        f = 100 * n // 256
        instance = build_subquadratic_ba(n, f, inputs, seed=seed)
    else:
        raise ValueError(f"unknown protocol family {family!r}")
    budget = profile_phase_budget(instance, f, seed=seed)
    result = budget.result
    assert result.consistent() and result.all_decided(), \
        f"scaling point {family} n={n} produced an invalid execution"
    point = {
        "n": n,
        "f": f,
        "seed": seed,
        "rounds_executed": result.rounds_executed,
        "envelopes": len(result.transcript),
        "multicast_complexity_bits": result.metrics.multicast_complexity_bits,
        "budget": budget.budget_dict(),
    }
    return point


def profile_scaling_curve(grid=SCALING_GRID, seed: int = 1) -> dict:
    """The tentpole artifact: quadratic vs subquadratic BA across the
    published n grid, each point carrying its phase-time budget.

    The per-point ``budget`` attributes wall time to deliver / protocol /
    verify / sizing / other (see ``PhaseBudget``); the curve is what
    docs/PERFORMANCE.md renders and what makes the paper's asymptotic
    separation empirically visible — quadratic multicast bits grow ~n²
    while subquadratic bits stay flat in n.
    """
    return {
        "grid": list(grid),
        "quadratic": [scaling_point("quadratic", n, seed) for n in grid],
        "subquadratic": [scaling_point("subquadratic", n, seed)
                         for n in grid],
    }


def profile_network_fast_path(n: int = 96, f: int = 47, seed: int = 1) -> dict:
    """Prove the perfect-synchrony fast path did not regress.

    Runs the same quadratic-BA profile twice — once with ``conditions``
    unset and once with explicit ``NetworkConditions.perfect()`` — and
    asserts the executions are identical (same transcript, metrics, and
    outputs: the engine must normalize perfect conditions to the plain
    ``SynchronousNetwork`` loop).  A conditioned WAN run is recorded
    alongside for the cost of the partial-synchrony axis.
    """
    from repro.harness import run_instance
    from repro.sim.conditions import NETWORKS, NetworkConditions

    def timed_run(conditions):
        instance = build_quadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=seed)
        start = time.perf_counter()
        result = run_instance(instance, f, seed=seed, conditions=conditions)
        return result, time.perf_counter() - start

    plain, plain_wall = timed_run(None)
    perfect, perfect_wall = timed_run(NetworkConditions.perfect())
    assert perfect.network_stats is None, \
        "perfect conditions must use the unconditioned fast path"
    assert plain.outputs == perfect.outputs \
        and plain.rounds_executed == perfect.rounds_executed \
        and plain.transcript == perfect.transcript \
        and plain.metrics == perfect.metrics, \
        "perfect-synchrony results diverged from the unconditioned run"
    wan, wan_wall = timed_run(NETWORKS["wan"])
    return {
        "n": n,
        "f": f,
        "seed": seed,
        "fast_path_identical": True,
        "wall_seconds_unconditioned": round(plain_wall, 4),
        "wall_seconds_perfect_conditions": round(perfect_wall, 4),
        "wall_seconds_wan_conditions": round(wan_wall, 4),
        "wan_mean_delivery_latency": round(
            wan.network_stats.mean_delivery_latency, 4),
        "wan_max_in_flight": wan.network_stats.max_in_flight,
    }


def profile_early_stop(n: int = 96, f: int = 31, seed: int = 1) -> dict:
    """Early stopping pays for itself: fixed-budget phase-king versus the
    GST-aware early-stop variant under the ``lan`` preset.

    Asserts the variant's wall clock *and* round count drop against the
    fixed-budget original (phase-king always runs its full epoch budget,
    so this is the cleanest before/after pair), that both runs agree and
    validate, and that the fixed run reports zero rounds saved.
    """
    from repro.harness import run_instance
    from repro.protocols.early_stopping import build_phase_king_early_stop
    from repro.protocols.phase_king import build_phase_king
    from repro.sim.conditions import NETWORKS

    conditions = NETWORKS["lan"]
    inputs = [i % 2 for i in range(n)]

    def timed_run(builder, **kwargs):
        instance = builder(n, f, inputs, seed=seed, **kwargs)
        start = time.perf_counter()
        result = run_instance(instance, f, seed=seed, conditions=conditions)
        return result, time.perf_counter() - start

    fixed, fixed_wall = timed_run(build_phase_king)
    early, early_wall = timed_run(build_phase_king_early_stop,
                                  conditions=conditions)
    for result in (fixed, early):
        assert result.consistent() and result.agreement_valid(), \
            "early-stop profile produced an invalid execution"
    assert fixed.rounds_saved == 0, \
        "fixed-budget phase-king must run out its budget"
    assert early.rounds_executed < fixed.rounds_executed, \
        "early stopping failed to cut rounds_executed"
    assert early.rounds_saved > 0, \
        "early stopping failed to report rounds_saved"
    assert early_wall < fixed_wall, \
        "early stopping failed to cut wall clock"
    return {
        "n": n,
        "f": f,
        "seed": seed,
        "network": "lan",
        "rounds_executed_fixed_budget": fixed.rounds_executed,
        "rounds_executed_early_stop": early.rounds_executed,
        "rounds_saved": early.rounds_saved,
        "multicasts_fixed_budget":
            fixed.metrics.multicast_complexity_messages,
        "multicasts_early_stop":
            early.metrics.multicast_complexity_messages,
        "wall_seconds_fixed_budget": round(fixed_wall, 4),
        "wall_seconds_early_stop": round(early_wall, 4),
    }


def profile_event_engine_wan(n: int = 8, f: int = 3,
                             deltas=(32, 128, 512), trials: int = 12) -> dict:
    """The event engine pays for itself on sparse-latency topologies.

    The responsiveness scenario (Momose–Ren): a conservatively large Δ
    bound over links that actually deliver in 1–3 ticks (fixed latency 1
    plus a clustered cross-pod surcharge), so almost every network tick
    is idle.  The Δ-lockstep synchronizer executes those ticks as no-ops
    — its wall clock grows linearly with Δ — while the event engine
    jumps between due timestamps and stays flat.  Sweeps quadratic BA
    across a Δ grid under both conditioned loops, asserting per-seed
    result identity (outputs, rounds, transcripts, NetworkStats — the
    differential-conformance contract) at every point and a >= 2x
    wall-clock win at the sparsest point.  The sparsest point also
    records both phase budgets: the lock-step run's ``scheduler`` bucket
    is where the per-tick churn shows up, and it collapses under the
    event engine.
    """
    from repro.harness import run_instance
    from repro.sim.conditions import LinkTopology, NetworkConditions

    inputs = [i % 2 for i in range(n)]
    points = []
    for delta in deltas:
        conditions = NetworkConditions(
            delta=delta, latency=("fixed", 1),
            topology=LinkTopology.clustered(clusters=4, extra=2))

        def timed_sweep(scheduler):
            start = time.perf_counter()
            results = []
            for seed in range(trials):
                instance = build_quadratic_ba(n, f, inputs, seed=seed)
                results.append(run_instance(
                    instance, f, seed=seed, conditions=conditions,
                    scheduler=scheduler))
            return results, time.perf_counter() - start

        event, event_wall = timed_sweep("event")
        lockstep, lockstep_wall = timed_sweep("lockstep")
        for ev, lk in zip(event, lockstep):
            assert (ev.outputs == lk.outputs
                    and ev.rounds_executed == lk.rounds_executed
                    and ev.transcript == lk.transcript
                    and ev.network_stats == lk.network_stats
                    and ev.consistent() and ev.all_decided()), \
                f"event engine diverged from lock-step at delta={delta}"
        stats = event[0].network_stats
        points.append({
            "delta": delta,
            "wall_seconds_lockstep": round(lockstep_wall, 4),
            "wall_seconds_event": round(event_wall, 4),
            "speedup": round(lockstep_wall / event_wall, 2),
            "network_rounds": stats.network_rounds,
            "skipped_ticks": stats.skipped_ticks,
            "events_processed": stats.events_processed,
            "skip_density": round(
                stats.skipped_ticks / stats.network_rounds, 3),
            "results_identical": True,
        })
    assert points[-1]["speedup"] >= 2.0, \
        f"event engine win eroded: {points[-1]['speedup']}x at the " \
        f"sparsest point (need >= 2x)"

    sparsest = NetworkConditions(
        delta=deltas[-1], latency=("fixed", 1),
        topology=LinkTopology.clustered(clusters=4, extra=2))
    budgets = {}
    for scheduler in ("lockstep", "event"):
        instance = build_quadratic_ba(n, f, inputs, seed=1)
        budget = profile_phase_budget(instance, f, seed=1,
                                      conditions=sparsest,
                                      scheduler=scheduler)
        budgets[scheduler] = budget.budget_dict()
    return {
        "n": n,
        "f": f,
        "trials": trials,
        "latency": "fixed-1 + clustered(4,+2) surcharge",
        "points": points,
        "budget_sparsest_lockstep": budgets["lockstep"],
        "budget_sparsest_event": budgets["event"],
    }


def profile_adaptive_words(n: int = 25, f: int = 8,
                           actuals=(0, 4, 8), seed: int = 1) -> dict:
    """The adaptive family makes every word count: total words
    (``classical_message_count``) of ``adaptive-ba`` at actual fault
    counts f* ∈ {0, f/2, f} for a fixed system size, against the
    quadratic-BA baseline at the same points.

    Asserts the fault-free run costs at most ``FAST_PATH_WORD_FACTOR·n``
    words (the documented constant-factor-of-n fast path — exactly
    ``4(n-1)`` as implemented), that words are monotone in f*, and that
    every adaptive point stays strictly below the quadratic baseline.
    """
    from repro.adversaries import ActualFaultsAdversary
    from repro.harness import run_instance
    from repro.protocols.adaptive_ba import (
        FAST_PATH_WORD_FACTOR, build_adaptive_ba, escalations_of, words_of)

    inputs = [1] * n

    def timed_run(builder, actual):
        instance = builder(n, f, inputs, seed=seed)
        adversary = ActualFaultsAdversary(actual=actual)
        start = time.perf_counter()
        result = run_instance(instance, f, adversary, seed=seed)
        return result, time.perf_counter() - start

    points = []
    for actual in actuals:
        adaptive, adaptive_wall = timed_run(build_adaptive_ba, actual)
        quadratic, quadratic_wall = timed_run(build_quadratic_ba, actual)
        for result in (adaptive, quadratic):
            assert result.consistent() and result.all_decided(), \
                f"adaptive-words profile invalid at actual={actual}"
        adaptive_words = words_of(adaptive)
        quadratic_words = words_of(quadratic)
        assert adaptive_words < quadratic_words, \
            f"adaptive words {adaptive_words} not below quadratic " \
            f"{quadratic_words} at actual={actual}"
        points.append({
            "actual_faults": actual,
            "adaptive_words": adaptive_words,
            "adaptive_escalations": escalations_of(adaptive),
            "quadratic_words": quadratic_words,
            "wall_seconds_adaptive": round(adaptive_wall, 4),
            "wall_seconds_quadratic": round(quadratic_wall, 4),
        })
    fast_path = points[0]
    assert fast_path["actual_faults"] == 0
    assert fast_path["adaptive_words"] <= FAST_PATH_WORD_FACTOR * n, \
        f"fault-free words {fast_path['adaptive_words']} exceed " \
        f"{FAST_PATH_WORD_FACTOR}·n"
    words = [p["adaptive_words"] for p in points]
    assert words == sorted(words), \
        f"adaptive words not monotone in actual faults: {words}"
    return {
        "n": n,
        "f": f,
        "seed": seed,
        "fast_path_word_factor": FAST_PATH_WORD_FACTOR,
        "adaptive_points": points,
    }


def profile_sweep(name: str = "adversary-grid") -> dict:
    """One named sweep, with and without the shared lottery cache."""
    from repro.harness.scenarios import run_sweep
    from repro.harness.sweep_library import SWEEPS

    sweep = SWEEPS[name]
    start = time.perf_counter()
    unshared = run_sweep(sweep, share_lottery=False)
    unshared_wall = time.perf_counter() - start
    start = time.perf_counter()
    shared = run_sweep(sweep, share_lottery=True)
    shared_wall = time.perf_counter() - start
    assert shared.rows() == unshared.rows(), "lottery cache changed results"
    return {
        "sweep": name,
        "cells": len(shared.cells),
        "wall_seconds_unshared": round(unshared_wall, 4),
        "wall_seconds_shared": round(shared_wall, 4),
        "lottery_coins": shared.lottery["coins"],
        "lottery_hits": shared.lottery["hits"],
    }


def profile_store(name: str = "smoke") -> dict:
    """The experiment store pays for itself: one named sweep cold
    (computing and recording every cell) versus warm (replaying every
    cell), differentially asserting that cached replay is identical to
    fresh compute — rows, rendered table, and a storeless reference run.
    """
    import shutil
    import tempfile

    from repro.harness.scenarios import run_sweep
    from repro.harness.store import ExperimentStore
    from repro.harness.sweep_library import SWEEPS

    sweep = SWEEPS[name]
    tmp = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        store = ExperimentStore(tmp)
        start = time.perf_counter()
        fresh = run_sweep(sweep)
        fresh_wall = time.perf_counter() - start
        start = time.perf_counter()
        cold = run_sweep(sweep, store=store)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_sweep(sweep, store=store)
        warm_wall = time.perf_counter() - start
        cells = len(warm.cells)
        assert warm.store_stats["computed"] == 0, \
            "warm store run recomputed cells"
        assert warm.store_stats["replayed"] == cells, \
            "warm store run missed recorded cells"
        assert fresh.rows() == cold.rows() == warm.rows(), \
            "store replay diverged from fresh compute"
        assert (fresh.to_table().render() == cold.to_table().render()
                == warm.to_table().render()), \
            "store replay rendered a different table"
        return {
            "sweep": name,
            "cells": cells,
            "hit_rate_warm": 1.0,
            "wall_seconds_no_store": round(fresh_wall, 4),
            "wall_seconds_cold": round(cold_wall, 4),
            "wall_seconds_warm": round(warm_wall, 4),
            "replay_speedup": round(cold_wall / warm_wall, 1)
            if warm_wall else None,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_core.json"))
    args = parser.parse_args()

    profiles = {
        "quadratic-ba-n96": profile_quadratic(96, 47),
        "quadratic-ba-n192": profile_quadratic(192, 95),
        "scaling-curve": profile_scaling_curve(),
        "sweep-adversary-grid": profile_sweep("adversary-grid"),
        "network-fast-path-n96": profile_network_fast_path(96, 47),
        "event-engine-wan": profile_event_engine_wan(),
        "early-stop-n96-lan": profile_early_stop(96, 31),
        "adaptive-words": profile_adaptive_words(25, 8),
        "store-replay-smoke": profile_store("smoke"),
    }
    for name, profile in profiles.items():
        baseline = SEED_BASELINE.get(name, {})
        seed_calls = baseline.get("authenticator_check_calls")
        if seed_calls:
            profile["check_call_reduction_vs_seed"] = round(
                seed_calls / max(profile["authenticator_check_calls"], 1), 1)

    snapshot = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "seed_baseline": SEED_BASELINE,
        "profiles": profiles,
    }
    output = Path(args.output)
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {output}")
    for name, profile in profiles.items():
        if "grid" in profile:
            for family in ("quadratic", "subquadratic"):
                curve = " ".join(
                    f"n={p['n']}:{p['budget']['wall_seconds']}s"
                    for p in profile[family])
                print(f"  {name} [{family}]: {curve}")
        elif "hit_rate_warm" in profile:
            print(f"  {name}: warm replay {profile['wall_seconds_warm']}s "
                  f"vs cold {profile['wall_seconds_cold']}s over "
                  f"{profile['cells']} cells "
                  f"({profile['replay_speedup']}x, 100% hits)")
        elif "sweep" in profile:
            print(f"  {name}: {profile['wall_seconds_shared']}s wall "
                  f"(shared lottery; {profile['wall_seconds_unshared']}s "
                  f"unshared), {profile['lottery_hits']}/"
                  f"{profile['lottery_coins'] + profile['lottery_hits']} "
                  f"flips served from cache")
        elif "points" in profile:
            curve = " ".join(
                f"Δ={p['delta']}:{p['speedup']}x"
                for p in profile["points"])
            densest = profile["points"][-1]
            print(f"  {name}: event vs lockstep {curve} "
                  f"(skip density {densest['skip_density']} at "
                  f"Δ={densest['delta']}; all points result-identical)")
        elif "adaptive_points" in profile:
            curve = " ".join(
                f"f*={p['actual_faults']}:{p['adaptive_words']}w"
                for p in profile["adaptive_points"])
            quad = profile["adaptive_points"][0]["quadratic_words"]
            print(f"  {name}: {curve} "
                  f"(quadratic baseline {quad}w at f*=0; fast path <= "
                  f"{profile['fast_path_word_factor']}n)")
        elif "rounds_saved" in profile:
            print(f"  {name}: {profile['rounds_executed_early_stop']} rounds "
                  f"({profile['wall_seconds_early_stop']}s) vs fixed budget "
                  f"{profile['rounds_executed_fixed_budget']} rounds "
                  f"({profile['wall_seconds_fixed_budget']}s); "
                  f"{profile['rounds_saved']} rounds saved")
        elif "fast_path_identical" in profile:
            print(f"  {name}: perfect-conditions run identical to "
                  f"unconditioned ({profile['wall_seconds_perfect_conditions']}s"
                  f" vs {profile['wall_seconds_unconditioned']}s); "
                  f"wan run {profile['wall_seconds_wan_conditions']}s at "
                  f"latency {profile['wan_mean_delivery_latency']}")
        else:
            print(f"  {name}: {profile['wall_seconds']}s wall, "
                  f"{profile['authenticator_check_calls']} check calls, "
                  f"{profile['envelopes_per_second']} envelopes/s")


if __name__ == "__main__":
    main()
