"""Property-based event-scheduler suite (seeded generators, no new deps).

Two layers of randomized evidence for the event engine:

- **Scheduler-order invariants**, checked by driving a
  :class:`~repro.sim.conditions.ConditionedNetwork` directly with the
  event engine's own access pattern (jump to the earlier of the next
  step frontier and the next due timestamp): no copy is ever delivered
  before its timestamp, post-GST deliveries respect the Δ clamp, no
  copy ever crosses an active partition, and deferred copies heal in
  their original queue order.
- **Agreement/validity at the engine level**: across 200 sampled
  ``NetworkConditions`` × ``LinkTopology`` × ``DelayAdversary``
  configurations, event-engine executions keep the lock-step protocols'
  agreement, validity, and termination guarantees — the synchronizer
  argument, now carried by the skipping scheduler.  The agreement
  sampler stays inside the Δ-bounded lossless regime (``gst=0``, no
  partitions): outside it the *model* gives no guarantee — an unhealed
  split can outlive a small execution identically on both loops — so
  partitions and pre-GST losses are exercised by the order invariants
  above and by the differential suite, where the claim is identity, not
  agreement.

Configurations are drawn from seeded ``random.Random`` generators so
every failure reproduces from its case number alone (the idiom of
``tests/test_network_properties.py``).
"""

import random

import pytest

from repro.adversaries import DelayAdversary
from repro.errors import SimulationError
from repro.harness import run_instance
from repro.protocols import build_quadratic_ba
from repro.sim.conditions import (
    ConditionedNetwork,
    LinkTopology,
    NetworkConditions,
    Partition,
)

#: 200 sampled engine-level configurations (the satellite's floor),
#: split into chunks so one failing sample names a small replay set.
AGREEMENT_CASES = 200
CHUNK = 10

SCHEDULER_CASES = range(60)


def random_conditions(rng: random.Random,
                      delta_bounded: bool = False) -> NetworkConditions:
    """One random network environment over the full conditions surface:
    Δ, GST with pre-GST losses, every latency family, every n-independent
    topology kind, and (sometimes) a healing partition.

    ``delta_bounded=True`` restricts to the regime the synchronizer
    argument guarantees correctness in — ``gst=0``, no losses, no
    partitions — leaving Δ, latency, topology, and adversarial delaying
    as the random axes."""
    delta = rng.randint(1, 6)
    kind = rng.choice(("fixed", "uniform", "geometric"))
    if kind == "fixed":
        latency = ("fixed", rng.randint(1, delta))
    elif kind == "uniform":
        lo = rng.randint(1, delta)
        latency = ("uniform", lo, rng.randint(lo, delta))
    else:
        latency = ("geometric", rng.choice((0.3, 0.5, 0.8)))
    gst = 0 if delta_bounded else rng.choice(
        (0, 0, rng.randint(1, 2 * delta)))
    drop_rate = rng.choice((0.0, 0.1, 0.25)) if gst else 0.0
    duplicate_rate = rng.choice((0.0, 0.1)) if gst else 0.0
    topology = None
    if delta > 1:
        topology = rng.choice((
            None,
            LinkTopology.clustered(clusters=rng.choice((2, 4)),
                                   extra=rng.randint(1, delta)),
            LinkTopology.star(hub=0, extra=rng.randint(1, delta)),
            LinkTopology.ring(extra=1),
        ))
    partitions = ()
    if not delta_bounded and rng.random() < 0.3:
        start = rng.randint(0, 4)
        partitions = (Partition(start=start,
                                end=start + rng.randint(2, 6),
                                split=rng.choice((0.3, 0.5, 0.7))),)
    return NetworkConditions(
        delta=delta, gst=gst, latency=latency, drop_rate=drop_rate,
        duplicate_rate=duplicate_rate, partitions=partitions,
        topology=topology)


# ---------------------------------------------------------------------------
# Scheduler-order invariants (unit level, event-engine access pattern)
# ---------------------------------------------------------------------------

def drive_event_pattern(network: ConditionedNetwork, rng: random.Random,
                        steps: int = 8):
    """Replicate the event engine's clock walk over a conditioned
    network, staging a random message batch at every step frontier.
    Returns ``(delivered_round, copy)`` records in delivery order."""
    delta = network.conditions.delta
    limit = steps * delta
    n = network.n
    records = []
    network_round = 0
    while network_round < limit:
        for copy in network.advance_to(network_round):
            records.append((network_round, copy))
        if network_round % delta == 0:
            for _ in range(rng.randint(0, 3)):
                sender = rng.randrange(n)
                recipient = rng.choice((None, rng.randrange(n)))
                network.stage(sender, recipient,
                              f"m{network_round}", network_round,
                              honest_sender=True)
        if network.has_staged():
            network_round += 1
            continue
        upcoming = network_round - network_round % delta + delta
        due = network.next_due_round()
        if due is not None and due < upcoming:
            upcoming = due
        network_round = upcoming
    return records


class TestSchedulerOrderInvariants:
    @pytest.mark.parametrize("case", SCHEDULER_CASES)
    def test_event_walk_respects_timestamps_and_clamps(self, case):
        rng = random.Random(f"scheduler-order-{case}")
        conditions = random_conditions(rng)
        n = rng.randint(4, 8)
        network = ConditionedNetwork(n, conditions, seed=case)
        records = drive_event_pattern(network, rng)

        for delivered_round, copy in records:
            # Never before its timestamp — and the skip-ahead walk wakes
            # exactly at due timestamps, so never after it either.
            assert delivered_round == copy.due_round
            assert copy.due_round > copy.sent_round
            # Post-GST the Δ clamp binds every non-deferred copy.
            if not conditions.partitions \
                    and copy.sent_round >= conditions.gst:
                assert delivered_round - copy.sent_round <= conditions.delta
            # No copy ever crosses an active partition.
            for partition in conditions.partitions:
                assert not (
                    partition.active_at(delivered_round)
                    and partition.separates(copy.envelope.sender,
                                            copy.recipient, n))

    @pytest.mark.parametrize("case", SCHEDULER_CASES)
    def test_stats_accounting_is_conserved(self, case):
        """Every scheduled copy is accounted exactly once: delivered,
        dropped pre-GST, or still queued at the horizon — and the queue
        events cover deliveries, duplicates, and deferrals."""
        rng = random.Random(f"scheduler-stats-{case}")
        conditions = random_conditions(rng)
        n = rng.randint(4, 8)
        network = ConditionedNetwork(n, conditions, seed=case)
        records = drive_event_pattern(network, rng)
        stats = network.stats
        assert stats.delivered_copies == len(records)
        assert stats.events_processed == (
            stats.delivered_copies + stats.deferred_copies
            + len(network._queue))
        assert stats.skipped_ticks + stats.delivered_copies > 0
        assert stats.skipped_ticks < stats.network_rounds

    def test_deferred_copies_heal_in_original_order(self):
        """Copies queued up against a partition flood in at the heal
        round in exactly the order they originally came due."""
        partition = Partition(start=0, end=9, split=0.5)
        conditions = NetworkConditions(
            delta=1, latency=("fixed", 1), partitions=(partition,))
        network = ConditionedNetwork(4, conditions, seed=0)
        # One cross-partition copy per round for rounds 0..3; each comes
        # due (and defers) one round later, in staging order.
        for index in range(4):
            network.advance_to(index)
            network.stage(0, 3, f"cross-{index}", index, honest_sender=True)
        delivered = {}
        for round_index in range(4, 12):
            for copy in network.advance_to(round_index):
                delivered.setdefault(round_index, []).append(
                    copy.delivery.payload)
        assert delivered == {
            9: ["cross-0", "cross-1", "cross-2", "cross-3"]}
        assert network.stats.deferred_copies == 4

    def test_clock_cannot_move_backwards(self):
        network = ConditionedNetwork(
            3, NetworkConditions(delta=2, latency=("fixed", 1)), seed=0)
        network.advance_to(5)
        with pytest.raises(SimulationError, match="backwards"):
            network.advance_to(5)

    def test_next_due_round_tracks_the_queue_head(self):
        conditions = NetworkConditions(delta=4, latency=("fixed", 3))
        network = ConditionedNetwork(3, conditions, seed=0)
        assert network.next_due_round() is None
        network.stage(0, 1, "m", 0, honest_sender=True)
        network.advance_to(0)  # drains the staging window: due at 3
        assert network.next_due_round() == 3
        assert network.advance_to(3)
        assert network.next_due_round() is None


# ---------------------------------------------------------------------------
# Agreement/validity across sampled configurations (engine level)
# ---------------------------------------------------------------------------

def random_inputs(rng: random.Random, n: int):
    if rng.random() < 0.5:
        bit = rng.randint(0, 1)
        return [bit] * n, bit
    return [rng.randint(0, 1) for _ in range(n)], None


class TestAgreementAcrossSampledConfigurations:
    @pytest.mark.parametrize("chunk", range(AGREEMENT_CASES // CHUNK))
    def test_event_engine_keeps_the_guarantees(self, chunk):
        for case in range(chunk * CHUNK, (chunk + 1) * CHUNK):
            rng = random.Random(f"event-agreement-{case}")
            conditions = random_conditions(rng, delta_bounded=True)
            n = rng.randint(6, 10)
            f = rng.randint(0, (n - 1) // 2)
            inputs, expected = random_inputs(rng, n)
            seed = rng.randint(0, 2**16)
            adversary = None
            if rng.random() < 0.4:
                adversary = DelayAdversary(
                    fraction=rng.choice((0.5, 1.0)), seed=seed)
            instance = build_quadratic_ba(n, f, inputs, seed=seed)
            result = run_instance(instance, f, adversary, seed=seed,
                                  conditions=conditions, scheduler="event")
            context = f"case {case}: {conditions.describe()}"
            assert result.consistent(), f"agreement broken ({context})"
            assert result.agreement_valid(), f"validity broken ({context})"
            assert result.all_decided(), f"termination broken ({context})"
            if expected is not None:
                assert set(result.honest_outputs) == {expected}, context
