"""Tests for the committed-key VRF (Appendix D compiler)."""

from dataclasses import replace

from repro.crypto.vrf import VrfKeyPair, VrfOutput, verify_vrf


class TestVrfCorrectness:
    def test_evaluate_verify_roundtrip(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        output = keypair.evaluate(("Vote", 1, 0), rng)
        assert verify_vrf(group, keypair.public, ("Vote", 1, 0), output)

    def test_wrong_message_rejected(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        output = keypair.evaluate(("Vote", 1, 0), rng)
        assert not verify_vrf(group, keypair.public, ("Vote", 1, 1), output)

    def test_wrong_key_rejected(self, group, rng):
        alice = VrfKeyPair.generate(group, rng)
        bob = VrfKeyPair.generate(group, rng)
        output = alice.evaluate("m", rng)
        assert not verify_vrf(group, bob.public, "m", output)

    def test_beta_in_range(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        output = keypair.evaluate("m", rng)
        assert 0 <= output.beta < 2**256

    def test_tampered_beta_rejected(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        output = keypair.evaluate("m", rng)
        forged = replace(output, beta=(output.beta + 1) % 2**256)
        assert not verify_vrf(group, keypair.public, "m", forged)

    def test_tampered_gamma_rejected(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        output = keypair.evaluate("m", rng)
        forged = replace(output, gamma=group.exp(output.gamma, 2))
        assert not verify_vrf(group, keypair.public, "m", forged)


class TestVrfUniqueness:
    def test_deterministic_evaluation(self, group, rng):
        """The pseudorandom value is a function of (key, message) even
        though proofs are randomized — the uniqueness property the
        bit-specific eligibility argument relies on."""
        keypair = VrfKeyPair.generate(group, rng)
        out1 = keypair.evaluate("m", rng)
        out2 = keypair.evaluate("m", rng)
        assert out1.gamma == out2.gamma
        assert out1.beta == out2.beta
        # Both (independently randomized) proofs verify.
        assert verify_vrf(group, keypair.public, "m", out1)
        assert verify_vrf(group, keypair.public, "m", out2)

    def test_no_grinding_another_beta(self, group, rng):
        """A proof cannot vouch for a different gamma: perfect binding of
        the committed key pins the unique evaluation."""
        keypair = VrfKeyPair.generate(group, rng)
        out = keypair.evaluate("m", rng)
        other = VrfKeyPair.generate(group, rng)
        foreign = other.evaluate("m", rng)
        mixed = VrfOutput(gamma=foreign.gamma, beta=foreign.beta,
                          proof=out.proof)
        assert not verify_vrf(group, keypair.public, "m", mixed)

    def test_distinct_messages_distinct_outputs(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        betas = {keypair.evaluate(("topic", i), rng).beta for i in range(20)}
        assert len(betas) == 20


class TestVrfPseudorandomness:
    def test_beta_roughly_uniform(self, group, rng):
        keypair = VrfKeyPair.generate(group, rng)
        below_half = sum(
            keypair.evaluate(("m", i), rng).beta < 2**255 for i in range(200))
        assert 60 < below_half < 140

    def test_keys_give_independent_outputs(self, group, rng):
        k1 = VrfKeyPair.generate(group, rng)
        k2 = VrfKeyPair.generate(group, rng)
        assert k1.evaluate("m", rng).beta != k2.evaluate("m", rng).beta
