"""Differential byte-identity: batched vs. legacy (eager) delivery.

The batched delivery path (``SynchronousNetwork.deliver`` returning lazy
:class:`~repro.sim.network.RoundInboxes`) replaced the historical eager
O(n²) per-recipient expansion.  These tests run whole protocol executions
on both paths — the eager path reconstructed by routing ``deliver()``
through the :func:`~repro.sim.network.legacy_deliver` test helper — and
assert the executions are *identical*: same transcripts, same metrics,
same decisions, same decision rounds.  Identity (not mere consistency) is
the repo's established bar for hot-path rewrites.

Sizes follow the scaling-curve satellite: n ∈ {96, 384} for both the
quadratic BA and the phase-king warmup (f chosen small at n = 384 so the
executions stay test-sized; the delivery fan-out being exercised is a
function of n, not f).
"""

import pytest

from repro.harness.runner import run_instance
from repro.protocols.phase_king import build_phase_king
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.sim.network import SynchronousNetwork, legacy_deliver


def _snapshot(result):
    """Everything an execution observably produced, content-compared."""
    return {
        "outputs": result.outputs,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "transcript": [
            (e.envelope_id, e.sender, e.recipient, repr(e.payload),
             e.round_sent, e.honest_sender)
            for e in result.transcript],
        "metrics": (result.metrics.honest_multicast_count,
                    result.metrics.honest_multicast_bits,
                    result.metrics.honest_unicast_count,
                    result.metrics.honest_unicast_bits,
                    result.metrics.corrupt_multicast_count,
                    result.metrics.corrupt_unicast_count,
                    result.metrics.max_message_bits,
                    dict(result.metrics.per_round_honest_multicasts),
                    result.metrics.per_round_multicast_bits()),
    }


CASES = [
    ("quadratic-96", lambda: run_instance(
        build_quadratic_ba(96, 47, [i % 2 for i in range(96)], seed=1),
        47, seed=1)),
    ("quadratic-384", lambda: run_instance(
        build_quadratic_ba(384, 50, [i % 2 for i in range(384)], seed=1),
        50, seed=1)),
    ("phase-king-96", lambda: run_instance(
        build_phase_king(96, 10, [i % 2 for i in range(96)], seed=2),
        10, seed=2)),
    ("phase-king-384", lambda: run_instance(
        build_phase_king(384, 5, [i % 2 for i in range(384)], seed=2,
                         epochs=3),
        5, seed=2)),
]


@pytest.mark.parametrize("name,execute", CASES, ids=[c[0] for c in CASES])
def test_batched_delivery_matches_legacy(monkeypatch, name, execute):
    batched = _snapshot(execute())
    monkeypatch.setattr(SynchronousNetwork, "deliver",
                        lambda self: legacy_deliver(self))
    legacy = _snapshot(execute())
    assert batched == legacy


def test_legacy_helper_expands_eagerly():
    """The helper itself honors the delivery contract: plain dict, one
    list per node, suppression and self-skip applied."""
    network = SynchronousNetwork(4)
    network.stage(1, None, "broadcast", 0, honest_sender=True)
    suppressed = network.stage(0, None, "removed", 0, honest_sender=True)
    network.suppress(suppressed, recipient=3)
    network.stage(2, 2, "self", 0, honest_sender=False)
    inboxes = legacy_deliver(network)
    assert isinstance(inboxes, dict)
    assert [d.payload for d in inboxes[3]] == ["broadcast"]
    assert [d.payload for d in inboxes[2]] == ["broadcast", "removed"]
    assert [d.payload for d in inboxes[1]] == ["removed"]
    # A fresh window: nothing left to deliver.
    assert all(deliveries == [] for deliveries in network.deliver().values())
