"""Tests for the Byzantine Broadcast reduction (Section 1.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import run_instance
from repro.protocols import (
    build_broadcast_from_ba,
    build_phase_king_subquadratic,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.protocols.broadcast import SenderInputMsg
from repro.sim.adversary import Adversary
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=30, epsilon=0.1)


class EquivocatingSender(Adversary):
    """Corrupt sender announces 0 to even nodes and 1 to odd nodes."""

    def on_setup(self):
        self.api.corrupt(0)

    def react(self, round_index, staged):
        if round_index != 0:
            return
        for node in range(1, self.api.n):
            bit = node % 2
            self.api.inject(0, node, SenderInputMsg(bit=bit, sender=0))


class TestBroadcastValidity:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_honest_sender_quadratic(self, bit):
        n, f = 9, 4
        instance = build_broadcast_from_ba(
            build_quadratic_ba, n=n, f=f, sender_input=bit)
        result = run_instance(instance, f, seed=0)
        assert result.broadcast_valid(0, bit)
        assert set(result.honest_outputs) == {bit}

    @pytest.mark.parametrize("bit", [0, 1])
    def test_honest_sender_subquadratic(self, bit):
        n, f = 150, 45
        instance = build_broadcast_from_ba(
            build_subquadratic_ba, n=n, f=f, sender_input=bit, params=PARAMS)
        result = run_instance(instance, f, seed=0)
        assert result.broadcast_valid(0, bit)

    def test_phase_king_inner_protocol(self):
        n, f = 120, 25
        instance = build_broadcast_from_ba(
            build_phase_king_subquadratic, n=n, f=f, sender_input=1,
            params=PARAMS, epochs=6)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {1}

    def test_rejects_non_bit_input(self):
        with pytest.raises(ConfigurationError):
            build_broadcast_from_ba(build_quadratic_ba, n=5, f=2,
                                    sender_input=7)


class TestEquivocatingSender:
    def test_consistency_enforced_by_inner_ba(self):
        """The reduction's value: even a corrupt, equivocating sender
        cannot split honest outputs — BA consistency takes over."""
        n, f = 9, 4
        instance = build_broadcast_from_ba(
            build_quadratic_ba, n=n, f=f, sender_input=1)
        result = run_instance(instance, f, EquivocatingSender(), seed=1)
        assert result.consistent()

    def test_broadcast_validity_vacuous_for_corrupt_sender(self):
        n, f = 9, 4
        instance = build_broadcast_from_ba(
            build_quadratic_ba, n=n, f=f, sender_input=1)
        result = run_instance(instance, f, EquivocatingSender(), seed=1)
        assert result.broadcast_valid(0, 1)  # vacuously: sender corrupt


class TestWrapperMechanics:
    def test_adds_exactly_one_round(self):
        n, f = 9, 4
        ba = build_quadratic_ba(n, f, [1] * n)
        bb = build_broadcast_from_ba(build_quadratic_ba, n=n, f=f,
                                     sender_input=1)
        assert bb.max_rounds == ba.max_rounds + 1

    def test_silent_sender_defaults(self):
        """If the (corrupt) sender says nothing, honest nodes run BA on
        the default input and still agree."""
        class SilentSender(Adversary):
            def on_setup(self):
                self.api.corrupt(0)

            def react(self, round_index, staged):
                return None

        n, f = 9, 4
        instance = build_broadcast_from_ba(
            build_quadratic_ba, n=n, f=f, sender_input=1, default_input=0)
        result = run_instance(instance, f, SilentSender(), seed=2)
        assert result.consistent()
        assert set(result.honest_outputs) == {0}

    def test_inner_state_revealed_on_corruption(self):
        n, f = 9, 4
        instance = build_broadcast_from_ba(
            build_quadratic_ba, n=n, f=f, sender_input=1)
        state = instance.nodes[3].reveal_state()
        assert "inner_state" in state
