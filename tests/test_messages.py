"""Tests for protocol message types: immutability, sizes, structure."""

import dataclasses

import pytest

from repro.protocols.certificates import Certificate, certificate_from_votes
from repro.protocols.messages import (
    AckMsg,
    CommitMsg,
    PhaseKingProposeMsg,
    ProposeMsg,
    SignedVote,
    StatusMsg,
    TerminateMsg,
    VoteMsg,
)
from repro.serialization import canonical_bytes, encoded_size_bits


def _certificate(iteration=1, bit=1, voters=4):
    return certificate_from_votes(
        iteration, bit, {v: f"auth-{v}" for v in range(voters)}, voters)


class TestImmutability:
    """Sent messages cannot be retracted or altered (App. A.1)."""

    @pytest.mark.parametrize("message", [
        SignedVote(1, 0, 3, "a"),
        StatusMsg(2, 1, None, 3, "a"),
        ProposeMsg(2, 1, None, 3, "a"),
        VoteMsg(2, 1, 3, "a", None),
        CommitMsg(2, 1, _certificate(), 3, "a"),
        TerminateMsg(1, 2, (), 3, "a"),
        PhaseKingProposeMsg(0, 1, 3, "a"),
        AckMsg(0, 1, 3, "a"),
    ])
    def test_frozen(self, message):
        field = dataclasses.fields(message)[0].name
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(message, field, 99)


class TestSizeAccounting:
    def test_vote_without_proposal_is_small(self):
        vote = VoteMsg(1, 1, 3, "ticket", None)
        assert encoded_size_bits(vote) < 1000

    def test_certificate_size_scales_with_quorum(self):
        small = CommitMsg(1, 1, _certificate(voters=4), 3, "a")
        large = CommitMsg(1, 1, _certificate(voters=16), 3, "a")
        assert (encoded_size_bits(large) > 2 * encoded_size_bits(small))

    def test_terminate_with_stripped_commits_is_linear(self):
        """The Lemma 15 fix: Terminate carries certificate-free commits."""
        stripped = tuple(
            CommitMsg(1, 1, None, sender, "auth") for sender in range(10))
        full = tuple(
            CommitMsg(1, 1, _certificate(voters=10), sender, "auth")
            for sender in range(10))
        small = TerminateMsg(1, 1, stripped, 3, "a")
        big = TerminateMsg(1, 1, full, 3, "a")
        assert encoded_size_bits(small) < encoded_size_bits(big) / 5

    def test_messages_have_canonical_encodings(self):
        vote = VoteMsg(2, 1, 3, "a", None)
        assert canonical_bytes(vote) == canonical_bytes(
            VoteMsg(2, 1, 3, "a", None))
        assert canonical_bytes(vote) != canonical_bytes(
            VoteMsg(2, 0, 3, "a", None))


class TestStructure:
    def test_vote_converts_to_signed_vote(self):
        vote = VoteMsg(iteration=2, bit=1, sender=3, auth="t",
                       proposal=None)
        signed = vote.as_signed_vote()
        assert signed == SignedVote(iteration=2, bit=1, voter=3, auth="t")

    def test_certificate_is_hashable_reference(self):
        cert = _certificate()
        assert isinstance(cert, Certificate)
        assert hash(cert) == hash(_certificate())
