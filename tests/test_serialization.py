"""Tests for canonical encoding and size accounting."""

from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.serialization import canonical_bytes, encoded_size_bits


@dataclass(frozen=True)
class Point:
    x: int
    y: int


@dataclass(frozen=True)
class Wrapper:
    label: str
    point: Point


class TestEncodedSize:
    def test_small_int_is_one_word(self):
        assert encoded_size_bits(7) == 64
        assert encoded_size_bits(-7) == 64

    def test_big_int_sized_by_bytes(self):
        value = 1 << 256
        assert encoded_size_bits(value) == 8 * ((value.bit_length() + 7) // 8)

    def test_bytes_have_length_prefix(self):
        assert encoded_size_bits(b"abcd") == 32 + 32

    def test_string_counts_utf8(self):
        assert encoded_size_bits("abc") == 32 + 24

    def test_none_and_bool_are_one_byte(self):
        assert encoded_size_bits(None) == 8
        assert encoded_size_bits(True) == 8

    def test_dataclass_sums_fields_plus_tag(self):
        assert encoded_size_bits(Point(1, 2)) == 32 + 64 + 64

    def test_nested_dataclass(self):
        size = encoded_size_bits(Wrapper("ab", Point(1, 2)))
        assert size == 32 + (32 + 16) + (32 + 64 + 64)

    def test_tuple_and_list_agree(self):
        assert encoded_size_bits((1, 2)) == encoded_size_bits([1, 2])

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            encoded_size_bits(object())

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40)))
    def test_list_size_is_sum_plus_prefix(self, values):
        expected = 32 + sum(encoded_size_bits(v) for v in values)
        assert encoded_size_bits(values) == expected


class TestCanonicalBytes:
    def test_deterministic(self):
        assert canonical_bytes(Point(3, 4)) == canonical_bytes(Point(3, 4))

    def test_distinguishes_types(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(b"x") != canonical_bytes("x")

    def test_distinguishes_field_values(self):
        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))

    def test_distinguishes_nesting(self):
        assert canonical_bytes((1, (2, 3))) != canonical_bytes((1, 2, 3))

    def test_sets_are_order_independent(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})

    def test_dicts_are_order_independent(self):
        assert (canonical_bytes({"a": 1, "b": 2})
                == canonical_bytes({"b": 2, "a": 1}))

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    @given(st.tuples(st.integers(), st.text(max_size=20)),
           st.tuples(st.integers(), st.text(max_size=20)))
    def test_injective_on_simple_tuples(self, left, right):
        if left != right:
            assert canonical_bytes(left) != canonical_bytes(right)

    @given(st.integers())
    def test_int_roundtrip_stability(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)


class TestGenerationalSizeMemo:
    """Regression: hitting the identity-memo cap must rotate generations,
    not wipe the whole table (the historical full-clear forced a
    thundering recompute of every live message object mid-trial)."""

    def test_hot_entries_survive_rotation(self, monkeypatch):
        import repro.serialization as ser

        ser.clear_size_cache()
        monkeypatch.setattr(ser, "_SIZE_CACHE_LIMIT", 4)
        try:
            hot = Point(0, 0)
            baseline = encoded_size_bits(hot)
            cold = [Point(i, i) for i in range(1, 20)]
            rotated = False
            for probe in cold:
                encoded_size_bits(probe)
                # Touch the hot object between fills so every rotation
                # finds it recently used and promotes it.
                assert encoded_size_bits(hot) == baseline
                rotated = rotated or bool(ser._SIZE_BY_ID_OLD)
                # Generational bound: never more than two generations
                # of at most the cap (+1 for the entry that triggered
                # the rotation) are live.
                assert len(ser._SIZE_BY_ID) <= 5
                assert len(ser._SIZE_BY_ID_OLD) <= 5
            assert rotated, "cap never reached; test is vacuous"
            # The hot entry was promoted across every rotation.
            entry = (ser._SIZE_BY_ID.get(id(hot))
                     or ser._SIZE_BY_ID_OLD.get(id(hot)))
            assert entry is not None and entry[0] is hot
        finally:
            ser.clear_size_cache()

    def test_rotation_preserves_correct_sizes(self, monkeypatch):
        import repro.serialization as ser

        ser.clear_size_cache()
        monkeypatch.setattr(ser, "_SIZE_CACHE_LIMIT", 2)
        try:
            probes = [Wrapper(label=str(i), point=Point(i, -i))
                      for i in range(12)]
            expected = [encoded_size_bits(p) for p in probes]
            # Re-query in reverse: most entries have been evicted and are
            # recomputed; sizes must not change either way.
            assert [encoded_size_bits(p)
                    for p in reversed(probes)] == expected[::-1]
        finally:
            ser.clear_size_cache()
