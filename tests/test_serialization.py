"""Tests for canonical encoding and size accounting."""

from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.serialization import canonical_bytes, encoded_size_bits


@dataclass(frozen=True)
class Point:
    x: int
    y: int


@dataclass(frozen=True)
class Wrapper:
    label: str
    point: Point


class TestEncodedSize:
    def test_small_int_is_one_word(self):
        assert encoded_size_bits(7) == 64
        assert encoded_size_bits(-7) == 64

    def test_big_int_sized_by_bytes(self):
        value = 1 << 256
        assert encoded_size_bits(value) == 8 * ((value.bit_length() + 7) // 8)

    def test_bytes_have_length_prefix(self):
        assert encoded_size_bits(b"abcd") == 32 + 32

    def test_string_counts_utf8(self):
        assert encoded_size_bits("abc") == 32 + 24

    def test_none_and_bool_are_one_byte(self):
        assert encoded_size_bits(None) == 8
        assert encoded_size_bits(True) == 8

    def test_dataclass_sums_fields_plus_tag(self):
        assert encoded_size_bits(Point(1, 2)) == 32 + 64 + 64

    def test_nested_dataclass(self):
        size = encoded_size_bits(Wrapper("ab", Point(1, 2)))
        assert size == 32 + (32 + 16) + (32 + 64 + 64)

    def test_tuple_and_list_agree(self):
        assert encoded_size_bits((1, 2)) == encoded_size_bits([1, 2])

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            encoded_size_bits(object())

    @given(st.lists(st.integers(min_value=-(2**40), max_value=2**40)))
    def test_list_size_is_sum_plus_prefix(self, values):
        expected = 32 + sum(encoded_size_bits(v) for v in values)
        assert encoded_size_bits(values) == expected


class TestCanonicalBytes:
    def test_deterministic(self):
        assert canonical_bytes(Point(3, 4)) == canonical_bytes(Point(3, 4))

    def test_distinguishes_types(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(b"x") != canonical_bytes("x")

    def test_distinguishes_field_values(self):
        assert canonical_bytes(Point(1, 2)) != canonical_bytes(Point(2, 1))

    def test_distinguishes_nesting(self):
        assert canonical_bytes((1, (2, 3))) != canonical_bytes((1, 2, 3))

    def test_sets_are_order_independent(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})

    def test_dicts_are_order_independent(self):
        assert (canonical_bytes({"a": 1, "b": 2})
                == canonical_bytes({"b": 2, "a": 1}))

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    @given(st.tuples(st.integers(), st.text(max_size=20)),
           st.tuples(st.integers(), st.text(max_size=20)))
    def test_injective_on_simple_tuples(self, left, right):
        if left != right:
            assert canonical_bytes(left) != canonical_bytes(right)

    @given(st.integers())
    def test_int_roundtrip_stability(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)
