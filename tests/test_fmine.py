"""Tests for the Fmine ideal functionality (Figure 1)."""

import pytest

from repro.eligibility.base import MiningCapability
from repro.eligibility.difficulty import DifficultySchedule
from repro.eligibility.fmine import FMine, FMineEligibility, FMineTicket
from repro.errors import EligibilityError
from repro.types import SecurityParameters


@pytest.fixture
def schedule(params):
    return DifficultySchedule.for_parameters(params, 100)


class TestFMineFunctionality:
    def test_mine_is_memoized(self, schedule):
        """Figure 1: repeated mine(m) calls reuse the first coin."""
        fmine = FMine(schedule, seed=1)
        first = fmine.mine(3, ("Vote", 1, 0))
        for _ in range(5):
            assert fmine.mine(3, ("Vote", 1, 0)) == first

    def test_verify_before_mine_returns_false(self, schedule):
        """Figure 1: verify(m, i) is 0 unless i has called mine(m)."""
        fmine = FMine(schedule, seed=1)
        assert not fmine.verify(3, ("Vote", 1, 0))
        fmine.mine(3, ("Vote", 1, 0))
        assert fmine.verify(3, ("Vote", 1, 0)) == fmine.mine(3, ("Vote", 1, 0))

    def test_coins_independent_across_nodes(self, schedule):
        fmine = FMine(schedule, seed=1)
        outcomes = {fmine.mine(node, ("Vote", 1, 0)) for node in range(200)}
        assert outcomes == {True, False}

    def test_coins_independent_across_bits(self, schedule):
        """Bit-specific eligibility: the (ACK, r, 0) and (ACK, r, 1)
        lotteries are independent — the paper's key insight."""
        fmine = FMine(schedule, seed=1)
        zero_winners = {node for node in range(300)
                        if fmine.mine(node, ("ACK", 1, 0))}
        one_winners = {node for node in range(300)
                       if fmine.mine(node, ("ACK", 1, 1))}
        assert zero_winners != one_winners

    def test_deterministic_per_seed(self, schedule):
        a = FMine(schedule, seed=42)
        b = FMine(schedule, seed=42)
        for node in range(50):
            assert a.mine(node, ("Vote", 1, 1)) == b.mine(node, ("Vote", 1, 1))

    def test_call_order_does_not_matter(self, schedule):
        a = FMine(schedule, seed=42)
        b = FMine(schedule, seed=42)
        topics = [("Vote", r, bit) for r in range(3) for bit in (0, 1)]
        for topic in topics:
            a.mine(5, topic)
        for topic in reversed(topics):
            assert b.mine(5, topic) == a.verify(5, topic)

    def test_success_rate_tracks_difficulty(self, schedule, params):
        fmine = FMine(schedule, seed=7)
        wins = sum(fmine.mine(node, ("Vote", 1, 0)) for node in range(2000))
        expected = 2000 * params.committee_probability(100)
        assert 0.6 * expected < wins < 1.4 * expected


class TestFMineEligibility:
    def test_winning_ticket_verifies(self, schedule):
        source = FMineEligibility(100, schedule, seed=3)
        for node in range(100):
            ticket = source.capability_for(node).try_mine(("Vote", 1, 0))
            if ticket is not None:
                assert source.verify(ticket)

    def test_losing_node_gets_none(self, schedule):
        source = FMineEligibility(400, schedule, seed=3)
        results = [source.capability_for(node).try_mine(("Vote", 1, 0))
                   for node in range(400)]
        assert any(ticket is None for ticket in results)

    def test_forged_ticket_rejected(self, schedule):
        """A ticket claiming a topic the node never successfully mined."""
        source = FMineEligibility(100, schedule, seed=3)
        forged = FMineTicket(node_id=5, topic=("Vote", 9, 1))
        assert not source.verify(forged)

    def test_ticket_for_wrong_node_rejected(self, schedule):
        source = FMineEligibility(100, schedule, seed=3)
        winner = None
        for node in range(100):
            if source.capability_for(node).try_mine(("Vote", 1, 0)):
                winner = node
                break
        assert winner is not None
        stolen = FMineTicket(node_id=(winner + 1) % 100, topic=("Vote", 1, 0))
        assert not source.verify(stolen)

    def test_out_of_range_node_rejected(self, schedule):
        source = FMineEligibility(10, schedule, seed=3)
        assert not source.verify(FMineTicket(node_id=99, topic=("Vote", 1, 0)))

    def test_counterfeit_capability_rejected(self, schedule):
        source = FMineEligibility(10, schedule, seed=3)
        fake = MiningCapability(source, 3)
        with pytest.raises(EligibilityError):
            fake.try_mine(("Vote", 1, 0))

    def test_secrecy_verify_without_mine_is_false(self, schedule):
        """No one learns an honest node's eligibility before it mines."""
        source = FMineEligibility(10, schedule, seed=3)
        assert not source.fmine.verify(4, ("Vote", 1, 0))

    def test_ticket_bits_positive(self, schedule):
        assert FMineEligibility(10, schedule, seed=3).ticket_bits() > 0
