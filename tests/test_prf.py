"""Tests for the HMAC and DDH PRFs."""

import pytest

from repro.crypto.prf import DdhPrf, HmacPrf


class TestHmacPrf:
    def test_deterministic(self):
        prf = HmacPrf(b"key")
        assert prf.evaluate(b"m") == prf.evaluate(b"m")

    def test_message_sensitivity(self):
        prf = HmacPrf(b"key")
        assert prf.evaluate(b"m0") != prf.evaluate(b"m1")

    def test_key_sensitivity(self):
        assert HmacPrf(b"k1").evaluate(b"m") != HmacPrf(b"k2").evaluate(b"m")

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            HmacPrf(b"")

    def test_evaluate_object_uses_canonical_encoding(self):
        prf = HmacPrf(b"key")
        assert prf.evaluate_object(("Vote", 1, 0)) != prf.evaluate_object(
            ("Vote", 1, 1))

    def test_evaluate_int_range(self):
        prf = HmacPrf(b"key")
        value = prf.evaluate_int(("ACK", 2, 1))
        assert 0 <= value < 2**256

    def test_output_distribution_rough_uniformity(self):
        # The top bit should be ~50/50 over many messages.
        prf = HmacPrf(b"key")
        top_bits = sum(prf.evaluate_int(i) >> 255 for i in range(400))
        assert 120 < top_bits < 280


class TestDdhPrf:
    def test_outputs_are_group_elements(self, group, rng):
        prf = DdhPrf(group, group.random_scalar(rng))
        assert group.is_element(prf.evaluate("hello"))

    def test_deterministic(self, group, rng):
        prf = DdhPrf(group, group.random_scalar(rng))
        assert prf.evaluate(("m", 1)) == prf.evaluate(("m", 1))

    def test_message_sensitivity(self, group, rng):
        prf = DdhPrf(group, group.random_scalar(rng))
        assert prf.evaluate("a") != prf.evaluate("b")

    def test_key_sensitivity(self, group, rng):
        prf1 = DdhPrf(group, group.random_scalar(rng))
        prf2 = DdhPrf(group, group.random_scalar(rng))
        assert prf1.evaluate("m") != prf2.evaluate("m")

    def test_evaluation_is_base_to_the_key(self, group, rng):
        key = group.random_scalar(rng)
        prf = DdhPrf(group, key)
        base = prf.base_point("m")
        assert prf.evaluate("m") == group.exp(base, key)

    def test_rejects_zero_key(self, group):
        with pytest.raises(ValueError):
            DdhPrf(group, 0)

    def test_rejects_oversized_key(self, group):
        with pytest.raises(ValueError):
            DdhPrf(group, group.q)
