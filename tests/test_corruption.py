"""Tests for corruption bookkeeping and budgets."""

import pytest

from repro.errors import CapabilityError, CorruptionBudgetExceeded
from repro.sim.corruption import CorruptionController
from repro.types import AdversaryModel


class TestBudget:
    def test_budget_enforced(self):
        controller = CorruptionController(10, 2, AdversaryModel.ADAPTIVE)
        controller.authorize(0, 0)
        controller.mark_corrupt(0, 0)
        controller.authorize(1, 0)
        controller.mark_corrupt(1, 0)
        with pytest.raises(CorruptionBudgetExceeded):
            controller.authorize(2, 0)

    def test_recorruption_is_idempotent(self):
        controller = CorruptionController(10, 1, AdversaryModel.ADAPTIVE)
        controller.mark_corrupt(3, 0)
        controller.authorize(3, 5)  # already corrupt: no budget needed
        controller.mark_corrupt(3, 5)
        assert controller.corruption_round[3] == 0

    def test_remaining_counts_down(self):
        controller = CorruptionController(10, 3, AdversaryModel.ADAPTIVE)
        assert controller.corruptions_remaining == 3
        controller.mark_corrupt(0, 0)
        assert controller.corruptions_remaining == 2

    def test_budget_must_be_below_n(self):
        with pytest.raises(CorruptionBudgetExceeded):
            CorruptionController(5, 5, AdversaryModel.ADAPTIVE)

    def test_nonexistent_node_rejected(self):
        controller = CorruptionController(5, 2, AdversaryModel.ADAPTIVE)
        with pytest.raises(CapabilityError):
            controller.authorize(9, 0)


class TestModels:
    def test_static_cannot_corrupt_mid_execution(self):
        controller = CorruptionController(10, 2, AdversaryModel.STATIC)
        controller.authorize(0, -1)  # setup round is fine
        with pytest.raises(CapabilityError):
            controller.authorize(1, 0)

    def test_adaptive_can_corrupt_any_round(self):
        controller = CorruptionController(10, 2, AdversaryModel.ADAPTIVE)
        controller.authorize(1, 17)


class TestHonestyTracking:
    def test_so_far_honest(self):
        controller = CorruptionController(5, 2, AdversaryModel.ADAPTIVE)
        controller.mark_corrupt(2, 3)
        assert not controller.is_so_far_honest(2)
        assert controller.is_so_far_honest(1)

    def test_was_honest_in_round(self):
        """Corrupted in round 3: honest through round 2, not from 3 on."""
        controller = CorruptionController(5, 2, AdversaryModel.ADAPTIVE)
        controller.mark_corrupt(2, 3)
        assert controller.was_honest_in_round(2, 2)
        assert not controller.was_honest_in_round(2, 3)
        assert not controller.was_honest_in_round(2, 4)

    def test_honest_nodes_listing(self):
        controller = CorruptionController(4, 2, AdversaryModel.ADAPTIVE)
        controller.mark_corrupt(1, 0)
        assert controller.honest_nodes() == [0, 2, 3]
