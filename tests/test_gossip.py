"""Tests for the gossip-diffusion substrate."""

import math

import pytest

from repro.harness import run_instance
from repro.protocols import build_subquadratic_ba
from repro.sim.gossip import (
    expected_hops,
    gossip_cost_of_execution,
    simulate_push_gossip,
)
from repro.types import SecurityParameters


class TestPushGossip:
    def test_full_coverage_at_moderate_fanout(self):
        outcome = simulate_push_gossip(n=500, fanout=6, seed=1)
        assert outcome.full_coverage

    def test_hops_logarithmic_in_n(self):
        """O(log n) hops: 16x more nodes adds only a few hops."""
        small = simulate_push_gossip(n=128, fanout=6, seed=2)
        large = simulate_push_gossip(n=2048, fanout=6, seed=2)
        assert small.full_coverage and large.full_coverage
        assert large.hops <= small.hops + 6
        assert large.hops <= 2 * expected_hops(2048)

    def test_relays_linear_in_n(self):
        outcome = simulate_push_gossip(n=1000, fanout=4, seed=3)
        assert outcome.full_coverage
        assert outcome.relays < 40 * 1000  # O(n log n) worst bound, loose

    def test_crashed_nodes_receive_but_do_not_relay(self):
        # With most nodes crashed the epidemic still reaches the rest,
        # only slower (crashed nodes are sinks).
        crashed = list(range(100, 200))
        outcome = simulate_push_gossip(n=300, fanout=8, seed=4,
                                       crashed=crashed)
        assert outcome.full_coverage

    def test_everyone_crashed_except_origin(self):
        """With only the origin relaying, coverage within a few hops is
        the origin's own pushes — far slower than healthy gossip."""
        outcome = simulate_push_gossip(n=200, fanout=4, seed=5,
                                       crashed=list(range(1, 200)),
                                       max_hops=3)
        healthy = simulate_push_gossip(n=200, fanout=4, seed=5, max_hops=3)
        assert outcome.reached < healthy.reached
        assert outcome.relays == 3 * 4  # origin alone, three hops

    def test_deterministic_per_seed(self):
        a = simulate_push_gossip(n=200, fanout=4, seed=6)
        b = simulate_push_gossip(n=200, fanout=4, seed=6)
        assert a == b

    def test_max_hops_cutoff(self):
        outcome = simulate_push_gossip(n=10000, fanout=1, seed=7, max_hops=2)
        assert outcome.hops <= 2
        assert not outcome.full_coverage

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_push_gossip(n=0)
        with pytest.raises(ValueError):
            simulate_push_gossip(n=10, fanout=0)


class TestGossipCostTranslation:
    def test_cost_proportional_to_multicasts(self):
        n, f = 200, 50
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0,
                                         params=params)
        result = run_instance(instance, f, seed=0)
        cost = gossip_cost_of_execution(result)
        assert cost == pytest.approx(
            result.metrics.multicast_complexity_messages * 1.5 * n)

    def test_custom_relay_factor(self):
        n, f = 100, 25
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0,
                                         params=params)
        result = run_instance(instance, f, seed=0)
        assert gossip_cost_of_execution(result, relays_per_multicast=10) \
            == result.metrics.multicast_complexity_messages * 10
