"""Tests for the gossip-diffusion substrate."""

import math

import pytest

from repro.harness import run_instance
from repro.protocols import build_subquadratic_ba
from repro.sim.gossip import (
    expected_hops,
    gossip_cost_of_execution,
    simulate_push_gossip,
)
from repro.types import SecurityParameters


class TestPushGossip:
    def test_full_coverage_at_moderate_fanout(self):
        outcome = simulate_push_gossip(n=500, fanout=6, seed=1)
        assert outcome.full_coverage

    def test_hops_logarithmic_in_n(self):
        """O(log n) hops: 16x more nodes adds only a few hops."""
        small = simulate_push_gossip(n=128, fanout=6, seed=2)
        large = simulate_push_gossip(n=2048, fanout=6, seed=2)
        assert small.full_coverage and large.full_coverage
        assert large.hops <= small.hops + 6
        assert large.hops <= 2 * expected_hops(2048)

    def test_relays_linear_in_n(self):
        outcome = simulate_push_gossip(n=1000, fanout=4, seed=3)
        assert outcome.full_coverage
        assert outcome.relays < 40 * 1000  # O(n log n) worst bound, loose

    def test_crashed_nodes_receive_but_do_not_relay(self):
        # With most nodes crashed the epidemic still reaches the rest,
        # only slower (crashed nodes are sinks).
        crashed = list(range(100, 200))
        outcome = simulate_push_gossip(n=300, fanout=8, seed=4,
                                       crashed=crashed)
        assert outcome.full_coverage

    def test_everyone_crashed_except_origin(self):
        """With only the origin relaying, coverage within a few hops is
        the origin's own pushes — far slower than healthy gossip."""
        outcome = simulate_push_gossip(n=200, fanout=4, seed=5,
                                       crashed=list(range(1, 200)),
                                       max_hops=3)
        healthy = simulate_push_gossip(n=200, fanout=4, seed=5, max_hops=3)
        assert outcome.reached < healthy.reached
        assert outcome.relays == 3 * 4  # origin alone, three hops

    def test_deterministic_per_seed(self):
        a = simulate_push_gossip(n=200, fanout=4, seed=6)
        b = simulate_push_gossip(n=200, fanout=4, seed=6)
        assert a == b

    def test_max_hops_cutoff(self):
        outcome = simulate_push_gossip(n=10000, fanout=1, seed=7, max_hops=2)
        assert outcome.hops <= 2
        assert not outcome.full_coverage

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_push_gossip(n=0)
        with pytest.raises(ValueError):
            simulate_push_gossip(n=10, fanout=0)
        with pytest.raises(ValueError):
            simulate_push_gossip(n=10, loss_rate=1.0)
        with pytest.raises(ValueError):
            simulate_push_gossip(n=10, loss_rate=-0.1)


class TestFanoutBounds:
    """Per-hop relay accounting: every active node pushes exactly
    ``fanout`` times per hop, no more, no less."""

    def test_relays_bounded_by_active_nodes_times_fanout(self):
        # At most |infected| nodes are active per hop, and infected can
        # grow by at most fanout * active per hop, so total relays are
        # bounded by fanout * sum over hops of |infected at hop start|.
        for fanout in (1, 2, 5):
            outcome = simulate_push_gossip(n=64, fanout=fanout, seed=11)
            assert outcome.relays % fanout == 0
            # Never more pushes than every node relaying every hop:
            assert outcome.relays <= outcome.hops * fanout * outcome.n
            # And at least one full hop from the origin:
            if outcome.hops:
                assert outcome.relays >= fanout

    def test_single_hop_is_exactly_origin_fanout(self):
        outcome = simulate_push_gossip(n=50, fanout=7, seed=12, max_hops=1)
        assert outcome.hops == 1
        assert outcome.relays == 7

    def test_fanout_one_grows_slowest(self):
        slow = simulate_push_gossip(n=256, fanout=1, seed=13, max_hops=5)
        fast = simulate_push_gossip(n=256, fanout=8, seed=13, max_hops=5)
        assert slow.reached <= fast.reached


class TestDuplicateSuppression:
    """Re-infecting an informed node is a no-op: coverage counts distinct
    nodes, never exceeds n, and stops growing once saturated."""

    def test_reached_never_exceeds_n(self):
        # Fanout far above n: nearly every push is a duplicate.
        outcome = simulate_push_gossip(n=8, fanout=50, seed=14)
        assert outcome.reached <= 8
        assert outcome.full_coverage
        assert outcome.relays > 8  # duplicates were attempted...
        # ...but each node is counted once: reached == n exactly.
        assert outcome.reached == 8

    def test_saturated_network_stops(self):
        """Once everyone is infected the loop exits instead of pushing
        duplicate traffic forever."""
        outcome = simulate_push_gossip(n=4, fanout=16, seed=15)
        assert outcome.full_coverage
        assert outcome.hops <= 3

    def test_n_equals_one_needs_no_gossip(self):
        outcome = simulate_push_gossip(n=1, fanout=4, seed=16)
        assert outcome.full_coverage
        assert outcome.hops == 0
        assert outcome.relays == 0


class TestDeliveryUnderDrop:
    """Lossy links: pushes are paid for but may infect nobody."""

    def test_loss_zero_matches_lossless_stream(self):
        """loss_rate=0 draws no loss coins: byte-identical to before."""
        a = simulate_push_gossip(n=200, fanout=4, seed=17)
        b = simulate_push_gossip(n=200, fanout=4, seed=17, loss_rate=0.0)
        assert a == b

    def test_moderate_loss_still_covers(self):
        outcome = simulate_push_gossip(n=300, fanout=8, seed=18,
                                       loss_rate=0.25)
        assert outcome.full_coverage

    def test_loss_slows_coverage(self):
        lossless = simulate_push_gossip(n=400, fanout=4, seed=19, max_hops=4)
        lossy = simulate_push_gossip(n=400, fanout=4, seed=19,
                                     loss_rate=0.6, max_hops=4)
        assert lossy.reached < lossless.reached
        # Lost pushes still count as relays (the sender paid for them).
        assert lossy.relays > 0

    def test_heavy_loss_deterministic_per_seed(self):
        a = simulate_push_gossip(n=150, fanout=5, seed=20, loss_rate=0.5)
        b = simulate_push_gossip(n=150, fanout=5, seed=20, loss_rate=0.5)
        assert a == b


class TestGossipCostTranslation:
    def test_cost_proportional_to_multicasts(self):
        n, f = 200, 50
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0,
                                         params=params)
        result = run_instance(instance, f, seed=0)
        cost = gossip_cost_of_execution(result)
        assert cost == pytest.approx(
            result.metrics.multicast_complexity_messages * 1.5 * n)

    def test_custom_relay_factor(self):
        n, f = 100, 25
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0,
                                         params=params)
        result = run_instance(instance, f, seed=0)
        assert gossip_cost_of_execution(result, relays_per_multicast=10) \
            == result.metrics.multicast_complexity_messages * 10
