"""Unit tests for the partial-synchrony network-conditions subsystem."""

import pytest

from repro.errors import CapabilityError, ConfigurationError, SimulationError
from repro.harness import run_instance
from repro.protocols import build_quadratic_ba
from repro.sim import Simulation
from repro.sim.adversary import PassiveAdversary
from repro.sim.conditions import (
    NETWORKS,
    ConditionedNetwork,
    NetworkConditions,
    Partition,
)
from repro.sim.network import SynchronousNetwork
from tests.engines import both_engines


def drain(network, rounds):
    """Collect per-round inboxes over several network rounds."""
    return [network.deliver() for _ in range(rounds)]


class TestConditionsValidation:
    def test_perfect_is_perfect(self):
        assert NetworkConditions.perfect().is_perfect
        assert NetworkConditions().is_perfect

    def test_nontrivial_variants_are_not_perfect(self):
        assert not NetworkConditions(delta=2).is_perfect
        assert not NetworkConditions(gst=5).is_perfect
        assert not NetworkConditions(drop_rate=0.1, gst=1).is_perfect
        assert not NetworkConditions(
            partitions=(Partition(0, 4, split=0.5),)).is_perfect

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkConditions(delta=0)
        with pytest.raises(ConfigurationError):
            NetworkConditions(gst=-1)
        with pytest.raises(ConfigurationError):
            NetworkConditions(drop_rate=1.0, gst=5)
        with pytest.raises(ConfigurationError):
            NetworkConditions(latency=("zipf", 2))
        with pytest.raises(ConfigurationError):
            NetworkConditions(pre_gst_cap=0)

    def test_rejects_inert_loss_rates(self):
        """Drops/duplication only exist pre-GST: with gst=0 they would
        silently measure a lossless network, so construction refuses."""
        with pytest.raises(ConfigurationError, match="gst"):
            NetworkConditions(delta=3, drop_rate=0.1)
        with pytest.raises(ConfigurationError, match="gst"):
            NetworkConditions(delta=3, duplicate_rate=0.1)

    def test_rejects_malformed_latency_specs(self):
        """Arity and ranges fail at construction, not mid-sweep."""
        for spec in (("fixed",), ("fixed", 0), ("fixed", 2.5),
                     ("uniform", 2), ("uniform", 3, 2), ("uniform", 0, 4),
                     ("geometric",), ("geometric", 0.0), ("geometric", 1.5)):
            with pytest.raises(ConfigurationError):
                NetworkConditions(delta=4, latency=spec)

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError):
            Partition(5, 5, split=0.5)
        with pytest.raises(ConfigurationError):
            Partition(0, 4)  # neither split nor groups
        with pytest.raises(ConfigurationError):
            Partition(0, 4, split=0.5, groups=((0, 1),))
        with pytest.raises(ConfigurationError):
            Partition(0, 4, split=1.5)

    def test_conditions_are_hashable_and_picklable(self):
        import pickle
        conditions = NETWORKS["split-heal"]
        assert hash(conditions) == hash(pickle.loads(
            pickle.dumps(conditions)))

    def test_describe_is_scalar_and_stable(self):
        assert NETWORKS["wan"].describe() == "Δ=4"
        assert "gst=9" in NETWORKS["lossy"].describe()
        assert "partitions=1" in NETWORKS["split-heal"].describe()


class TestScheduling:
    def test_fixed_latency_delivers_exactly_then(self):
        conditions = NetworkConditions(delta=3, latency=("fixed", 3))
        network = ConditionedNetwork(3, conditions, seed=0)
        network.deliver()  # round 0 (nothing staged yet)
        network.stage(0, 1, "m", 0, honest_sender=True)
        assert not network.has_pending()  # staged, not yet scheduled
        rounds = [network.deliver()]
        assert network.has_pending()  # scheduled for round 3
        rounds.extend(drain(network, 2))
        assert rounds[0][1] == []  # round 1
        assert rounds[1][1] == []  # round 2
        assert [d.payload for d in rounds[2][1]] == ["m"]  # round 3
        assert not network.has_pending()

    def test_post_gst_delay_clamped_to_delta(self):
        """A latency draw above Δ cannot escape the Δ bound post-GST."""
        conditions = NetworkConditions(delta=2, latency=("fixed", 50))
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        network.stage(0, 1, "m", 0, honest_sender=True)
        rounds = drain(network, 2)
        assert [d.payload for d in rounds[1][1]] == ["m"]

    def test_pre_gst_delay_capped(self):
        conditions = NetworkConditions(
            delta=2, gst=100, latency=("fixed", 50), pre_gst_cap=4)
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        network.stage(0, 1, "m", 0, honest_sender=True)
        rounds = drain(network, 4)
        assert [d.payload for d in rounds[3][1]] == ["m"]

    def test_pre_gst_drop_everything(self):
        conditions = NetworkConditions(delta=2, gst=1000, drop_rate=0.99)
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        for _ in range(20):
            network.stage(0, 1, "m", 0, honest_sender=True)
        delivered = sum(len(r[1]) for r in drain(network, 10))
        assert network.stats.dropped_copies > 0
        assert delivered + network.stats.dropped_copies == 20

    def test_post_gst_never_drops(self):
        conditions = NetworkConditions(delta=2, gst=1, drop_rate=0.9)
        network = ConditionedNetwork(2, conditions, seed=0)
        drain(network, 2)  # past GST: senders now act at round >= 1
        for _ in range(20):
            network.stage(0, 1, "m", 1, honest_sender=True)
        delivered = sum(len(r[1]) for r in drain(network, 4))
        assert delivered == 20
        assert network.stats.dropped_copies == 0

    def test_pre_gst_duplication(self):
        conditions = NetworkConditions(delta=2, gst=1000,
                                       duplicate_rate=0.99)
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        network.stage(0, 1, "m", 0, honest_sender=True)
        delivered = sum(len(r[1]) for r in drain(network, 10))
        assert delivered == 2
        assert network.stats.duplicated_copies == 1

    def test_deterministic_schedule_per_seed(self):
        conditions = NETWORKS["lossy"]

        def schedule(seed):
            network = ConditionedNetwork(4, conditions, seed=seed)
            network.deliver()
            for index in range(10):
                network.stage(0, None, index, 0, honest_sender=True)
            return [
                [(node, [d.payload for d in inbox])
                 for node, inbox in r.items()]
                for r in drain(network, 12)
            ]

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_multicast_copies_scheduled_independently(self):
        """Different recipients of one multicast can see it in different
        rounds — the reordering partial synchrony is about."""
        conditions = NetworkConditions(delta=4, latency=("uniform", 1, 4))
        network = ConditionedNetwork(8, conditions, seed=1)
        network.deliver()
        network.stage(0, None, "m", 0, honest_sender=True)
        arrival = {}
        for round_index, inboxes in enumerate(drain(network, 4), start=1):
            for node, inbox in inboxes.items():
                if inbox:
                    arrival[node] = round_index
        assert len(arrival) == 7  # everyone but the sender
        assert len(set(arrival.values())) > 1


class TestSuppressionAndDelay:
    def test_suppression_still_respected(self):
        conditions = NetworkConditions(delta=2)
        network = ConditionedNetwork(4, conditions, seed=0)
        network.deliver()
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.suppress(envelope, recipient=2)
        delivered_to = set()
        for inboxes in drain(network, 3):
            delivered_to.update(node for node, inbox in inboxes.items()
                                if inbox)
        assert delivered_to == {1, 3}

    def test_delay_defers_delivery_to_delta_deadline(self):
        conditions = NetworkConditions(delta=3, latency=("fixed", 1))
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        envelope = network.stage(0, 1, "m", 0, honest_sender=True)
        network.delay(envelope, rounds=10)  # clamped to Δ = 3
        rounds = drain(network, 3)
        assert rounds[0][1] == [] and rounds[1][1] == []
        assert [d.payload for d in rounds[2][1]] == ["m"]
        assert network.stats.adversary_delayed_copies == 1

    def test_delay_window_is_the_staging_round(self):
        conditions = NetworkConditions(delta=2)
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        envelope = network.stage(0, 1, "m", 0, honest_sender=True)
        network.deliver()  # envelope now scheduled, no longer staged
        with pytest.raises(SimulationError):
            network.delay(envelope, rounds=1)

    def test_clamped_delay_requests_not_counted(self):
        """A delay the Δ clamp nullifies never changed a delivery round,
        so it must not inflate adversary_delayed_copies."""
        conditions = NetworkConditions(delta=1, latency=("geometric", 0.5))
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        envelope = network.stage(0, 1, "m", 0, honest_sender=True)
        network.delay(envelope, rounds=5)  # Δ=1: fully clamped away
        assert [d.payload for d in network.deliver()[1]] == ["m"]
        assert network.stats.adversary_delayed_copies == 0

    def test_delay_rejects_nonpositive(self):
        conditions = NetworkConditions(delta=2)
        network = ConditionedNetwork(2, conditions, seed=0)
        network.deliver()
        envelope = network.stage(0, 1, "m", 0, honest_sender=True)
        with pytest.raises(SimulationError):
            network.delay(envelope, rounds=0)

    def test_api_delay_refused_under_lock_step(self):
        nodes = build_quadratic_ba(4, 1, [1] * 4, seed=0).nodes
        simulation = Simulation(nodes=nodes, corruption_budget=1, seed=0)
        envelope = simulation.network.stage(0, 1, "m", 0, honest_sender=True)
        with pytest.raises(CapabilityError):
            simulation._api.delay(envelope)


class TestPartitions:
    def test_cross_partition_copies_defer_to_heal(self):
        partition = Partition(start=0, end=5, split=0.5)
        conditions = NetworkConditions(
            delta=1, latency=("fixed", 1), partitions=(partition,))
        network = ConditionedNetwork(4, conditions, seed=0)
        network.deliver()
        network.stage(0, 3, "cross", 0, honest_sender=True)  # 0 | 3
        network.stage(0, 1, "local", 0, honest_sender=True)  # same side
        rounds = drain(network, 6)
        assert [d.payload for d in rounds[0][1]] == ["local"]
        assert all(r[3] == [] for r in rounds[:4])
        assert [d.payload for d in rounds[4][3]] == ["cross"]  # round 5
        assert network.stats.deferred_copies == 1

    def test_explicit_groups(self):
        partition = Partition(start=0, end=3, groups=((0, 1), (2,)))
        assert partition.separates(0, 2, n=4)
        assert not partition.separates(0, 1, n=4)
        # Unlisted nodes share one implicit block.
        assert not partition.separates(3, 3, n=4)
        assert partition.separates(0, 3, n=4)

    @both_engines
    def test_partition_heals_in_engine_execution(self, engine):
        conditions = NETWORKS["split-heal"]
        n, f = 12, 2
        instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=4)
        result = run_instance(instance, f, seed=4, conditions=conditions,
                              scheduler=engine)
        assert result.consistent()
        assert result.all_decided()
        assert result.network_stats.deferred_copies > 0


class TestEngineIntegration:
    def test_perfect_conditions_use_fast_path(self):
        nodes = build_quadratic_ba(4, 1, [1] * 4, seed=0).nodes
        simulation = Simulation(
            nodes=nodes, corruption_budget=1, seed=0,
            conditions=NetworkConditions.perfect())
        assert type(simulation.network) is SynchronousNetwork
        assert simulation.conditions is None
        assert simulation.run().network_stats is None

    def test_perfect_conditions_byte_identical_result(self):
        def execute(conditions):
            n, f = 10, 3
            instance = build_quadratic_ba(n, f, [1] * n, seed=9)
            return run_instance(instance, f, seed=9, conditions=conditions)

        plain = execute(None)
        perfect = execute(NetworkConditions.perfect())
        assert plain.outputs == perfect.outputs
        assert plain.rounds_executed == perfect.rounds_executed
        assert len(plain.transcript) == len(perfect.transcript)
        assert plain.metrics.multicast_complexity_bits == \
            perfect.metrics.multicast_complexity_bits

    @both_engines
    def test_rounds_executed_counts_protocol_rounds(self, engine):
        """Round dilation is internal: the result still reports protocol
        rounds, comparable across network conditions."""
        n, f = 10, 2
        plain = run_instance(
            build_quadratic_ba(n, f, [1] * n, seed=1), f, seed=1)
        conditioned = run_instance(
            build_quadratic_ba(n, f, [1] * n, seed=1), f, seed=1,
            conditions=NETWORKS["wan"], scheduler=engine)
        assert conditioned.rounds_executed == plain.rounds_executed

    @both_engines
    def test_network_stats_accounting(self, engine):
        n, f = 10, 2
        result = run_instance(
            build_quadratic_ba(n, f, [1] * n, seed=2), f, seed=2,
            conditions=NETWORKS["wan"], scheduler=engine)
        stats = result.network_stats
        assert stats.delivered_copies > 0
        assert 1.0 <= stats.mean_delivery_latency <= 4.0
        assert stats.max_in_flight > 0
        assert stats.network_rounds >= result.rounds_executed
        assert stats.skipped_ticks + stats.delivered_copies > 0
        assert stats.events_processed >= stats.delivered_copies

    @both_engines
    def test_passive_adversary_and_conditions_compose(self, engine):
        n, f = 8, 2
        instance = build_quadratic_ba(n, f, [0] * n, seed=3)
        result = run_instance(instance, f, PassiveAdversary(), seed=3,
                              conditions=NETWORKS["lan"], scheduler=engine)
        assert result.consistent() and result.agreement_valid()
