"""Tests for Schnorr signatures."""

import random

from hypothesis import given, settings, strategies as st

from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrSignature,
    sign,
    verify,
)
from repro.crypto.groups import TEST_GROUP


class TestSignVerify:
    def test_roundtrip(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        signature = sign(keypair, "message", rng)
        assert verify(group, keypair.public, "message", signature)

    def test_structured_messages(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        message = ("Vote", 3, 1)
        signature = sign(keypair, message, rng)
        assert verify(group, keypair.public, message, signature)
        assert not verify(group, keypair.public, ("Vote", 3, 0), signature)

    def test_wrong_key_rejected(self, group, rng):
        alice = SchnorrKeyPair.generate(group, rng)
        bob = SchnorrKeyPair.generate(group, rng)
        signature = sign(alice, "m", rng)
        assert not verify(group, bob.public, "m", signature)

    def test_tampered_challenge_rejected(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        signature = sign(keypair, "m", rng)
        forged = SchnorrSignature(
            challenge=(signature.challenge + 1) % group.q,
            response=signature.response)
        assert not verify(group, keypair.public, "m", forged)

    def test_tampered_response_rejected(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        signature = sign(keypair, "m", rng)
        forged = SchnorrSignature(
            challenge=signature.challenge,
            response=(signature.response + 1) % group.q)
        assert not verify(group, keypair.public, "m", forged)

    def test_out_of_range_scalars_rejected(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        bad = SchnorrSignature(challenge=group.q, response=1)
        assert not verify(group, keypair.public, "m", bad)

    def test_invalid_public_key_rejected(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        signature = sign(keypair, "m", rng)
        assert not verify(group, 0, "m", signature)

    def test_signatures_are_randomized(self, group, rng):
        keypair = SchnorrKeyPair.generate(group, rng)
        s1 = sign(keypair, "m", rng)
        s2 = sign(keypair, "m", rng)
        assert s1 != s2  # fresh nonce each time
        assert verify(group, keypair.public, "m", s1)
        assert verify(group, keypair.public, "m", s2)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20)
    def test_roundtrip_property(self, payload):
        rng = random.Random(payload)
        keypair = SchnorrKeyPair.generate(TEST_GROUP, rng)
        signature = sign(keypair, payload, rng)
        assert verify(TEST_GROUP, keypair.public, payload, signature)
        assert not verify(TEST_GROUP, keypair.public, payload + 1, signature)
