"""Registry-wide batteries: every ``PROTOCOLS`` entry, no hand-kept list.

Two suites parametrized directly over the scenario registry, so
``adaptive-ba`` and any future family get coverage the moment they are
registered — and a drop-out guard asserting one collected case per
registry key, so a silently filtered entry fails loudly:

- **Properties**: agreement, validity, and termination-within-budget
  under a seeded benign configuration and under a seeded crash
  adversary (the mildest Byzantine behaviour every registry entry is
  expected to survive at its supported resilience).
- **Scheduler conformance**: one seeded conditioned execution per entry
  under both the event and lock-step schedulers, asserting
  byte-identical results/stats — previously only the leader family and
  the differential five had this.

Build configurations are derived from the registry flags (input style,
``accepts_params``, conditions support) and the builder signature — not
from per-protocol knowledge — so registering a protocol is all it takes
to be covered.
"""

import dataclasses
import inspect

import pytest

from repro.adversaries import CrashAdversary
from repro.harness.runner import run_instance
from repro.harness.scenarios import PROTOCOLS
from repro.sim.conditions import NETWORKS
from repro.sim.engine import SCHEDULER_EVENT, SCHEDULER_LOCKSTEP
from repro.types import SecurityParameters
from tests.engines import ENGINES

#: The broadcast sender every sender-style builder defaults to.
SENDER = 0

REGISTRY_KEYS = tuple(sorted(PROTOCOLS))


def _build_config(key):
    """Derive ``(n, f, builder_kwargs)`` from the registry entry alone.

    Committee-sampling protocols (``accepts_params``) need a larger
    system for their Chernoff-bounded committees to be honest-majority
    at the test seeds; everything else runs at the smallest
    ``n > 3f`` system with headroom.
    """
    entry = PROTOCOLS[key]
    kwargs = {}
    if entry.accepts_params:
        n, f = 32, 8
        kwargs["params"] = SecurityParameters(lam=12)
    else:
        n, f = 10, 3
    if entry.input_style == "sender":
        kwargs["sender_input"] = 1
    else:
        kwargs["inputs"] = [i % 2 for i in range(n)]
    # Compiled protocols with a required inner-builder parameter get the
    # quadratic BA — read off the signature, not a per-key table.
    signature = inspect.signature(entry.builder)
    ba_builder = signature.parameters.get("ba_builder")
    if ba_builder is not None and ba_builder.default is inspect.Parameter.empty:
        kwargs["ba_builder"] = PROTOCOLS["quadratic"].builder
    return n, f, kwargs


def _execute(key, seed, adversary=None, conditions=None, scheduler=None):
    entry = PROTOCOLS[key]
    n, f, kwargs = _build_config(key)
    if conditions is not None and (entry.early_stopping
                                   or entry.takes_conditions):
        kwargs["conditions"] = conditions
    instance = entry.builder(n=n, f=f, seed=seed, **kwargs)
    run_kwargs = {}
    if scheduler is not None:
        run_kwargs["scheduler"] = scheduler
    return run_instance(instance, f, adversary, seed=seed,
                        conditions=conditions, **run_kwargs)


class TestRegistryProperties:
    def test_one_case_per_registry_key(self):
        """Drop-out guard: the parametrization source is exactly the
        registry — a filtered or stale case list fails here, not by
        silently skipping a protocol."""
        assert sorted(REGISTRY_KEYS) == sorted(PROTOCOLS)
        assert len(REGISTRY_KEYS) == len(PROTOCOLS)

    @pytest.mark.parametrize("key", REGISTRY_KEYS)
    def test_benign_agreement_validity_termination(self, key):
        entry = PROTOCOLS[key]
        result = _execute(key, seed=5)
        assert result.all_decided(), key
        assert result.consistent(), key
        assert result.agreement_valid(), key
        assert result.rounds_executed <= result.rounds_budget, key
        if entry.input_style == "sender":
            # Honest-sender validity: everyone outputs the broadcast.
            assert result.broadcast_valid(SENDER, 1), key

    @pytest.mark.parametrize("key", REGISTRY_KEYS)
    def test_crash_adversary_agreement_validity_termination(self, key):
        result = _execute(key, seed=5, adversary=CrashAdversary())
        assert result.all_decided(), key
        assert result.consistent(), key
        assert result.agreement_valid(), key
        assert result.rounds_executed <= result.rounds_budget, key


class TestRegistrySchedulerConformance:
    def test_one_case_per_registry_key(self):
        assert sorted(REGISTRY_KEYS) == sorted(PROTOCOLS)

    @staticmethod
    def _snapshot(result):
        return {
            "outputs": result.outputs,
            "decided_rounds": result.decided_rounds,
            "rounds_executed": result.rounds_executed,
            "rounds_saved": result.rounds_saved,
            "transcript": [
                (e.envelope_id, e.sender, e.recipient, repr(e.payload),
                 e.round_sent, e.honest_sender)
                for e in result.transcript],
            "metrics": (result.metrics.honest_multicast_count,
                        result.metrics.honest_multicast_bits,
                        result.metrics.honest_unicast_count,
                        result.metrics.honest_unicast_bits,
                        result.metrics.max_message_bits,
                        dict(result.metrics.per_round_honest_multicasts)),
            "network_stats": dataclasses.asdict(result.network_stats),
        }

    @pytest.mark.parametrize("key", REGISTRY_KEYS)
    def test_event_engine_matches_lockstep(self, key):
        """One seeded conditioned execution per registry entry, replayed
        under both schedulers: byte-identical observable results."""
        assert set(ENGINES) == {SCHEDULER_EVENT, SCHEDULER_LOCKSTEP}
        conditions = NETWORKS["lan"]
        event = _execute(key, seed=3, conditions=conditions,
                         scheduler=SCHEDULER_EVENT)
        lockstep = _execute(key, seed=3, conditions=conditions,
                            scheduler=SCHEDULER_LOCKSTEP)
        assert self._snapshot(event) == self._snapshot(lockstep), key
        # Real conditioned executions, not fast-path ones.
        assert event.network_stats is not None
        assert event.consistent(), key
