"""Differential conformance: event-driven scheduler vs Δ-lockstep loop.

The event engine (``repro.sim.engine``) replaced the conditioned
synchronizer's tick-by-tick loop with a timestamp-ordered event queue
that skips idle Δ-ticks outright.  These tests run whole protocol
executions on both loops — the lock-step reference routed through the
:func:`~repro.sim.engine.legacy_synchronize` helper via
``scheduler="lockstep"`` — and assert the executions are *identical*:
same outputs, decision rounds, transcripts, metrics, and (down to every
counter, including the engine-invariant ``skipped_ticks`` /
``events_processed``) the same :class:`~repro.sim.conditions.NetworkStats`.
Identity (not mere consistency) is the repo's established bar for
hot-path rewrites (see ``tests/test_delivery_differential.py`` for the
delivery-layer precedent).

The grid crosses every protocol family the conditioned engine hosts —
quadratic BA, phase-king, subquadratic BA, and both GST-aware early-stop
variants — with every nontrivial named network preset (``lan``, ``wan``,
``lossy``, ``split-heal``), plus adversary compositions (Δ-deadline
delays, crashes) and a round-budget-exhaustion case that exercises the
event engine's idle-tail accounting (``finish_clock``).
"""

import dataclasses

import pytest

from repro.adversaries.crash import CrashAdversary
from repro.adversaries.network_scheduler import DelayAdversary
from repro.harness.runner import run_instance
from repro.protocols.early_stopping import (
    build_phase_king_early_stop,
    build_quadratic_ba_early_stop,
)
from repro.protocols.phase_king import build_phase_king
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba
from repro.sim.conditions import NETWORKS
from repro.sim.engine import SCHEDULER_EVENT, SCHEDULER_LOCKSTEP, Simulation


def _snapshot(result):
    """Everything a conditioned execution observably produced."""
    return {
        "outputs": result.outputs,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "rounds_saved": result.rounds_saved,
        "transcript": [
            (e.envelope_id, e.sender, e.recipient, repr(e.payload),
             e.round_sent, e.honest_sender)
            for e in result.transcript],
        "metrics": (result.metrics.honest_multicast_count,
                    result.metrics.honest_multicast_bits,
                    result.metrics.honest_unicast_count,
                    result.metrics.honest_unicast_bits,
                    result.metrics.corrupt_multicast_count,
                    result.metrics.corrupt_unicast_count,
                    result.metrics.max_message_bits,
                    dict(result.metrics.per_round_honest_multicasts),
                    result.metrics.per_round_multicast_bits()),
        "network_stats": dataclasses.asdict(result.network_stats),
    }


def _inputs(n):
    return [i % 2 for i in range(n)]


#: name -> (builder(conditions) -> instance, f).  Sizes follow the
#: conditioned property suite: small enough that the full grid stays
#: test-sized, large enough that every protocol runs multiple epochs
#: under every preset.
PROTOCOLS = {
    "quadratic": (lambda conditions: build_quadratic_ba(
        12, 3, _inputs(12), seed=7), 3),
    "phase-king": (lambda conditions: build_phase_king(
        13, 4, _inputs(13), seed=7), 4),
    "subquadratic": (lambda conditions: build_subquadratic_ba(
        28, 7, _inputs(28), seed=7), 7),
    "quadratic-early-stop": (lambda conditions: build_quadratic_ba_early_stop(
        12, 3, _inputs(12), seed=7, conditions=conditions), 3),
    "phase-king-early-stop": (lambda conditions: build_phase_king_early_stop(
        13, 4, _inputs(13), seed=7, conditions=conditions), 4),
}

#: Every nontrivial named preset (perfect conditions never reach a
#: conditioned loop: the engine normalizes them to the fast path).
CONDITIONS = ("lan", "wan", "lossy", "split-heal")

GRID = [(protocol, network)
        for protocol in PROTOCOLS for network in CONDITIONS]


def _execute(protocol, network, scheduler, **kwargs):
    conditions = NETWORKS[network]
    builder, f = PROTOCOLS[protocol]
    return run_instance(builder(conditions), f, seed=7,
                        conditions=conditions, scheduler=scheduler, **kwargs)


@pytest.mark.parametrize("protocol,network", GRID,
                         ids=[f"{p}-{c}" for p, c in GRID])
def test_event_engine_matches_lockstep(protocol, network):
    event = _execute(protocol, network, SCHEDULER_EVENT)
    lockstep = _execute(protocol, network, SCHEDULER_LOCKSTEP)
    assert _snapshot(event) == _snapshot(lockstep)
    # The cell must be a real conditioned execution, not a fast-path one.
    assert event.network_stats is not None
    assert event.consistent() and event.agreement_valid()


@pytest.mark.parametrize("network", CONDITIONS)
def test_event_engine_skips_what_lockstep_idles(network):
    """The engines agree on *how many* ticks were idle — the event
    engine skips them, the lock-step loop executes them as no-ops, and
    both count the same rounds."""
    event = _execute("quadratic", network, SCHEDULER_EVENT)
    stats = event.network_stats
    assert stats.skipped_ticks > 0
    assert stats.events_processed >= stats.delivered_copies
    assert stats.skipped_ticks < stats.network_rounds
    lockstep = _execute("quadratic", network, SCHEDULER_LOCKSTEP)
    assert stats == lockstep.network_stats


@pytest.mark.parametrize("adversary_factory", [
    lambda: DelayAdversary(fraction=0.5, seed=3),
    lambda: DelayAdversary(),
    lambda: CrashAdversary(),
], ids=["delay-half", "delay-deadline", "crash"])
def test_adversaries_compose_identically(adversary_factory):
    """Adversarial delays and crashes ride the same schedule on both
    loops (``react`` observes the same staging windows, ``delay``
    registers against the same copies)."""
    conditions = NETWORKS["wan"]
    n, f = 12, 3

    def execute(scheduler):
        instance = build_quadratic_ba(n, f, _inputs(n), seed=11)
        return run_instance(instance, f, adversary_factory(), seed=11,
                            conditions=conditions, scheduler=scheduler)

    assert _snapshot(execute(SCHEDULER_EVENT)) == \
        _snapshot(execute(SCHEDULER_LOCKSTEP))


def test_budget_exhaustion_accounts_the_idle_tail():
    """An execution that runs out its round budget without halting must
    report the same clock on both loops: the lock-step synchronizer
    ticks the network all the way to ``max_rounds·Δ``, so the event
    engine's ``finish_clock`` must account the idle tail it never ran."""
    event = _execute("quadratic", "wan", SCHEDULER_EVENT, max_rounds=2)
    lockstep = _execute("quadratic", "wan", SCHEDULER_LOCKSTEP, max_rounds=2)
    assert _snapshot(event) == _snapshot(lockstep)
    assert event.rounds_executed == 2
    assert event.network_stats.network_rounds == 2 * NETWORKS["wan"].delta


def test_rng_streams_end_in_the_same_state():
    """Direct evidence for draw-order identity (not just draw-outcome
    identity): after a full execution the conditioned network's RNG is
    in the same state under both loops."""
    conditions = NETWORKS["lossy"]
    n, f = 12, 3

    def final_rng_state(scheduler):
        instance = build_quadratic_ba(n, f, _inputs(n), seed=13)
        simulation = Simulation(
            nodes=instance.nodes, corruption_budget=f, seed=13,
            max_rounds=instance.max_rounds, inputs=instance.inputs,
            signing_capabilities=instance.signing_capabilities,
            mining_capabilities=instance.mining_capabilities,
            conditions=conditions, scheduler=scheduler)
        simulation.run()
        return simulation.network._rng.getstate()

    assert final_rng_state(SCHEDULER_EVENT) == \
        final_rng_state(SCHEDULER_LOCKSTEP)
