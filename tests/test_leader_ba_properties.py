"""Property-based safety/liveness suite for the leader family.

Seeded randomized evidence for ``protocols/leader_ba.py`` (the idiom of
``tests/test_event_engine_properties.py``: every configuration is drawn
from a ``random.Random`` keyed by its case number, so a failure
reproduces from the case number alone):

- **Agreement and validity never break** across 120 sampled
  Δ-bounded ``NetworkConditions`` × adversary configurations — crashed
  leaders (``crash``), assassinated leaders (``leader-killer``), and
  Byzantine equivocating leaders driving the view-change path
  (``view-split``) — on both engines, single-height and chained.
- **Decision lands within the Δ-derived view budget after GST**: every
  honest node decides, and the settled view stays within
  ``default_views_per_height`` (burned pre-GST views + f + 1 leader
  rotations + slack) — the bounded-liveness claim of the view timers.
- **Locks never regress**: every lock absorption across every node's
  whole execution is rank-monotone (instrumented at the absorption
  point, so the invariant is checked at every event, not just at exit).
- Per-height decisions of the chain workload agree bit-for-bit across
  honest nodes.
"""

import random

import pytest

from repro.adversaries import (
    CrashAdversary,
    LeaderKillerAdversary,
    ViewSplitAdversary,
)
from repro.harness import run_instance
from repro.protocols.certificates import rank
from repro.protocols.leader_ba import (
    build_leader_ba,
    decision_view_of,
    default_views_per_height,
)
from repro.sim.conditions import LinkTopology, NetworkConditions, Partition

#: 120 sampled adversarial configurations (above the satellite's 100
#: floor), split into chunks so a failing sample names a small replay
#: set.
PROPERTY_CASES = 120
CHUNK = 10

ADVERSARY_KINDS = ("none", "crash", "leader-killer", "leader-killer",
                   "view-split", "view-split")


def random_leader_conditions(rng: random.Random) -> NetworkConditions:
    """A random partial-synchrony environment inside the guaranteed
    regime: arbitrary Δ/latency/topology, a GST with pre-GST losses and
    (sometimes) a healing partition — everything the view timers are
    budgeted for via ``trusted_send_round``."""
    delta = rng.randint(1, 5)
    kind = rng.choice(("fixed", "uniform", "geometric"))
    if kind == "fixed":
        latency = ("fixed", rng.randint(1, delta))
    elif kind == "uniform":
        lo = rng.randint(1, delta)
        latency = ("uniform", lo, rng.randint(lo, delta))
    else:
        latency = ("geometric", rng.choice((0.3, 0.5, 0.8)))
    gst = rng.choice((0, 0, rng.randint(1, 2 * delta)))
    drop_rate = rng.choice((0.0, 0.1, 0.25)) if gst else 0.0
    duplicate_rate = rng.choice((0.0, 0.1)) if gst else 0.0
    topology = None
    if delta > 1:
        topology = rng.choice((
            None,
            LinkTopology.clustered(clusters=2, extra=rng.randint(1, delta)),
            LinkTopology.star(hub=0, extra=rng.randint(1, delta)),
        ))
    partitions = ()
    if gst and rng.random() < 0.3:
        start = rng.randint(0, 2)
        partitions = (Partition(start=start,
                                end=start + rng.randint(2, 4),
                                split=rng.choice((0.3, 0.5))),)
    return NetworkConditions(
        delta=delta, gst=gst, latency=latency, drop_rate=drop_rate,
        duplicate_rate=duplicate_rate, partitions=partitions,
        topology=topology)


def random_inputs(rng: random.Random, n: int):
    if rng.random() < 0.5:
        bit = rng.randint(0, 1)
        return [bit] * n, bit
    return [rng.randint(0, 1) for _ in range(n)], None


def make_adversary(kind: str, instance, seed: int):
    if kind == "crash":
        return CrashAdversary()
    if kind == "leader-killer":
        return LeaderKillerAdversary(instance)
    if kind == "view-split":
        return ViewSplitAdversary(instance)
    return None


def instrument_locks(instance):
    """Record the lock rank after every absorption on every node, so
    the monotonicity check covers each event of the execution."""
    histories = {}
    for node in instance.nodes:
        history = []
        histories[node.node_id] = history
        original = node._absorb_qc

        def absorb(qc, node=node, history=history, original=original):
            original(qc)
            history.append(rank(node.locked))

        node._absorb_qc = absorb
    return histories


def assert_locks_monotone(histories, context):
    for node_id, history in histories.items():
        assert history == sorted(history), \
            f"lock regressed on node {node_id} ({context}): {history}"


@pytest.mark.slow
class TestLeaderBaProperties:
    @pytest.mark.parametrize("chunk", range(PROPERTY_CASES // CHUNK))
    def test_safety_liveness_and_lock_monotonicity(self, chunk):
        for case in range(chunk * CHUNK, (chunk + 1) * CHUNK):
            rng = random.Random(f"leader-properties-{case}")
            conditions = random_leader_conditions(rng)
            f = rng.randint(0, 2)
            n = 3 * f + 1 + rng.randint(0, 2)
            heights = rng.choice((1, 1, 1, 2))
            inputs, expected = random_inputs(rng, n)
            seed = rng.randint(0, 2**16)
            kind = rng.choice(ADVERSARY_KINDS)
            scheduler = rng.choice(("lockstep", "event"))
            budget = default_views_per_height(f, conditions)

            instance = build_leader_ba(n, f, inputs, seed=seed,
                                       heights=heights,
                                       conditions=conditions)
            histories = instrument_locks(instance)
            adversary = make_adversary(kind, instance, seed)
            result = run_instance(instance, f, adversary, seed=seed,
                                  conditions=conditions,
                                  scheduler=scheduler)
            context = (f"case {case}: n={n} f={f} heights={heights} "
                       f"adversary={kind} {scheduler} "
                       f"{conditions.describe()}")

            # Safety: agreement and validity are never violated.
            assert result.consistent(), f"agreement broken ({context})"
            assert result.agreement_valid(), f"validity broken ({context})"
            if expected is not None:
                assert set(result.honest_outputs) == {expected}, \
                    f"unanimity not carried ({context})"

            # Liveness: every honest node decides, within the Δ-derived
            # view budget after GST (per height).
            assert result.all_decided(), f"termination broken ({context})"
            assert decision_view_of(result) <= budget * heights, \
                f"view budget exceeded ({context})"

            # Locks never regress, at any absorption event on any node.
            assert_locks_monotone(histories, context)

            # Chain workload: per-height decisions agree bit-for-bit
            # across honest nodes (different quorum views are fine).
            honest = [node for node in instance.nodes
                      if node.node_id not in result.corrupt_set]
            for height in range(1, heights + 1):
                bits = {node.height_decisions[height][1]
                        for node in honest
                        if height in node.height_decisions}
                assert len(bits) == 1, \
                    f"height {height} split ({context})"


class TestLeaderBaTargeted:
    def test_byzantine_leader_cannot_break_unanimity(self):
        """Strong unanimity under the view-splitting Byzantine leader:
        with every honest input b, no justification for 1-b can ever be
        assembled (f corrupt attestations are one short of f+1, and no
        QC for 1-b forms inductively)."""
        for bit in (0, 1):
            for seed in range(5):
                conditions = NetworkConditions(
                    delta=2, gst=6, latency=("uniform", 1, 2),
                    drop_rate=0.2)
                instance = build_leader_ba(7, 2, [bit] * 7, seed=seed,
                                           conditions=conditions)
                adversary = ViewSplitAdversary(instance)
                result = run_instance(instance, 2, adversary, seed=seed,
                                      conditions=conditions,
                                      scheduler="event")
                assert result.consistent() and result.all_decided()
                assert set(result.honest_outputs) == {bit}

    def test_decides_in_first_view_unopposed(self):
        """Lock-step, no adversary: one view suffices (the happy path
        the leader-vs-quadratic comparison measures)."""
        result = run_instance(build_leader_ba(7, 2, [1, 0, 1, 0, 1, 0, 1]),
                              f=2, adversary=None, seed=0)
        assert result.all_decided() and result.consistent()
        assert decision_view_of(result) == 1

    def test_view_budget_is_gst_aware(self):
        """A later GST buys a larger view budget (more burned views)."""
        early = NetworkConditions(delta=2, gst=4, latency=("fixed", 1))
        late = NetworkConditions(delta=2, gst=24, latency=("fixed", 1))
        assert (default_views_per_height(2, late)
                > default_views_per_height(2, early)
                >= default_views_per_height(2, None))
