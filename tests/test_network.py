"""Tests for the synchronous network."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.network import SynchronousNetwork


class TestDelivery:
    def test_multicast_reaches_everyone_but_sender(self):
        network = SynchronousNetwork(4)
        network.stage(1, None, "hello", 0, honest_sender=True)
        inboxes = network.deliver()
        assert [d.payload for d in inboxes[0]] == ["hello"]
        assert [d.payload for d in inboxes[2]] == ["hello"]
        assert inboxes[1] == []

    def test_unicast_reaches_only_recipient(self):
        network = SynchronousNetwork(4)
        network.stage(1, 3, "psst", 0, honest_sender=True)
        inboxes = network.deliver()
        assert [d.payload for d in inboxes[3]] == ["psst"]
        assert all(inboxes[i] == [] for i in (0, 1, 2))

    def test_messages_delivered_exactly_once(self):
        network = SynchronousNetwork(3)
        network.stage(0, None, "m", 0, honest_sender=True)
        first = network.deliver()
        second = network.deliver()
        assert [d.payload for d in first[1]] == ["m"]
        assert second[1] == []

    def test_delivery_order_is_send_order(self):
        network = SynchronousNetwork(3)
        for index in range(5):
            network.stage(0, 1, index, 0, honest_sender=True)
        inbox = network.deliver()[1]
        assert [d.payload for d in inbox] == [0, 1, 2, 3, 4]

    def test_sender_identity_is_channel_authenticated(self):
        network = SynchronousNetwork(3)
        network.stage(2, None, "m", 0, honest_sender=False)
        inbox = network.deliver()[0]
        assert inbox[0].sender == 2

    def test_out_of_range_recipient_rejected(self):
        network = SynchronousNetwork(3)
        with pytest.raises(SimulationError):
            network.stage(0, 7, "m", 0, honest_sender=True)

    def test_needs_at_least_one_node(self):
        with pytest.raises(SimulationError):
            SynchronousNetwork(0)


class TestSuppression:
    def test_suppress_single_recipient(self):
        network = SynchronousNetwork(4)
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.suppress(envelope, recipient=2)
        inboxes = network.deliver()
        assert inboxes[2] == []
        assert [d.payload for d in inboxes[1]] == ["m"]

    def test_suppress_all_recipients(self):
        network = SynchronousNetwork(4)
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.suppress(envelope)
        inboxes = network.deliver()
        assert all(inboxes[i] == [] for i in range(4))

    def test_cannot_suppress_delivered_message(self):
        """History cannot be rewritten: only in-flight messages."""
        network = SynchronousNetwork(4)
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.deliver()
        with pytest.raises(SimulationError):
            network.suppress(envelope, recipient=1)

    def test_suppression_window_resets_each_round(self):
        network = SynchronousNetwork(3)
        first = network.stage(0, 1, "a", 0, honest_sender=True)
        network.suppress(first, recipient=1)
        network.deliver()
        network.stage(0, 1, "b", 1, honest_sender=True)
        inbox = network.deliver()[1]
        assert [d.payload for d in inbox] == ["b"]

    def test_suppression_is_idempotent(self):
        network = SynchronousNetwork(3)
        envelope = network.stage(0, 1, "m", 0, honest_sender=True)
        network.suppress(envelope, recipient=1)
        network.suppress(envelope, recipient=1)
        assert network.deliver()[1] == []

    def test_full_suppression_is_a_single_marker(self):
        """``suppress(envelope)`` stores one ``None`` sentinel — not one
        entry per node, and in particular no entry for the sender, whose
        copy never existed (a sender does not receive its own message)."""
        network = SynchronousNetwork(4)
        envelope = network.stage(1, None, "m", 0, honest_sender=True)
        network.suppress(envelope)
        assert network._suppressed[envelope.envelope_id] is None
        assert all(network.is_suppressed(envelope, node)
                   for node in range(4))

    def test_full_suppression_absorbs_per_recipient_suppression(self):
        network = SynchronousNetwork(4)
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.suppress(envelope)
        network.suppress(envelope, recipient=2)  # already covered
        assert network._suppressed[envelope.envelope_id] is None
        assert all(network.deliver()[node] == [] for node in range(4))

    def test_per_recipient_then_full_suppression(self):
        network = SynchronousNetwork(4)
        envelope = network.stage(0, None, "m", 0, honest_sender=True)
        network.suppress(envelope, recipient=1)
        network.suppress(envelope)
        assert all(network.deliver()[node] == [] for node in range(4))


class TestTranscript:
    def test_transcript_records_everything(self):
        network = SynchronousNetwork(3)
        network.stage(0, None, "a", 0, honest_sender=True)
        network.deliver()
        network.stage(1, 2, "b", 1, honest_sender=False)
        network.deliver()
        assert [e.payload for e in network.transcript] == ["a", "b"]

    def test_in_flight_shows_current_round_only(self):
        network = SynchronousNetwork(3)
        network.stage(0, None, "a", 0, honest_sender=True)
        assert len(network.in_flight()) == 1
        network.deliver()
        assert network.in_flight() == []

    @given(st.lists(st.tuples(st.integers(0, 4), st.one_of(
        st.none(), st.integers(0, 4))), max_size=30))
    @settings(max_examples=25)
    def test_no_loss_no_duplication(self, sends):
        """Every staged copy is delivered exactly once, absent suppression."""
        network = SynchronousNetwork(5)
        for sender, recipient in sends:
            network.stage(sender, recipient, "x", 0, honest_sender=True)
        inboxes = network.deliver()
        delivered = sum(len(inbox) for inbox in inboxes.values())
        expected = sum(
            4 if recipient is None else (0 if recipient == sender else 1)
            for sender, recipient in sends)
        assert delivered == expected
