"""Soundness of the verification memoization and simulation fast paths.

The performance subsystem (repro.protocols.verification, the registry's
verify memo, the network delivery fast path, the size-accounting memo, and
the parallel trial runner) must be *observationally invisible*: identical
``ExecutionResult``s for identical seeds, no cache hit across different
message content, and no cache poisoning via partial-key collisions.
"""

import hashlib

import pytest

from repro.harness.runner import TrialStats, run_instance, run_trials
from repro.protocols import verification
from repro.protocols.certificates import Certificate, certificate_from_votes
from repro.protocols.messages import SignedVote
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba
from repro.serialization import canonical_bytes
from repro.errors import SimulationError
from repro.sim.engine import Simulation


def _signed_votes(registry, iteration, bit, voters):
    return {voter: registry.capability_for(voter).sign(("Vote", iteration, bit))
            for voter in voters}


def _result_digest(result):
    """Full-content fingerprint of an execution result."""
    h = hashlib.sha256()
    h.update(canonical_bytes([
        (e.envelope_id, e.sender, e.recipient, e.round_sent, e.honest_sender)
        for e in result.transcript]))
    for envelope in result.transcript:
        h.update(canonical_bytes(envelope.payload))
    h.update(canonical_bytes(result.outputs))
    h.update(canonical_bytes(result.decided_rounds))
    h.update(canonical_bytes(vars(result.metrics)))
    h.update(canonical_bytes(result.rounds_executed))
    return h.hexdigest()


def _run_quadratic(seed, n=13, f=6, **kwargs):
    inputs = [i % 2 for i in range(n)]
    instance = build_quadratic_ba(n, f, inputs, seed=seed)
    return run_instance(instance, f, seed=seed, **kwargs)


class TestCertificateCacheSoundness:
    def _instance(self, n=7, f=3, seed=0):
        instance = build_quadratic_ba(n, f, [1] * n, seed=seed)
        return instance, instance.services["registry"], instance.nodes[0]

    def test_content_equal_certificate_hits_cache(self):
        """A certificate assembled independently (new objects, equal
        content) must not trigger a second cryptographic pass."""
        instance, registry, node = self._instance()
        votes = _signed_votes(registry, 1, 1, range(4))
        first = certificate_from_votes(1, 1, votes, node.config.threshold)
        assert node._check_certificate(first)

        counted = []
        original = node.config.authenticator.check

        def counting(node_id, topic, auth):
            counted.append((node_id, topic))
            return original(node_id, topic, auth)

        node.config.authenticator.check = counting
        # Built by hand: certificate_from_votes itself interns assembly,
        # so it would return ``first``.  The content cache must still
        # cover genuinely distinct content-equal objects (e.g. arriving
        # from an adversary that bypasses the assembly path).
        second = Certificate(
            iteration=1, bit=1,
            votes=tuple(
                SignedVote(iteration=1, bit=1, voter=voter, auth=auth)
                for voter, auth in
                sorted(votes.items())[:node.config.threshold]))
        assert second is not first and second == first
        assert node._check_certificate(second)
        assert counted == []  # pure cache hit

    def test_cache_shared_across_nodes_of_one_instance(self):
        """Verification is a public predicate: once node 0 verified a
        certificate, node 1's check of an equal copy is free."""
        instance, registry, node0 = self._instance()
        node1 = instance.nodes[1]
        votes = _signed_votes(registry, 1, 1, range(4))
        assert node0._check_certificate(
            certificate_from_votes(1, 1, votes, node0.config.threshold))

        counted = []
        original = node1.config.authenticator.check

        def counting(node_id, topic, auth):
            counted.append(node_id)
            return original(node_id, topic, auth)

        node1.config.authenticator.check = counting
        assert node1._check_certificate(
            certificate_from_votes(1, 1, votes, node1.config.threshold))
        assert counted == []

    def test_tampered_vote_auth_never_verifies(self):
        """One forged vote auth must fail, even when a content-equal
        honest certificate was verified first (no partial-key collision)."""
        instance, registry, node = self._instance()
        votes = _signed_votes(registry, 1, 1, range(4))
        honest = certificate_from_votes(1, 1, votes, node.config.threshold)
        assert node._check_certificate(honest)

        # Voter 0's slot now carries a signature by voter 5 (forged).
        forged_auth = registry.capability_for(5).sign(("Vote", 1, 1))
        tampered_votes = tuple(
            SignedVote(iteration=1, bit=1, voter=v.voter, auth=forged_auth)
            if v.voter == 0 else v
            for v in honest.votes)
        tampered = Certificate(iteration=1, bit=1, votes=tampered_votes)
        assert not node._check_certificate(tampered)
        # And the honest certificate still verifies afterwards.
        assert node._check_certificate(honest)

    def test_tampered_first_does_not_poison_honest(self):
        instance, registry, node = self._instance()
        votes = _signed_votes(registry, 1, 1, range(4))
        honest = certificate_from_votes(1, 1, votes, node.config.threshold)
        wrong_topic_auth = registry.capability_for(0).sign(("Vote", 2, 1))
        tampered = Certificate(iteration=1, bit=1, votes=tuple(
            SignedVote(iteration=1, bit=1, voter=v.voter, auth=wrong_topic_auth)
            if v.voter == 0 else v for v in honest.votes))
        assert not node._check_certificate(tampered)
        assert node._check_certificate(honest)

    def test_cached_true_not_returned_for_bool_aliased_topic(self):
        """True == 1 as a dict key, but signatures are computed over
        canonical bytes that distinguish them: a verdict cached for bit 1
        must not be served for bit True."""
        instance, registry, node = self._instance()
        auth = registry.capability_for(2).sign(("Vote", 1, 1))
        assert node._check_auth(2, ("Vote", 1, 1), auth)   # cached True
        assert not node._check_auth(2, ("Vote", 1, True), auth)
        assert not registry.verify(2, ("Vote", 1, True), auth)
        assert registry.verify(2, ("Vote", 1, 1), auth)

    def test_negative_results_not_shared_across_time(self):
        """A forged eligibility ticket circulated *before* the honest node
        mines must not poison the later honest, content-equal ticket
        (Fmine.verify legitimately flips False -> True on mining)."""
        from repro.eligibility.fmine import FMineTicket

        n, f = 24, 5
        instance = build_subquadratic_ba(n, f, [1] * n, seed=4)
        eligibility = instance.services["eligibility"]
        node = instance.nodes[0]
        topic = ("Vote", 1, 1)
        winner = None
        for candidate in range(1, n):
            forged = FMineTicket(node_id=candidate, topic=topic)
            # Pre-mining check: must fail, and must not be cached.
            assert not node._check_auth(candidate, topic, forged)
            if eligibility.capability_for(candidate).try_mine(topic) is not None:
                winner = candidate
                break
        assert winner is not None, "no node won the vote lottery"
        genuine = FMineTicket(node_id=winner, topic=topic)
        assert node._check_auth(winner, topic, genuine)

    def test_vote_cache_key_includes_auth(self):
        """Same (voter, iteration, bit) with a different auth is a
        different cache line."""
        instance, registry, node = self._instance()
        good = SignedVote(iteration=1, bit=1, voter=2,
                          auth=registry.capability_for(2).sign(("Vote", 1, 1)))
        bad = SignedVote(iteration=1, bit=1, voter=2,
                         auth=registry.capability_for(2).sign(("Vote", 1, 0)))
        assert node._check_vote_auth(good)
        assert not node._check_vote_auth(bad)
        assert node._check_vote_auth(good)


class TestDeterminism:
    def test_identical_results_with_and_without_caching(self, monkeypatch):
        cached = {seed: _result_digest(_run_quadratic(seed))
                  for seed in range(3)}
        monkeypatch.setattr(verification, "CACHING_ENABLED", False)
        uncached = {seed: _result_digest(_run_quadratic(seed))
                    for seed in range(3)}
        assert cached == uncached

    def test_subquadratic_identical_with_and_without_caching(self, monkeypatch):
        def build_and_run():
            n, f = 24, 5
            inputs = [i % 2 for i in range(n)]
            instance = build_subquadratic_ba(n, f, inputs, seed=11)
            return _result_digest(run_instance(instance, f, seed=11))

        with_cache = build_and_run()
        monkeypatch.setattr(verification, "CACHING_ENABLED", False)
        assert build_and_run() == with_cache

    def test_metrics_only_retention_changes_nothing_but_transcript(self):
        full = _run_quadratic(5)
        lean = _run_quadratic(5, transcript_retention="metrics-only")
        assert lean.transcript == []
        assert full.transcript  # default keeps everything
        assert lean.outputs == full.outputs
        assert lean.decided_rounds == full.decided_rounds
        assert lean.rounds_executed == full.rounds_executed
        assert vars(lean.metrics) == vars(full.metrics)

    def test_unknown_retention_policy_rejected(self):
        instance = build_quadratic_ba(5, 2, [1] * 5, seed=0)
        with pytest.raises(SimulationError):
            Simulation(instance.nodes, 2, transcript_retention="bogus")


class TestParallelTrials:
    def test_workers_do_not_change_aggregates(self):
        n, f = 13, 6
        kwargs = dict(f=f, seeds=range(4), n=n,
                      inputs=[i % 2 for i in range(n)])
        serial = run_trials(build_quadratic_ba, **kwargs)
        parallel = run_trials(build_quadratic_ba, workers=4, **kwargs)
        for stats in (serial, parallel):
            assert stats.trials == 4
        assert serial.consistency_rate == parallel.consistency_rate
        assert serial.validity_rate == parallel.validity_rate
        assert serial.termination_rate == parallel.termination_rate
        assert serial.mean_multicasts == parallel.mean_multicasts
        assert serial.mean_multicast_bits == parallel.mean_multicast_bits
        assert serial.mean_rounds == parallel.mean_rounds
        assert serial.decision_rounds() == parallel.decision_rounds()
        assert ([_result_digest(r) for r in serial.results]
                == [_result_digest(r) for r in parallel.results])


class TestTrialStatsCounters:
    def test_rates_match_recomputation(self):
        n, f = 13, 6
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(3),
                           n=n, inputs=[i % 2 for i in range(n)])
        results = stats.results
        assert stats.consistency_rate == (
            sum(r.consistent() for r in results) / len(results))
        assert stats.validity_rate == (
            sum(r.agreement_valid() for r in results) / len(results))
        assert stats.violation_rate == (
            sum(not (r.consistent() and r.agreement_valid())
                for r in results) / len(results))
        assert stats.termination_rate == (
            sum(r.all_decided() for r in results) / len(results))

    def test_preloaded_results_are_counted(self):
        source = run_trials(build_quadratic_ba, f=2, seeds=range(2),
                            n=5, inputs=[1] * 5)
        rebuilt = TrialStats(results=list(source.results))
        assert rebuilt.trials == source.trials
        assert rebuilt.consistency_rate == source.consistency_rate
        assert rebuilt.mean_multicasts == source.mean_multicasts

    def test_results_view_is_read_only(self):
        """Counters only stay honest if results enter via add(); direct
        list mutation must fail loudly, not silently skew the rates."""
        stats = TrialStats()
        with pytest.raises(AttributeError):
            stats.results.append("not-a-result")


class TestSizeCacheSoundness:
    def test_size_cache_distinguishes_bool_fields(self):
        """SignedVote(bit=1) == SignedVote(bit=True) under dataclass
        equality, but their canonical sizes differ (64-bit int vs 8-bit
        bool) — the memo must not serve one for the other, in either
        warm-up order."""
        from repro.serialization import encoded_size_bits

        as_int = SignedVote(iteration=1, bit=1, voter=2, auth=b"x")
        as_bool = SignedVote(iteration=1, bit=True, voter=2, auth=b"x")
        assert as_int == as_bool
        int_size = encoded_size_bits(as_int)
        bool_size = encoded_size_bits(as_bool)
        assert int_size == bool_size + 56  # word vs tag byte
        # Warm cache, re-query both: still distinguished.
        assert encoded_size_bits(as_bool) == bool_size
        assert encoded_size_bits(as_int) == int_size


class TestDiscardedTranscriptGuards:
    def test_invariant_checkers_refuse_discarded_transcript(self):
        from repro.harness.invariants import honest_votes_unique_per_iteration

        result = _run_quadratic(3, transcript_retention="metrics-only")
        with pytest.raises(ValueError, match="metrics-only"):
            honest_votes_unique_per_iteration(result)

    def test_replay_refuses_discarded_transcript(self):
        from repro.harness.replay import narrate

        result = _run_quadratic(3, transcript_retention="metrics-only")
        with pytest.raises(ValueError, match="metrics-only"):
            narrate(result)
