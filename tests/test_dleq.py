"""Tests for the DLEQ and committed-key sigma proofs."""

from dataclasses import replace

from repro.crypto.commitment import ElGamalCommitmentScheme
from repro.crypto.dleq import (
    prove_committed_key,
    prove_dleq,
    verify_committed_key,
    verify_dleq,
)


class TestDleq:
    def test_completeness(self, group, rng):
        secret = group.random_scalar(rng)
        base = group.hash_to_group(b"base")
        proof = prove_dleq(group, secret, base, rng)
        assert verify_dleq(group, group.exp(group.g, secret),
                           group.exp(base, secret), base, proof)

    def test_context_binding(self, group, rng):
        secret = group.random_scalar(rng)
        base = group.hash_to_group(b"base")
        proof = prove_dleq(group, secret, base, rng, context="msg-A")
        x_pub, y_pub = group.exp(group.g, secret), group.exp(base, secret)
        assert verify_dleq(group, x_pub, y_pub, base, proof, context="msg-A")
        assert not verify_dleq(group, x_pub, y_pub, base, proof,
                               context="msg-B")

    def test_soundness_wrong_y(self, group, rng):
        secret = group.random_scalar(rng)
        other = group.random_scalar(rng)
        base = group.hash_to_group(b"base")
        proof = prove_dleq(group, secret, base, rng)
        assert not verify_dleq(group, group.exp(group.g, secret),
                               group.exp(base, other), base, proof)

    def test_tampered_proof_rejected(self, group, rng):
        secret = group.random_scalar(rng)
        base = group.hash_to_group(b"base")
        proof = prove_dleq(group, secret, base, rng)
        x_pub, y_pub = group.exp(group.g, secret), group.exp(base, secret)
        assert not verify_dleq(
            group, x_pub, y_pub, base,
            replace(proof, response=(proof.response + 1) % group.q))
        assert not verify_dleq(
            group, x_pub, y_pub, base,
            replace(proof, challenge=(proof.challenge + 1) % group.q))

    def test_malformed_elements_rejected(self, group, rng):
        secret = group.random_scalar(rng)
        base = group.hash_to_group(b"base")
        proof = prove_dleq(group, secret, base, rng)
        assert not verify_dleq(group, 0, group.exp(base, secret), base, proof)


class TestCommittedKeyProof:
    def _setup(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        key = group.random_scalar(rng)
        commitment, randomness = scheme.commit_random(key, rng)
        base = group.hash_to_group(b"topic")
        return key, randomness, commitment, base

    def test_completeness(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        rho = group.exp(base, key)
        proof = prove_committed_key(group, key, randomness, base, rng)
        assert verify_committed_key(group, commitment, base, rho, proof)

    def test_soundness_wrong_evaluation(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        proof = prove_committed_key(group, key, randomness, base, rng)
        wrong_rho = group.exp(base, (key + 1) % group.q)
        assert not verify_committed_key(group, commitment, base, wrong_rho,
                                        proof)

    def test_soundness_wrong_commitment(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        rho = group.exp(base, key)
        proof = prove_committed_key(group, key, randomness, base, rng)
        scheme = ElGamalCommitmentScheme(group)
        other_commitment, _ = scheme.commit_random(group.random_scalar(rng),
                                                   rng)
        assert not verify_committed_key(group, other_commitment, base, rho,
                                        proof)

    def test_context_binding(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        rho = group.exp(base, key)
        proof = prove_committed_key(group, key, randomness, base, rng,
                                    context=("Vote", 1, 0))
        assert verify_committed_key(group, commitment, base, rho, proof,
                                    context=("Vote", 1, 0))
        assert not verify_committed_key(group, commitment, base, rho, proof,
                                        context=("Vote", 1, 1))

    def test_tampering_any_scalar_rejected(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        rho = group.exp(base, key)
        proof = prove_committed_key(group, key, randomness, base, rng)
        for field_name in ("challenge", "response_key", "response_rand"):
            tampered = replace(
                proof, **{field_name: (getattr(proof, field_name) + 1) % group.q})
            assert not verify_committed_key(group, commitment, base, rho,
                                            tampered)

    def test_out_of_range_scalars_rejected(self, group, rng):
        key, randomness, commitment, base = self._setup(group, rng)
        rho = group.exp(base, key)
        proof = prove_committed_key(group, key, randomness, base, rng)
        bad = replace(proof, response_key=group.q)
        assert not verify_committed_key(group, commitment, base, rho, bad)
