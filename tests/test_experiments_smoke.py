"""Smoke tests for the experiment suite at reduced scale.

The full-scale experiments live in ``benchmarks/``; these tests verify
that every experiment runs, produces a well-formed table, and that the
cheap ones already exhibit the paper's qualitative shape.
"""

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    experiment_e2,
    experiment_e6,
    experiment_e7,
    experiment_e8,
    experiment_e11,
)


class TestExperimentRegistry:
    def test_all_twelve_registered(self):
        assert set(ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 13)}

    def test_registry_values_are_callables(self):
        for experiment in ALL_EXPERIMENTS.values():
            assert callable(experiment)


class TestCheapExperiments:
    def test_e2_shape(self):
        result = experiment_e2()
        assert result.data["naive"].consistency_violated
        assert not result.data["dolev_strong"].attack_feasible
        rendered = result.render()
        assert "naive-broadcast" in rendered
        assert "dolev-strong" in rendered

    def test_e6_shape(self):
        result = experiment_e6(trials=2)
        assert result.data["round_no_erasure"] < result.data["round_erasure"]
        assert result.data["bit_specific"] == 1.0

    def test_e7_shape(self):
        result = experiment_e7()
        assert result.data["shared"].contradiction
        assert not result.data["pki"].contradiction

    def test_e8_measured_tracks_predicted(self):
        result = experiment_e8(samples=150)
        data = result.data
        assert abs(data["corrupt_quorum_rate"]
                   - data["corrupt_quorum_pred"]) < 0.12
        assert abs(data["good_iteration_rate"]
                   - data["good_iteration_pred"]) < 0.12

    def test_e11_worlds_agree(self):
        result = experiment_e11(trials=2)
        assert result.data["fmine"]["consistency"] == 1.0
        assert result.data["vrf"]["consistency"] == 1.0

    def test_tables_render_with_rows(self):
        result = experiment_e2()
        for table in result.tables:
            rendered = table.render()
            assert len(rendered.splitlines()) >= 4
