"""Unit tests for the iterated-BA node internals (Appendix C)."""

import pytest

from repro.crypto.registry import KeyRegistry
from repro.protocols.aba import (
    AbaConfig,
    AbaNode,
    PHASE_COMMIT,
    PHASE_PROPOSE,
    PHASE_STATUS,
    PHASE_VOTE,
    rounds_for_iterations,
    schedule,
)
from repro.protocols.base import OracleProposerPolicy, SignatureAuthenticator
from repro.protocols.certificates import certificate_from_votes
from repro.protocols.messages import ProposeMsg, VoteMsg
from repro.sim.leader import RoundRobinLeaderOracle
from repro.sim.node import RoundContext


class TestSchedule:
    def test_iteration_one_skips_status_and_propose(self):
        """C.1: 'the very first iteration skips Status and Propose'."""
        assert schedule(0) == (1, PHASE_VOTE)
        assert schedule(1) == (1, PHASE_COMMIT)

    def test_later_iterations_have_four_phases(self):
        assert schedule(2) == (2, PHASE_STATUS)
        assert schedule(3) == (2, PHASE_PROPOSE)
        assert schedule(4) == (2, PHASE_VOTE)
        assert schedule(5) == (2, PHASE_COMMIT)
        assert schedule(6) == (3, PHASE_STATUS)

    def test_rounds_for_iterations(self):
        assert rounds_for_iterations(1) == 3
        assert rounds_for_iterations(2) == 7
        with pytest.raises(ValueError):
            rounds_for_iterations(0)


@pytest.fixture
def aba_world():
    n, f = 7, 3
    registry = KeyRegistry(n, "ideal")
    authenticator = SignatureAuthenticator(registry)
    oracle = RoundRobinLeaderOracle(n)
    config = AbaConfig(
        threshold=f + 1,
        authenticator=authenticator,
        proposer=OracleProposerPolicy(oracle, authenticator),
        max_iterations=5,
    )
    nodes = [AbaNode(i, n, 1, config) for i in range(n)]
    return n, f, registry, authenticator, config, nodes


def _vote(authenticator, voter, iteration, bit, proposal=None):
    auth = authenticator.attempt(voter, ("Vote", iteration, bit))
    return VoteMsg(iteration=iteration, bit=bit, sender=voter, auth=auth,
                   proposal=proposal)


class TestVoteValidation:
    def test_valid_first_iteration_vote_recorded(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        node._handle_vote(_vote(authenticator, 3, 1, 1))
        assert 3 in node.votes_seen[(1, 1)]

    def test_bad_signature_dropped(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        vote = VoteMsg(iteration=1, bit=1, sender=3, auth="garbage",
                       proposal=None)
        node._handle_vote(vote)
        assert (1, 1) not in node.votes_seen

    def test_vote_beyond_iteration_one_needs_proposal(self, aba_world):
        """Footnote 11: later votes attach the justifying proposal."""
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        node._handle_vote(_vote(authenticator, 3, 2, 1, proposal=None))
        assert (2, 1) not in node.votes_seen

    def test_vote_with_valid_proposal_accepted(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        leader = 2  # RoundRobin leader of iteration 2
        proposal = ProposeMsg(
            iteration=2, bit=1, certificate=None, sender=leader,
            auth=authenticator.attempt(leader, ("Propose", 2, 1)))
        node._handle_vote(_vote(authenticator, 3, 2, 1, proposal=proposal))
        assert 3 in node.votes_seen[(2, 1)]

    def test_vote_with_foreign_leader_proposal_rejected(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        impostor = 5  # not the iteration-2 leader
        proposal = ProposeMsg(
            iteration=2, bit=1, certificate=None, sender=impostor,
            auth=authenticator.attempt(impostor, ("Propose", 2, 1)))
        node._handle_vote(_vote(authenticator, 3, 2, 1, proposal=proposal))
        assert (2, 1) not in node.votes_seen

    def test_proposal_bit_must_match_vote_bit(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        leader = 2
        proposal = ProposeMsg(
            iteration=2, bit=0, certificate=None, sender=leader,
            auth=authenticator.attempt(leader, ("Propose", 2, 0)))
        node._handle_vote(_vote(authenticator, 3, 2, 1, proposal=proposal))
        assert (2, 1) not in node.votes_seen

    def test_quorum_of_votes_becomes_certificate(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        for voter in range(f + 1):
            node._handle_vote(_vote(authenticator, voter, 1, 1))
        assert node.best_cert[1] is not None
        assert node.best_cert[1].iteration == 1


class TestVoteChoice:
    def test_equal_rank_opposite_certificate_does_not_block(self, aba_world):
        """C.1 Vote: a same-iteration certificate for 1-b does not stop
        the vote for b."""
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        # Give the node an iteration-1 certificate for bit 0.
        votes = {v: authenticator.attempt(v, ("Vote", 1, 0))
                 for v in range(f + 1)}
        node._absorb_certificate(certificate_from_votes(1, 0, votes, f + 1))
        # Leader proposes bit 1 with an equal-rank (iteration-1) cert.
        votes1 = {v: authenticator.attempt(v, ("Vote", 1, 1))
                  for v in range(f + 1)}
        cert1 = certificate_from_votes(1, 1, votes1, f + 1)
        leader = 2
        proposal = ProposeMsg(
            iteration=2, bit=1, certificate=cert1, sender=leader,
            auth=authenticator.attempt(leader, ("Propose", 2, 1)))
        node._handle_propose(proposal)
        vote = node._choose_vote(2)
        assert vote is not None and vote.bit == 1

    def test_strictly_higher_opposite_certificate_blocks(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        # Iteration-2 certificate for bit 0 (higher than the proposal's).
        leader2 = 2
        proposal0 = ProposeMsg(
            iteration=2, bit=0, certificate=None, sender=leader2,
            auth=authenticator.attempt(leader2, ("Propose", 2, 0)))
        votes = {v: authenticator.attempt(v, ("Vote", 2, 0))
                 for v in range(f + 1)}
        node._absorb_certificate(certificate_from_votes(2, 0, votes, f + 1))
        # A later proposal for bit 1 carrying only an iteration-1 cert.
        votes1 = {v: authenticator.attempt(v, ("Vote", 1, 1))
                  for v in range(f + 1)}
        cert1 = certificate_from_votes(1, 1, votes1, f + 1)
        leader3 = 3
        proposal = ProposeMsg(
            iteration=3, bit=1, certificate=cert1, sender=leader3,
            auth=authenticator.attempt(leader3, ("Propose", 3, 1)))
        node._handle_propose(proposal)
        assert node._choose_vote(3) is None

    def test_first_iteration_votes_input_bit(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        vote = nodes[0]._choose_vote(1)
        assert vote is not None
        assert vote.bit == nodes[0].input_bit
        assert vote.proposal is None


class TestPreferredBit:
    def test_defaults_to_input(self, aba_world):
        *_rest, nodes = aba_world
        assert nodes[0]._preferred_bit() == nodes[0].input_bit

    def test_follows_highest_certificate(self, aba_world):
        n, f, registry, authenticator, config, nodes = aba_world
        node = nodes[0]
        votes = {v: authenticator.attempt(v, ("Vote", 1, 0))
                 for v in range(f + 1)}
        node._absorb_certificate(certificate_from_votes(1, 0, votes, f + 1))
        assert node._preferred_bit() == 0

    def test_ties_fall_back_to_last_vote(self, aba_world):
        *_rest, nodes = aba_world
        node = nodes[0]
        node.last_vote = 0
        assert node._preferred_bit() == 0
