"""Adaptive-BA unit and property tests (``protocols/adaptive_ba.py``).

The pinned claims:

- **Fast path**: a fault-free unanimous execution decides in epoch 1
  with zero escalations and at most ``FAST_PATH_WORD_FACTOR * n`` = 4n
  classical words — linear, not quadratic.
- **Adaptivity**: corrupting exactly k of the budgeted f nodes (the
  upcoming collectors — worst-case placement) costs exactly k
  escalation epochs, words grow monotonically in k, and even the
  k = f worst case stays below quadratic BA's word count at the same
  ``(n, f)``.
- **Safety**: agreement and validity hold across seeds, inputs, and the
  supported adversaries; split inputs unify through the king path in
  one escalation.
"""

import pytest

from repro.adversaries import ActualFaultsAdversary, CrashAdversary
from repro.errors import ConfigurationError
from repro.harness.runner import run_instance
from repro.protocols import build_adaptive_ba, build_quadratic_ba
from repro.protocols.adaptive_ba import (
    EPOCH_ROUNDS,
    FAST_PATH_WORD_FACTOR,
    actual_faults_of,
    collector_of,
    default_epochs,
    epoch_of_round,
    epoch_schedule,
    escalations_of,
    rounds_for_epochs,
    words_of,
)
from repro.sim.conditions import NETWORKS, NetworkConditions


def _inputs(n):
    return [i % 2 for i in range(n)]


def _run(n, f, inputs, seed=0, adversary=None, conditions=None, **kwargs):
    instance = build_adaptive_ba(n, f, inputs, seed=seed,
                                 conditions=conditions, **kwargs)
    return run_instance(instance, f, adversary, seed=seed,
                        conditions=conditions)


class TestFastPath:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_unanimous_faultfree_is_linear_and_silent(self, bit):
        """The headline claim at f* = 0: decide on the unanimous input
        in epoch 1, zero escalations, exactly 4(n - 1) words — reports,
        one propose multicast, acks, one decide multicast."""
        for n, f in ((10, 3), (25, 8)):
            result = _run(n, f, [bit] * n, seed=bit)
            assert result.all_decided() and result.consistent()
            assert set(result.outputs.values()) == {bit}
            assert escalations_of(result) == 0
            assert words_of(result) == FAST_PATH_WORD_FACTOR * (n - 1)
            assert words_of(result) <= FAST_PATH_WORD_FACTOR * n

    def test_split_inputs_unify_through_the_king_in_one_escalation(self):
        """Mixed inputs leave no certificate quorum in epoch 1; the
        collector's f+1-justified king bit unifies beliefs and epoch 2
        decides — exactly one escalation."""
        result = _run(10, 3, _inputs(10), seed=1)
        assert result.all_decided() and result.consistent()
        assert result.agreement_valid()
        assert escalations_of(result) == 1

    def test_fast_path_words_beat_quadratic_ba(self):
        n, f = 25, 8
        adaptive = _run(n, f, [1] * n, seed=0)
        quadratic = run_instance(
            build_quadratic_ba(n, f, [1] * n, seed=0), f, None, seed=0)
        assert words_of(adaptive) < words_of(quadratic)


class TestAdaptivity:
    def test_escalations_track_the_actual_fault_count(self):
        """Corrupting the first k nodes silences the collectors of
        epochs 1..k: exactly k escalations, and f* is reported."""
        n, f = 25, 8
        for k in range(f + 1):
            result = _run(n, f, [1] * n, seed=k,
                          adversary=ActualFaultsAdversary(actual=k))
            assert result.all_decided() and result.consistent(), k
            assert actual_faults_of(result) == k
            assert escalations_of(result) == k

    def test_words_monotone_in_actual_faults_and_below_quadratic(self):
        n, f = 25, 8
        quadratic_words = min(
            words_of(run_instance(
                build_quadratic_ba(n, f, [1] * n, seed=seed),
                f, ActualFaultsAdversary(actual=k), seed=seed))
            for seed in range(2) for k in (0, f))
        previous = -1
        for k in range(f + 1):
            result = _run(n, f, [1] * n, seed=0,
                          adversary=ActualFaultsAdversary(actual=k))
            words = words_of(result)
            assert words >= previous, k
            assert words < quadratic_words, k
            previous = words

    def test_actual_faults_adversary_rejects_over_budget(self):
        instance = build_adaptive_ba(10, 3, [1] * 10)
        with pytest.raises(ConfigurationError, match="exceeds"):
            run_instance(instance, 3, ActualFaultsAdversary(actual=4),
                         seed=0)
        with pytest.raises(ConfigurationError, match="non-negative"):
            ActualFaultsAdversary(actual=-1)


class TestSafetyProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_agreement_validity_termination_benign(self, seed):
        for inputs in ([0] * 10, [1] * 10, _inputs(10)):
            result = _run(10, 3, inputs, seed=seed)
            assert result.all_decided()
            assert result.consistent() and result.agreement_valid()
            assert result.rounds_executed <= result.rounds_budget

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_validity_under_crash(self, seed):
        result = _run(10, 3, _inputs(10), seed=seed,
                      adversary=CrashAdversary())
        assert result.all_decided()
        assert result.consistent() and result.agreement_valid()

    @pytest.mark.parametrize("network", ["lan", "wan", "lossy"])
    def test_decides_under_conditions(self, network):
        conditions = NETWORKS[network]
        result = _run(10, 3, _inputs(10), seed=2, conditions=conditions)
        assert result.all_decided()
        assert result.consistent() and result.agreement_valid()

    def test_validity_is_input_anchored(self):
        """All-honest-b inputs can only decide b — the king path needs
        f + 1 reports, one more than the corrupt nodes can fake."""
        for bit in (0, 1):
            for seed in range(3):
                result = _run(13, 4, [bit] * 13, seed=seed,
                              adversary=CrashAdversary())
                decided = set(result.outputs.values()) - {None}
                assert decided == {bit}, (bit, seed)


class TestScheduleHelpers:
    def test_epoch_schedule_phases(self):
        assert epoch_schedule(0) == (1, "Report")
        assert epoch_schedule(1) == (1, "Propose")
        assert epoch_schedule(2) == (1, "Ack")
        assert epoch_schedule(3) == (1, "Decide")
        assert epoch_schedule(4) == (2, "Report")
        assert epoch_of_round(7) == 2
        assert epoch_of_round(8) == 3

    def test_collector_rotation(self):
        assert [collector_of(e, 5) for e in range(1, 7)] == \
            [0, 1, 2, 3, 4, 0]

    def test_round_budget(self):
        assert rounds_for_epochs(1) == EPOCH_ROUNDS + 2
        assert rounds_for_epochs(5) == 5 * EPOCH_ROUNDS + 2
        with pytest.raises(ValueError):
            rounds_for_epochs(0)

    def test_default_epochs_accounts_for_trusted_rounds(self):
        assert default_epochs(3, None) == 5
        conditioned = NetworkConditions(delta=2, gst=8,
                                        latency=("uniform", 1, 2))
        burned = default_epochs(3, conditioned) - 5
        assert burned >= 1  # pre-GST epochs are budgeted, not stolen


class TestBuilderValidation:
    def test_rejects_insufficient_resilience(self):
        with pytest.raises(ConfigurationError, match="f < n/3"):
            build_adaptive_ba(9, 3, [0] * 9)

    def test_rejects_wrong_input_count(self):
        with pytest.raises(ConfigurationError, match="one input bit"):
            build_adaptive_ba(10, 3, [0] * 9)

    def test_rejects_empty_epoch_budget(self):
        with pytest.raises(ConfigurationError, match="at least one epoch"):
            build_adaptive_ba(10, 3, [0] * 10, epochs=0)

    def test_threshold_is_n_minus_f(self):
        for n, f in ((4, 1), (7, 2), (10, 3), (25, 8)):
            instance = build_adaptive_ba(n, f, [0] * n)
            assert instance.services["threshold"] == n - f
            assert 2 * (n - f) - n > f  # quorum overlap beats doublers
