"""Tests for the phase-king family (Sections 3.1 and 3.2)."""

import pytest

from repro.adversaries import AdaptiveSpeakerAdversary, CrashAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.protocols import build_phase_king, build_phase_king_subquadratic
from repro.protocols.phase_king import phase_king_rounds
from repro.protocols.phase_king_subquadratic import ack_threshold
from repro.types import SecurityParameters
from tests.conftest import mixed_inputs

PARAMS = SecurityParameters(lam=30, epsilon=0.1)


class TestWarmupPhaseKing:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        n, f = 10, 3
        instance = build_phase_king(n, f, [bit] * n, seed=0, epochs=6)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {bit}

    def test_mixed_inputs_converge(self):
        n, f = 10, 3
        stats = run_trials(build_phase_king, f=f, seeds=range(6),
                           n=n, inputs=mixed_inputs(n), epochs=10)
        assert stats.consistency_rate == 1.0

    def test_runs_fixed_number_of_rounds(self):
        n, f, epochs = 10, 3, 6
        instance = build_phase_king(n, f, [1] * n, seed=0, epochs=epochs)
        result = run_instance(instance, f, seed=0)
        assert result.rounds_executed == phase_king_rounds(epochs)

    def test_crash_faults_tolerated(self):
        n, f = 12, 3
        stats = run_trials(build_phase_king, f=f, seeds=range(4),
                           n=n, inputs=[1] * n, epochs=8,
                           adversary_factory=lambda inst: CrashAdversary())
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0

    def test_linear_multicasts_per_epoch(self):
        """The warmup's cost: everyone ACKs every epoch."""
        n, f, epochs = 10, 3, 6
        instance = build_phase_king(n, f, [1] * n, seed=0, epochs=epochs)
        result = run_instance(instance, f, seed=0)
        assert result.metrics.multicast_complexity_messages >= n * (epochs - 1)

    def test_requires_f_below_third(self):
        with pytest.raises(ConfigurationError):
            build_phase_king(9, 3, [0] * 9)


class TestSubquadraticPhaseKing:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        n, f = 150, 30
        instance = build_phase_king_subquadratic(
            n, f, [bit] * n, seed=0, params=PARAMS, epochs=8)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {bit}

    def test_mixed_inputs_converge(self):
        n, f = 150, 30
        stats = run_trials(build_phase_king_subquadratic, f=f, seeds=range(4),
                           n=n, inputs=mixed_inputs(n), params=PARAMS,
                           epochs=10)
        assert stats.consistency_rate == 1.0

    def test_sublinear_multicasts(self):
        n, f, epochs = 400, 80, 8
        instance = build_phase_king_subquadratic(
            n, f, [1] * n, seed=1, params=PARAMS, epochs=epochs)
        result = run_instance(instance, f, seed=1)
        # Warmup would send >= n * epochs; compiled sends ~2λ per epoch.
        assert result.metrics.multicast_complexity_messages < n * epochs / 4

    def test_adaptive_speaker_attack_survived(self):
        n, f = 150, 30
        stats = run_trials(
            build_phase_king_subquadratic, f=f, seeds=range(4),
            n=n, inputs=[1] * n, params=PARAMS, epochs=6,
            adversary_factory=AdaptiveSpeakerAdversary)
        assert stats.consistency_rate == 1.0

    def test_ack_threshold_is_two_thirds_lambda(self):
        assert ack_threshold(SecurityParameters(lam=30)) == 20
        assert ack_threshold(SecurityParameters(lam=31)) == 21

    def test_requires_f_below_third(self):
        with pytest.raises(ConfigurationError):
            build_phase_king_subquadratic(90, 30, [0] * 90)

    def test_vrf_mode_round_trip(self):
        n, f = 18, 4
        params = SecurityParameters(lam=8, epsilon=0.1)
        instance = build_phase_king_subquadratic(
            n, f, [1] * n, seed=2, params=params, epochs=4, mode="vrf")
        result = run_instance(instance, f, seed=2)
        assert set(result.honest_outputs) == {1}
