"""Tests for the three executable lower bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.lowerbounds import (
    run_dolev_reischuk_attack,
    run_hypothetical_experiment,
    run_theorem4_attack,
)
from repro.protocols import (
    build_broadcast_from_ba,
    build_dolev_strong,
    build_naive_broadcast,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters


class TestDolevReischuk:
    def test_cheap_protocol_is_broken(self):
        report = run_dolev_reischuk_attack(
            build_naive_broadcast, n=40, f=16, sender_input=0, seed=1)
        assert report.attack_feasible
        assert report.consistency_violated
        assert report.victim_output_run2 != report.others_output_run2

    def test_messages_into_v_below_budget_for_cheap_protocol(self):
        report = run_dolev_reischuk_attack(
            build_naive_broadcast, n=40, f=16, sender_input=0, seed=1)
        assert report.messages_into_v < report.message_budget

    def test_victim_is_starved(self):
        report = run_dolev_reischuk_attack(
            build_naive_broadcast, n=40, f=16, sender_input=0, seed=1)
        assert report.victim_message_count <= report.f // 2

    def test_dolev_strong_resists(self):
        """The message-rich protocol leaves no starved victim: the
        executable content of the Ω(f²) bound."""
        report = run_dolev_reischuk_attack(
            build_dolev_strong, n=24, f=10, sender_input=0, seed=1)
        assert not report.attack_feasible
        assert not report.consistency_violated
        assert report.messages_into_v > report.message_budget

    def test_run1_validity_is_preserved(self):
        """Adversary A alone does not break the protocol — only the
        combination with A' does."""
        report = run_dolev_reischuk_attack(
            build_naive_broadcast, n=40, f=16, sender_input=0, seed=1)
        assert report.honest_output_run1 == 0

    def test_needs_f_at_least_two(self):
        with pytest.raises(ConfigurationError):
            run_dolev_reischuk_attack(
                build_naive_broadcast, n=10, f=1, sender_input=0)


class TestTheorem4:
    def test_subquadratic_broken_with_few_corruptions(self):
        params = SecurityParameters(lam=20, epsilon=0.1)
        report = run_theorem4_attack(
            build_broadcast_from_ba, n=700, f=320, sender_input=1,
            seeds=range(2), ba_builder=build_subquadratic_ba,
            params=params, max_iterations=10)
        assert report.violation_rate == 1.0
        assert report.mean_corruptions < report.f / 2
        assert report.budget_exhausted_rate == 0.0

    def test_quadratic_resists_the_same_attack(self):
        report = run_theorem4_attack(
            build_broadcast_from_ba, n=41, f=19, sender_input=1,
            seeds=range(2), ba_builder=build_quadratic_ba, max_iterations=10)
        assert report.violation_rate == 0.0
        assert report.budget_exhausted_rate == 1.0


class TestNoPkiHypotheticalExperiment:
    def test_shared_ro_reaches_contradiction(self):
        report = run_hypothetical_experiment(
            n=60, seed=2, params=SecurityParameters(lam=24), epochs=6,
            setup="shared-ro")
        assert report.left_outputs == {0}
        assert report.right_outputs == {1}
        assert report.contradiction
        assert report.bridge_rejections == 0
        # The honest-1 interpretation corrupts only the Q' speakers.
        assert report.right_speakers <= report.n

    def test_bridge_must_disagree_with_one_side(self):
        report = run_hypothetical_experiment(
            n=60, seed=2, params=SecurityParameters(lam=24), epochs=6,
            setup="shared-ro")
        assert (report.bridge_output in report.left_outputs) != (
            report.bridge_output in report.right_outputs)

    def test_pki_breaks_the_simulation(self):
        report = run_hypothetical_experiment(
            n=24, seed=2, params=SecurityParameters(lam=12), epochs=4,
            setup="pki")
        assert report.bridge_rejections > 0
        assert not report.contradiction
        # The bridge, rejecting the simulated side, stays with Q.
        assert report.bridge_output in report.left_outputs

    def test_rejects_tiny_networks(self):
        with pytest.raises(ConfigurationError):
            run_hypothetical_experiment(n=3)

    def test_rejects_unknown_setup(self):
        with pytest.raises(ConfigurationError):
            run_hypothetical_experiment(n=20, setup="quantum")


class TestTheorem4Census:
    """The probabilistic events inside the Theorem 4 proof, measured."""

    def test_proof_events_hold_in_the_subquadratic_regime(self):
        from repro.lowerbounds.theorem4 import run_theorem4_census
        params = SecurityParameters(lam=12, epsilon=0.1)
        census = run_theorem4_census(
            build_broadcast_from_ba, n=1600, f=720, sender_input=1,
            seeds=range(2), epsilon=0.25,
            ba_builder=build_subquadratic_ba, params=params,
            max_iterations=8)
        # E[z] < ε(f/2)²: the protocol is under the Markov budget.
        assert census.mean_z < census.markov_budget
        # Pr[X ∩ Y] > 1 − 2ε, the proof's conclusion.
        assert census.event_xy_rate >= census.theorem_bound

    def test_quadratic_regime_violates_the_markov_budget(self):
        """At small n the same protocol is NOT under the budget — the
        bound only bites asymptotically, as the theorem states."""
        from repro.lowerbounds.theorem4 import run_theorem4_census
        params = SecurityParameters(lam=16, epsilon=0.1)
        census = run_theorem4_census(
            build_broadcast_from_ba, n=200, f=80, sender_input=1,
            seeds=range(2), epsilon=0.25,
            ba_builder=build_subquadratic_ba, params=params,
            max_iterations=8)
        assert census.mean_z > census.markov_budget
