"""Tests for the multi-valued BA extension."""

import pytest

from repro.adversaries import CrashAdversary, StaticEquivocationAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.protocols.multivalued import (
    TaggedMsg,
    _tag_topic,
    build_multivalued_ba,
)
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=24, epsilon=0.1)


class TestTopicTagging:
    def test_kind_stays_first(self):
        assert _tag_topic(3, ("Vote", 2, 1)) == ("Vote", 3, 2, 1)

    def test_instances_are_domain_separated(self):
        assert _tag_topic(0, ("Vote", 2, 1)) != _tag_topic(1, ("Vote", 2, 1))

    def test_committees_independent_across_instances(self):
        instance = build_multivalued_ba(
            60, 15, [0] * 60, width=2, seed=1, params=PARAMS)
        eligibility = instance.services["eligibility"]
        winners = []
        for tag in (0, 1):
            topic = ("Vote", tag, 1, 0)
            winners.append({
                node for node in range(60)
                if eligibility.capability_for(node).try_mine(topic)})
        assert winners[0] != winners[1]


class TestAgreement:
    @pytest.mark.parametrize("value", [0, 1, 0x5A, 0xFF])
    def test_unanimous_validity(self, value):
        n, f = 100, 30
        instance = build_multivalued_ba(n, f, [value] * n, width=8,
                                        seed=2, params=PARAMS)
        result = run_instance(instance, f, seed=2)
        assert set(result.honest_outputs) == {value}
        assert result.all_decided()

    def test_mixed_values_consistent(self):
        n, f = 100, 30
        values = [(i * 19) % 256 for i in range(n)]
        instance = build_multivalued_ba(n, f, values, width=8,
                                        seed=3, params=PARAMS)
        result = run_instance(instance, f, seed=3)
        assert result.consistent()
        assert result.all_decided()

    def test_crash_faults_tolerated(self):
        n, f = 100, 40
        instance = build_multivalued_ba(n, f, [7] * n, width=4,
                                        seed=4, params=PARAMS)
        result = run_instance(instance, f, CrashAdversary(), seed=4)
        assert set(result.honest_outputs) == {7}

    def test_width_one_matches_binary_protocol_semantics(self):
        n, f = 80, 20
        instance = build_multivalued_ba(n, f, [1] * n, width=1,
                                        seed=5, params=PARAMS)
        result = run_instance(instance, f, seed=5)
        assert set(result.honest_outputs) == {1}

    def test_multicast_complexity_scales_with_width_not_n(self):
        counts = {}
        for n in (80, 240):
            instance = build_multivalued_ba(
                n, int(0.25 * n), [3] * n, width=4, seed=6, params=PARAMS)
            result = run_instance(instance, int(0.25 * n), seed=6)
            counts[n] = result.metrics.multicast_complexity_messages
        assert counts[240] < 2 * counts[80] + 20


class TestConfiguration:
    def test_value_must_fit_width(self):
        with pytest.raises(ConfigurationError):
            build_multivalued_ba(10, 3, [9] * 10, width=3)

    def test_requires_value_per_node(self):
        with pytest.raises(ConfigurationError):
            build_multivalued_ba(10, 3, [1, 2], width=4)

    def test_requires_positive_width(self):
        with pytest.raises(ConfigurationError):
            build_multivalued_ba(10, 3, [0] * 10, width=0)

    def test_requires_honest_majority(self):
        with pytest.raises(ConfigurationError):
            build_multivalued_ba(10, 5, [0] * 10, width=2)

    def test_tagged_msg_roundtrip_in_inbox_split(self):
        instance = build_multivalued_ba(20, 5, [2] * 20, width=2,
                                        seed=7, params=PARAMS)
        node = instance.nodes[0]
        assert len(node.instances) == 2
        assert node.instances[0].input_bit == 0  # bit 0 of value 2
        assert node.instances[1].input_bit == 1  # bit 1 of value 2
