"""Tests for communication accounting (Definitions 6 and 7)."""

from repro.serialization import encoded_size_bits
from repro.sim.metrics import CommunicationMetrics
from repro.sim.network import Envelope


def _envelope(sender=0, recipient=None, payload="m", round_sent=0,
              honest=True, envelope_id=0):
    return Envelope(envelope_id=envelope_id, sender=sender,
                    recipient=recipient, payload=payload,
                    round_sent=round_sent, honest_sender=honest)


class TestMulticastComplexity:
    def test_honest_multicast_counted(self):
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope())
        assert metrics.multicast_complexity_messages == 1
        assert metrics.multicast_complexity_bits == encoded_size_bits("m")

    def test_corrupt_multicast_not_counted(self):
        """Definition 7 counts bits multicast by *honest* players."""
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope(honest=False))
        assert metrics.multicast_complexity_messages == 0
        assert metrics.corrupt_multicast_count == 1

    def test_unicast_not_a_multicast(self):
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope(recipient=3))
        assert metrics.multicast_complexity_messages == 0
        assert metrics.honest_unicast_count == 1

    def test_per_round_breakdown(self):
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope(round_sent=0))
        metrics.record(_envelope(round_sent=0, envelope_id=1))
        metrics.record(_envelope(round_sent=2, envelope_id=2))
        assert metrics.per_round_honest_multicasts == {0: 2, 2: 1}


class TestClassicalComplexity:
    def test_multicast_counts_as_n_minus_one_messages(self):
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope())
        assert metrics.classical_message_count == 9

    def test_unicast_counts_once(self):
        metrics = CommunicationMetrics(n=10)
        metrics.record(_envelope(recipient=1))
        assert metrics.classical_message_count == 1

    def test_classical_bits_fan_out(self):
        metrics = CommunicationMetrics(n=4)
        metrics.record(_envelope(payload="abc"))
        assert metrics.classical_bits == 3 * encoded_size_bits("abc")


class TestMaxMessageSize:
    def test_max_tracks_largest_honest_payload(self):
        metrics = CommunicationMetrics(n=4)
        metrics.record(_envelope(payload="x"))
        metrics.record(_envelope(payload="a much longer payload",
                                 envelope_id=1))
        assert metrics.max_message_bits == encoded_size_bits(
            "a much longer payload")

    def test_corrupt_payloads_do_not_set_max(self):
        metrics = CommunicationMetrics(n=4)
        metrics.record(_envelope(payload="y" * 100, honest=False))
        assert metrics.max_message_bits == 0
