"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups import TEST_GROUP
from repro.types import SecurityParameters


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xDECAF)


@pytest.fixture
def group():
    return TEST_GROUP


@pytest.fixture
def params() -> SecurityParameters:
    return SecurityParameters(lam=30, epsilon=0.1)


def mixed_inputs(n: int) -> list:
    return [i % 2 for i in range(n)]
