"""Tests for leader oracles and the execution-result predicates."""

from repro.protocols.leader_ba import (
    decision_view_of,
    rounds_for_views,
    view_of_round,
)
from repro.sim.leader import RandomLeaderOracle, RoundRobinLeaderOracle
from repro.sim.metrics import CommunicationMetrics
from repro.sim.result import ExecutionResult


class TestLeaderOracles:
    def test_round_robin(self):
        oracle = RoundRobinLeaderOracle(5)
        assert [oracle.leader(e) for e in range(7)] == [0, 1, 2, 3, 4, 0, 1]

    def test_random_oracle_is_memoized(self):
        oracle = RandomLeaderOracle(50, seed=3)
        assert oracle.leader(4) == oracle.leader(4)

    def test_random_oracle_deterministic_per_seed(self):
        a = RandomLeaderOracle(50, seed=3)
        b = RandomLeaderOracle(50, seed=3)
        assert [a.leader(e) for e in range(10)] == [b.leader(e)
                                                    for e in range(10)]

    def test_random_oracle_varies_across_epochs(self):
        oracle = RandomLeaderOracle(50, seed=3)
        leaders = {oracle.leader(e) for e in range(30)}
        assert len(leaders) > 5

    def test_random_oracle_in_range(self):
        oracle = RandomLeaderOracle(7, seed=1)
        assert all(0 <= oracle.leader(e) < 7 for e in range(40))


def _result(outputs, corrupt=(), inputs=None, n=None):
    n = n if n is not None else len(outputs) + len(corrupt)
    return ExecutionResult(
        n=n,
        corruption_budget=len(corrupt),
        corrupt_set=set(corrupt),
        rounds_executed=5,
        outputs=outputs,
        decided_rounds={node: 3 for node in outputs},
        metrics=CommunicationMetrics(n=n),
        inputs=inputs or {},
    )


class TestResultPredicates:
    def test_consistency(self):
        assert _result({0: 1, 1: 1, 2: 1}).consistent()
        assert not _result({0: 1, 1: 0, 2: 1}).consistent()

    def test_corrupt_outputs_ignored(self):
        result = _result({0: 1, 2: 1}, corrupt=(1,))
        assert result.consistent()
        assert result.forever_honest == [0, 2]

    def test_agreement_validity_binding(self):
        result = _result({0: 0, 1: 0}, inputs={0: 1, 1: 1})
        assert not result.agreement_valid()
        result = _result({0: 1, 1: 1}, inputs={0: 1, 1: 1})
        assert result.agreement_valid()

    def test_agreement_validity_vacuous_on_mixed_inputs(self):
        result = _result({0: 0, 1: 0}, inputs={0: 0, 1: 1})
        assert result.agreement_valid()

    def test_broadcast_validity(self):
        result = _result({0: 1, 1: 1, 2: 1})
        assert result.broadcast_valid(0, 1)
        assert not result.broadcast_valid(0, 0)

    def test_broadcast_validity_vacuous_for_corrupt_sender(self):
        result = _result({1: 0, 2: 0}, corrupt=(0,))
        assert result.broadcast_valid(0, 1)

    def test_all_decided(self):
        result = _result({0: 1, 1: 1})
        assert result.all_decided()
        result.decided_rounds[1] = None
        assert not result.all_decided()

    def test_summary_mentions_key_facts(self):
        text = _result({0: 1, 1: 1}).summary()
        assert "consistent=True" in text
        assert "n=2" in text


class TestDecisionViewOf:
    def _timed_out(self, views):
        """A run that exhausted its ``views``-view budget undecided."""
        budget = rounds_for_views(views)
        result = _result({0: 1, 1: 1})
        result.decided_rounds = {0: None, 1: None}
        result.rounds_executed = budget
        result.rounds_budget = budget
        return result

    def test_exhausted_budget_reports_the_last_view(self):
        """The two trailing delivery rounds past the last view must not
        be reported as a view of their own: without the clamp the raw
        round arithmetic lands on ``views + 1``."""
        for views in (1, 3, 7):
            result = self._timed_out(views)
            assert view_of_round(result.rounds_executed - 1) == views + 1
            assert decision_view_of(result) == views

    def test_decided_run_is_not_clamped(self):
        result = _result({0: 1, 1: 1})
        result.rounds_budget = rounds_for_views(2)
        result.decided_rounds = {0: 5, 1: 5}
        assert decision_view_of(result) == view_of_round(4)
