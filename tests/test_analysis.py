"""Tests for the analytical companions (Chernoff, parameters, stats)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    binomial_tail_ge,
    binomial_tail_le,
    chernoff_lower_tail,
    chernoff_upper_tail,
    choose_lambda,
    corrupt_quorum_probability,
    good_iteration_probability,
    honest_quorum_failure_probability,
    mean,
    percentile,
    stddev,
    terminate_propagation_failure,
)
from repro.analysis.parameters import (
    expected_iterations,
    protocol_failure_probability,
)


class TestChernoff:
    def test_upper_tail_decreases_in_delta(self):
        assert chernoff_upper_tail(10, 0.5) > chernoff_upper_tail(10, 1.0)

    def test_lower_tail_decreases_in_mu(self):
        assert chernoff_lower_tail(10, 0.5) > chernoff_lower_tail(100, 0.5)

    def test_zero_delta_is_trivial(self):
        assert chernoff_upper_tail(10, 0) == 1.0
        assert chernoff_lower_tail(10, 0) == 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 0.5)
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, 1.5)


class TestBinomialTails:
    def test_matches_hand_computation(self):
        # P[Bin(3, 1/2) >= 2] = 4/8.
        assert binomial_tail_ge(2, 3, 0.5) == pytest.approx(0.5)

    def test_complementarity(self):
        assert (binomial_tail_ge(4, 10, 0.3)
                + binomial_tail_le(3, 10, 0.3)) == pytest.approx(1.0)

    def test_edge_cases(self):
        assert binomial_tail_ge(0, 10, 0.3) == 1.0
        assert binomial_tail_ge(11, 10, 0.3) == 0.0
        assert binomial_tail_le(-1, 10, 0.3) == 0.0
        assert binomial_tail_le(10, 10, 0.3) == 1.0

    def test_degenerate_probabilities(self):
        assert binomial_tail_ge(1, 10, 0.0) == 0.0
        assert binomial_tail_ge(10, 10, 1.0) == 1.0

    def test_chernoff_upper_bounds_exact(self):
        """The Chernoff bound must dominate the exact tail."""
        trials, p = 100, 0.2
        mu = trials * p
        for threshold in (30, 40, 50):
            delta = threshold / mu - 1
            assert (binomial_tail_ge(threshold, trials, p)
                    <= chernoff_upper_tail(mu, delta) + 1e-12)

    @given(st.integers(1, 40), st.floats(0.05, 0.95))
    @settings(max_examples=30)
    def test_tail_is_monotone_in_k(self, trials, p):
        values = [binomial_tail_ge(k, trials, p) for k in range(trials + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestLemmaPredictions:
    def test_corrupt_quorum_probability_drops_with_lambda_margin(self):
        # Same corrupt fraction, bigger committee => smaller failure.
        small = corrupt_quorum_probability(300, 90, 20)
        large = corrupt_quorum_probability(300, 90, 80)
        assert large < small

    def test_honest_failure_drops_with_honest_fraction(self):
        worse = honest_quorum_failure_probability(300, 140, 40)
        better = honest_quorum_failure_probability(300, 60, 40)
        assert better < worse

    def test_terminate_propagation_matches_lemma_bound(self):
        """Lemma 10: (1 - λ/n)^{εn/2} < exp(-ελ/2)."""
        n, lam = 400, 40
        terminated = 20  # εn/2 with ε = 0.1
        exact = terminate_propagation_failure(n, lam, terminated)
        bound = math.exp(-0.1 * lam / 2)
        assert exact < bound

    def test_good_iteration_probability_above_1_over_2e(self):
        """Lemma 12's bound holds exactly for every n."""
        for n in (10, 100, 1000, 10000):
            assert good_iteration_probability(n) > 1 / (2 * math.e)

    def test_good_iteration_probability_decreasing_in_n(self):
        assert (good_iteration_probability(10)
                > good_iteration_probability(10000))

    def test_expected_iterations_bounded_by_2e(self):
        assert expected_iterations(1000) < 2 * math.e + 0.5


class TestChooseLambda:
    def test_monotone_in_target(self):
        loose = choose_lambda(2000, 0.25, 1e-3)
        tight = choose_lambda(2000, 0.25, 1e-9)
        assert tight > loose

    def test_monotone_in_corruption(self):
        mild = choose_lambda(2000, 0.1, 1e-6)
        harsh = choose_lambda(2000, 0.4, 1e-6)
        assert harsh > mild

    def test_chosen_lambda_meets_target(self):
        n, fraction, target = 2000, 0.3, 1e-6
        lam = choose_lambda(n, fraction, target)
        failure = protocol_failure_probability(
            n, int(fraction * n), lam, iterations=40)
        assert failure <= target

    def test_minimality(self):
        n, fraction, target = 2000, 0.3, 1e-6
        lam = choose_lambda(n, fraction, target)
        failure_below = protocol_failure_probability(
            n, int(fraction * n), lam - 1, iterations=40)
        assert failure_below > target

    def test_input_validation(self):
        with pytest.raises(ValueError):
            choose_lambda(100, 0.6, 1e-6)
        with pytest.raises(ValueError):
            choose_lambda(100, 0.3, 2.0)


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_stddev(self):
        assert stddev([2.0, 2.0, 2.0]) == 0.0
        assert stddev([0.0, 2.0]) == 1.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 90) == 90
        assert percentile(values, 100) == 100

    def test_empty_sequences_raise(self):
        for fn in (mean, stddev):
            with pytest.raises(ValueError):
                fn([])
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)
