"""End-to-end tests for the quadratic BA protocol (Appendix C.1)."""

import pytest

from repro.adversaries import CrashAdversary, LeaderKillerAdversary, StaticEquivocationAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.protocols import build_quadratic_ba
from tests.conftest import mixed_inputs


class TestHonestExecutions:
    def test_unanimous_inputs_decide_in_first_iteration(self):
        n, f = 9, 4
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        assert result.consistent()
        assert set(result.honest_outputs) == {1}
        assert result.rounds_executed <= 4

    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity_both_bits(self, bit):
        n, f = 7, 3
        instance = build_quadratic_ba(n, f, [bit] * n, seed=1)
        result = run_instance(instance, f, seed=1)
        assert set(result.honest_outputs) == {bit}

    def test_mixed_inputs_reach_agreement(self):
        n, f = 9, 4
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(5),
                           n=n, inputs=mixed_inputs(n))
        assert stats.consistency_rate == 1.0
        assert stats.termination_rate == 1.0

    def test_expected_constant_iterations(self):
        """Mixed inputs decide within a few iterations (expected 2 good)."""
        n, f = 11, 5
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(8),
                           n=n, inputs=mixed_inputs(n))
        assert stats.mean_rounds < 20

    def test_every_node_multicasts(self):
        """Quadratic world: all n nodes speak (the cost Theorem 2 removes).

        In iteration 1 every honest node multicasts a vote, so the honest
        multicast count is at least n per execution.
        """
        n, f = 9, 4
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        assert result.metrics.multicast_complexity_messages >= n


class TestAdversarialExecutions:
    def test_crash_faults_tolerated(self):
        n, f = 9, 4
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(4),
                           n=n, inputs=[1] * n,
                           adversary_factory=lambda inst: CrashAdversary())
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0

    def test_equivocation_safe(self):
        n, f = 9, 4
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(4),
                           n=n, inputs=mixed_inputs(n),
                           adversary_factory=StaticEquivocationAdversary)
        assert stats.consistency_rate == 1.0

    def test_equivocation_validity_holds(self):
        """With unanimous honest inputs, corrupt double-votes cannot flip
        the outcome (the f+1 quorum needs an honest vote)."""
        n, f = 9, 4
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(4),
                           n=n, inputs=[0] * n,
                           adversary_factory=StaticEquivocationAdversary)
        assert stats.validity_rate == 1.0

    def test_leader_killing_delays_but_preserves_safety(self):
        n, f = 13, 6
        instance = build_quadratic_ba(n, f, mixed_inputs(n), seed=9)
        adversary = LeaderKillerAdversary(instance)
        result = run_instance(instance, f, adversary, seed=9)
        assert result.consistent()
        assert len(adversary.killed) > 0


class TestConfiguration:
    def test_requires_honest_majority(self):
        with pytest.raises(ConfigurationError):
            build_quadratic_ba(8, 4, [0] * 8)

    def test_requires_input_per_node(self):
        with pytest.raises(ConfigurationError):
            build_quadratic_ba(5, 2, [0, 1])

    def test_deterministic_replay(self):
        n, f = 9, 4
        r1 = run_instance(build_quadratic_ba(n, f, mixed_inputs(n), seed=3),
                          f, seed=3)
        r2 = run_instance(build_quadratic_ba(n, f, mixed_inputs(n), seed=3),
                          f, seed=3)
        assert r1.outputs == r2.outputs
        assert r1.rounds_executed == r2.rounds_executed
        assert (r1.metrics.multicast_complexity_bits
                == r2.metrics.multicast_complexity_bits)
