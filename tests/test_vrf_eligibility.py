"""Tests for compiled (VRF) eligibility — the Appendix D real world."""

import dataclasses

import pytest

from repro.eligibility.difficulty import DifficultySchedule
from repro.eligibility.fmine import FMineTicket
from repro.eligibility.vrf_eligibility import VrfEligibility, VrfTicket
from repro.types import SecurityParameters


@pytest.fixture
def source():
    params = SecurityParameters(lam=8)
    schedule = DifficultySchedule.for_parameters(params, 16)
    return VrfEligibility(16, schedule, seed=11)


class TestVrfEligibility:
    def test_winning_tickets_verify(self, source):
        winners = 0
        for node in range(16):
            ticket = source.capability_for(node).try_mine(("Vote", 1, 0))
            if ticket is not None:
                winners += 1
                assert source.verify(ticket)
        assert winners > 0  # p = 1/2 over 16 nodes: all-lose is 2^-16

    def test_mining_is_deterministic_per_topic(self, source):
        """A VRF is a function: re-mining cannot re-roll the lottery."""
        capability = source.capability_for(3)
        first = capability.try_mine(("Vote", 1, 0))
        second = capability.try_mine(("Vote", 1, 0))
        assert (first is None) == (second is None)
        if first is not None:
            assert first.output.beta == second.output.beta

    def test_bit_specific_independence(self, source):
        zero = {n for n in range(16)
                if source.capability_for(n).try_mine(("ACK", 1, 0))}
        one = {n for n in range(16)
               if source.capability_for(n).try_mine(("ACK", 1, 1))}
        assert zero != one

    def test_ticket_stolen_identity_rejected(self, source):
        for node in range(16):
            ticket = source.capability_for(node).try_mine(("Vote", 1, 0))
            if ticket is not None:
                stolen = dataclasses.replace(
                    ticket, node_id=(node + 1) % 16)
                assert not source.verify(stolen)
                return
        pytest.fail("no winner found")

    def test_ticket_replayed_on_other_topic_rejected(self, source):
        for node in range(16):
            ticket = source.capability_for(node).try_mine(("Vote", 1, 0))
            if ticket is not None:
                replayed = dataclasses.replace(ticket, topic=("Vote", 2, 0))
                assert not source.verify(replayed)
                return
        pytest.fail("no winner found")

    def test_above_threshold_output_rejected(self, source):
        """A valid VRF output that lost the lottery is not a ticket."""
        for node in range(16):
            output = source.evaluate(node, ("Vote", 1, 0))
            if output.beta >= source.schedule.threshold(("Vote", 1, 0)):
                ticket = VrfTicket(node_id=node, topic=("Vote", 1, 0),
                                   output=output)
                assert not source.verify(ticket)
                return
        pytest.fail("everyone won the lottery?!")

    def test_foreign_ticket_type_rejected(self, source):
        assert not source.verify(FMineTicket(node_id=1, topic=("Vote", 1, 0)))

    def test_verification_memoized_consistently(self, source):
        for node in range(16):
            ticket = source.capability_for(node).try_mine(("Vote", 1, 0))
            if ticket is not None:
                assert source.verify(ticket)
                assert source.verify(ticket)  # cached path
                return

    def test_public_keys_published(self, source):
        assert len(source.public_keys) == 16

    def test_ticket_bits_scale_with_group(self, source):
        assert source.ticket_bits() > source.group.element_bits()

    def test_success_rate_tracks_difficulty(self):
        params = SecurityParameters(lam=8)
        schedule = DifficultySchedule.for_parameters(params, 64)
        source = VrfEligibility(64, schedule, seed=4)
        wins = sum(
            source.capability_for(n).try_mine(("Vote", 1, 0)) is not None
            for n in range(64))
        assert 1 <= wins <= 20  # expected 8
