"""Tests for the CLI and the trace-analysis helpers."""

import pytest

from repro.cli import main
from repro.harness import run_instance
from repro.protocols import build_quadratic_ba, build_subquadratic_ba
from repro.sim.trace import (
    committee_per_topic,
    peak_round_multicasts,
    summarize_transcript,
)
from repro.types import SecurityParameters


class TestTraceAnalysis:
    def _result(self):
        n, f = 120, 30
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0, params=params)
        return run_instance(instance, f, seed=0), n

    def test_speaker_count_is_sublinear(self):
        result, n = self._result()
        summary = summarize_transcript(result.transcript)
        assert 0 < summary.speaker_count < n

    def test_speaker_count_matches_metrics_loosely(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert (summary.speaker_count
                <= result.metrics.multicast_complexity_messages)

    def test_kinds_are_protocol_messages(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert "VoteMsg" in summary.messages_by_kind
        assert "CommitMsg" in summary.messages_by_kind

    def test_committee_per_topic_reads_tickets(self):
        result, _n = self._result()
        committees = committee_per_topic(result.transcript)
        vote_topics = [t for t in committees if t[0] == "Vote"]
        assert vote_topics
        for topic in vote_topics:
            assert committees[topic]

    def test_peak_round(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert peak_round_multicasts(summary) >= 1
        assert peak_round_multicasts(summarize_transcript([])) == 0

    def test_quadratic_speakers_are_everyone(self):
        n, f = 11, 5
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        summary = summarize_transcript(result.transcript)
        assert summary.speaker_count == n


class TestCli:
    def test_run_subquadratic(self, capsys):
        code = main(["run", "--protocol", "subquadratic", "-n", "100",
                     "-f", "25", "--adversary", "crash", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent:          True" in out
        assert "distinct speakers:" in out

    def test_run_quadratic_equivocate(self, capsys):
        code = main(["run", "--protocol", "quadratic", "-n", "9", "-f", "4",
                     "--adversary", "equivocate", "--input", "ones"])
        assert code == 0
        assert "quadratic-ba" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        code = main(["experiment", "E2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Dolev–Reischuk" in out

    def test_params_command(self, capsys):
        code = main(["params", "-n", "1000", "--corrupt", "0.25",
                     "--target", "1e-6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chosen λ:" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRegistryParity:
    """The CLI surfaces are regenerated from the live registries — new
    sweeps/protocols can never be silently missing from them again."""

    def test_epilog_names_every_sweep_and_runnable_protocol(self):
        from repro.cli import PROTOCOLS, _epilog
        from repro.harness.experiments import ALL_EXPERIMENTS
        from repro.harness.sweep_library import SWEEPS

        epilog = _epilog()
        for name in SWEEPS:
            assert name in epilog, f"sweep {name} missing from epilog"
        for name in PROTOCOLS:
            assert name in epilog, f"protocol {name} missing from epilog"
        last = max(int(name[1:]) for name in ALL_EXPERIMENTS)
        assert f"E1..E{last}" in epilog
        assert "report" in epilog

    def test_sweep_list_matches_registry_exactly(self, capsys):
        from repro.harness.sweep_library import SWEEPS

        assert main(["sweep", "--list"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split()[0] for line in lines] == sorted(SWEEPS)

    def test_run_protocols_derived_from_scenario_registry(self):
        from repro.cli import EARLY_STOP_PROTOCOLS, PROTOCOLS
        from repro.harness.scenarios import PROTOCOLS as REGISTRY

        assert set(PROTOCOLS) == {
            key for key, entry in REGISTRY.items()
            if entry.input_style == "per-node"}
        for key, builder in PROTOCOLS.items():
            assert builder is REGISTRY[key].builder
        assert EARLY_STOP_PROTOCOLS == {
            key for key, entry in REGISTRY.items() if entry.early_stopping}

    def test_mode_flag_reaches_every_mode_taking_protocol(self):
        # --mode must never be silently dropped: the CLI forwards it to
        # exactly the registry protocols flagged takes_mode (including
        # round-eligibility, which takes mode but shares no lottery).
        from repro.cli import _MODE_PROTOCOLS
        from repro.harness.scenarios import PROTOCOLS as REGISTRY

        assert _MODE_PROTOCOLS == {
            key for key, entry in REGISTRY.items() if entry.takes_mode}
        assert "round-eligibility" in _MODE_PROTOCOLS

    def test_run_round_eligibility_vrf_mode(self, capsys):
        code = main(["run", "--protocol", "round-eligibility", "-n", "13",
                     "-f", "2", "--lam", "8", "--mode", "vrf",
                     "--seed", "1"])
        assert code == 0
        assert "round-eligibility" in capsys.readouterr().out


class TestCliStoreAndReport:
    def _tiny(self):
        from repro.harness.scenarios import ScenarioSpec, SweepSpec

        return SweepSpec(
            name="tinycli",
            description="CLI store-flow test sweep",
            scenarios=(ScenarioSpec(
                name="subq", protocol="subquadratic",
                fixed={"n": 24, "f_fraction": 0.25, "lam": 10},
                inputs="mixed", seeds=(0, 1)),))

    def test_sweep_store_then_warm_replay_then_report(
            self, capsys, tmp_path, monkeypatch):
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "tinycli", "--store", store_dir]) == 0
        cold = capsys.readouterr().out
        assert "store: 0 replayed, 1 computed, 0 skipped" in cold
        assert main(["sweep", "tinycli", "--store", store_dir]) == 0
        warm = capsys.readouterr().out
        assert "store: 1 replayed, 0 computed, 0 skipped" in warm
        assert main(["report", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "book.md" in out and "book.json" in out
        assert "1 sweep(s), 1 cell(s)" in out
        assert "tinycli" in (tmp_path / "store" / "book.md").read_text()

    def test_sweep_shard_flag(self, capsys, tmp_path, monkeypatch):
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "tinycli", "--store", store_dir,
                     "--shard", "2/2"]) == 0
        out = capsys.readouterr().out
        assert "[shard 2/2]" in out

    def test_partial_shard_artifacts_warn(self, capsys, tmp_path,
                                          monkeypatch):
        from repro.harness.scenarios import ScenarioSpec, SweepSpec
        from repro.harness.sweep_library import SWEEPS

        two_cells = SweepSpec(
            name="tinycli",
            scenarios=(ScenarioSpec(
                name="subq", protocol="subquadratic",
                grid={"n": (24, 32)},
                fixed={"f_fraction": 0.25, "lam": 10},
                inputs="mixed", seeds=(0,)),))
        monkeypatch.setitem(SWEEPS, "tinycli", two_cells)
        assert main(["sweep", "tinycli",
                     "--store", str(tmp_path / "store"),
                     "--shard", "1/2",
                     "--out-dir", str(tmp_path / "artifacts")]) == 0
        captured = capsys.readouterr()
        assert "artifacts are PARTIAL" in captured.err
        assert "1 cell(s) skipped by shard 1/2" in captured.err

    def test_bad_shard_exits_2(self, capsys, tmp_path, monkeypatch):
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        assert main(["sweep", "tinycli", "--store",
                     str(tmp_path / "store"), "--shard", "9/4"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_shard_without_store_is_refused(self, capsys, monkeypatch):
        # A shard alone would write partial artifacts that look
        # complete; only a shared store makes shards union.
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        assert main(["sweep", "tinycli", "--shard", "1/2"]) == 2
        assert "--shard requires --store" in capsys.readouterr().err

    def test_report_without_store_exits_2(self, capsys, tmp_path):
        assert main(["report", "--store", str(tmp_path / "absent")]) == 2
        assert "no experiment store" in capsys.readouterr().err

    def test_report_with_bad_baseline_exits_2(
            self, capsys, tmp_path, monkeypatch):
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        store_dir = str(tmp_path / "store")
        assert main(["sweep", "tinycli", "--store", store_dir]) == 0
        capsys.readouterr()
        assert main(["report", "--store", store_dir,
                     "--baseline", str(tmp_path / "missing.json")]) == 2
        assert "report:" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        assert main(["report", "--store", store_dir,
                     "--baseline", str(bad)]) == 2
        assert "report:" in capsys.readouterr().err

    def test_resume_uses_default_store_dir(
            self, capsys, tmp_path, monkeypatch):
        from repro.harness.sweep_library import SWEEPS

        monkeypatch.setitem(SWEEPS, "tinycli", self._tiny())
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "tinycli", "--resume"]) == 0
        capsys.readouterr()
        assert (tmp_path / ".repro-store" / "sweeps"
                / "tinycli.json").exists()
        assert main(["sweep", "tinycli", "--resume"]) == 0
        assert "1 replayed, 0 computed" in capsys.readouterr().out
