"""Tests for the CLI and the trace-analysis helpers."""

import pytest

from repro.cli import main
from repro.harness import run_instance
from repro.protocols import build_quadratic_ba, build_subquadratic_ba
from repro.sim.trace import (
    committee_per_topic,
    peak_round_multicasts,
    summarize_transcript,
)
from repro.types import SecurityParameters


class TestTraceAnalysis:
    def _result(self):
        n, f = 120, 30
        params = SecurityParameters(lam=20, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0, params=params)
        return run_instance(instance, f, seed=0), n

    def test_speaker_count_is_sublinear(self):
        result, n = self._result()
        summary = summarize_transcript(result.transcript)
        assert 0 < summary.speaker_count < n

    def test_speaker_count_matches_metrics_loosely(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert (summary.speaker_count
                <= result.metrics.multicast_complexity_messages)

    def test_kinds_are_protocol_messages(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert "VoteMsg" in summary.messages_by_kind
        assert "CommitMsg" in summary.messages_by_kind

    def test_committee_per_topic_reads_tickets(self):
        result, _n = self._result()
        committees = committee_per_topic(result.transcript)
        vote_topics = [t for t in committees if t[0] == "Vote"]
        assert vote_topics
        for topic in vote_topics:
            assert committees[topic]

    def test_peak_round(self):
        result, _n = self._result()
        summary = summarize_transcript(result.transcript)
        assert peak_round_multicasts(summary) >= 1
        assert peak_round_multicasts(summarize_transcript([])) == 0

    def test_quadratic_speakers_are_everyone(self):
        n, f = 11, 5
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        summary = summarize_transcript(result.transcript)
        assert summary.speaker_count == n


class TestCli:
    def test_run_subquadratic(self, capsys):
        code = main(["run", "--protocol", "subquadratic", "-n", "100",
                     "-f", "25", "--adversary", "crash", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent:          True" in out
        assert "distinct speakers:" in out

    def test_run_quadratic_equivocate(self, capsys):
        code = main(["run", "--protocol", "quadratic", "-n", "9", "-f", "4",
                     "--adversary", "equivocate", "--input", "ones"])
        assert code == 0
        assert "quadratic-ba" in capsys.readouterr().out

    def test_experiment_command(self, capsys):
        code = main(["experiment", "E2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Dolev–Reischuk" in out

    def test_params_command(self, capsys):
        code = main(["params", "-n", "1000", "--corrupt", "0.25",
                     "--target", "1e-6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chosen λ:" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
