"""Additional coverage: cross-module behaviours not exercised elsewhere."""

import pytest

from repro.adversaries import CrashAdversary, StaticEquivocationAdversary
from repro.harness import run_instance
from repro.lowerbounds.no_pki import derive_seed_left, derive_seed_right
from repro.protocols import build_subquadratic_ba
from repro.protocols.multivalued import build_multivalued_ba
from repro.sim.adversary import Adversary
from repro.sim.engine import Simulation
from repro.sim.node import Node
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=24, epsilon=0.1)


class TestNoPkiSeeds:
    def test_side_seeds_are_independent(self):
        assert derive_seed_left(7) != derive_seed_right(7)
        assert derive_seed_left(7) != derive_seed_left(8)


class TestMultivaluedUnderAttack:
    def test_crash_and_equivocation(self):
        n, f = 100, 25
        instance = build_multivalued_ba(n, f, [0x3] * n, width=2,
                                        seed=9, params=PARAMS)
        result = run_instance(instance, f, CrashAdversary(), seed=9)
        assert set(result.honest_outputs) == {0x3}

    def test_mixed_values_with_crash(self):
        n, f = 100, 25
        values = [i % 4 for i in range(n)]
        instance = build_multivalued_ba(n, f, values, width=2,
                                        seed=10, params=PARAMS)
        result = run_instance(instance, f, CrashAdversary(), seed=10)
        assert result.consistent()


class TestEngineDetails:
    class OneShotNode(Node):
        def __init__(self, node_id, n):
            super().__init__(node_id, n)
            self.heard = []

        def on_round(self, ctx):
            self.heard.extend(ctx.inbox)
            if ctx.round == 0 and self.node_id == 0:
                ctx.send(2, "direct")
            if ctx.round >= 2:
                self.decide(0, ctx.round)
                self.halted = True

        def output(self):
            return 0 if self.halted else None

    def test_unicast_reaches_exactly_one_node(self):
        nodes = [self.OneShotNode(i, 3) for i in range(3)]
        Simulation(nodes, 0, max_rounds=4).run()
        assert [d.payload for d in nodes[2].heard] == ["direct"]
        assert nodes[1].heard == []

    def test_halted_nodes_are_not_stepped(self):
        class CountingNode(Node):
            def __init__(self, node_id, n):
                super().__init__(node_id, n)
                self.steps = 0

            def on_round(self, ctx):
                self.steps += 1
                self.halted = True

            def output(self):
                return 0

        nodes = [CountingNode(i, 2) for i in range(2)]
        Simulation(nodes, 0, max_rounds=10).run()
        assert all(node.steps == 1 for node in nodes)

    def test_adversary_unicast_injection_is_targeted(self):
        class TargetedInjector(Adversary):
            def on_setup(self):
                self.api.corrupt(1)

            def react(self, round_index, staged):
                if round_index == 0:
                    self.api.inject(1, 2, "whisper")

        nodes = [self.OneShotNode(i, 3) for i in range(3)]
        Simulation(nodes, 1, adversary=TargetedInjector(),
                   max_rounds=4).run()
        payloads_2 = [d.payload for d in nodes[2].heard]
        payloads_0 = [d.payload for d in nodes[0].heard]
        assert "whisper" in payloads_2
        assert "whisper" not in payloads_0

    def test_corrupt_message_counts_tracked(self):
        class Noisy(Adversary):
            def on_setup(self):
                self.api.corrupt(1)

            def react(self, round_index, staged):
                if round_index == 0:
                    self.api.inject(1, None, "spam")
                    self.api.inject(1, 0, "spam")

        nodes = [self.OneShotNode(i, 3) for i in range(3)]
        result = Simulation(nodes, 1, adversary=Noisy(), max_rounds=4).run()
        assert result.metrics.corrupt_multicast_count == 1
        assert result.metrics.corrupt_unicast_count == 1


class TestSubquadraticVrfUnderAttack:
    def test_compiled_world_survives_equivocation(self):
        """The full Appendix D stack under Byzantine pressure."""
        n, f = 27, 7
        params = SecurityParameters(lam=10, epsilon=0.1)
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=6, params=params,
            mode="vrf")
        adversary = StaticEquivocationAdversary(instance)
        result = run_instance(instance, f, adversary, seed=6)
        assert result.consistent()


class TestResultTranscript:
    def test_transcript_is_attached_and_ordered(self):
        n, f = 60, 15
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0,
                                         params=PARAMS)
        result = run_instance(instance, f, seed=0)
        ids = [envelope.envelope_id for envelope in result.transcript]
        assert ids == sorted(ids)
        assert len(result.transcript) >= \
            result.metrics.multicast_complexity_messages
