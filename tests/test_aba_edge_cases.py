"""Edge-case tests for the iterated-BA node: the paths adversarial
message streams exercise."""

import pytest

from repro.crypto.registry import KeyRegistry
from repro.protocols.aba import AbaConfig, AbaNode
from repro.protocols.base import OracleProposerPolicy, SignatureAuthenticator
from repro.protocols.certificates import certificate_from_votes
from repro.protocols.messages import (
    CommitMsg,
    ProposeMsg,
    StatusMsg,
    TerminateMsg,
    VoteMsg,
)
from repro.sim.leader import RoundRobinLeaderOracle
from repro.sim.network import Delivery
from repro.sim.node import RoundContext


@pytest.fixture
def world():
    n, f = 7, 3
    registry = KeyRegistry(n, "ideal")
    authenticator = SignatureAuthenticator(registry)
    config = AbaConfig(
        threshold=f + 1,
        authenticator=authenticator,
        proposer=OracleProposerPolicy(RoundRobinLeaderOracle(n),
                                      authenticator),
        max_iterations=5,
    )
    nodes = [AbaNode(i, n, 1, config) for i in range(n)]
    return n, f, authenticator, config, nodes


def _cert(authenticator, iteration, bit, voters):
    votes = {v: authenticator.attempt(v, ("Vote", iteration, bit))
             for v in voters}
    return certificate_from_votes(iteration, bit, votes, len(voters))


def _commit(authenticator, iteration, bit, sender, voters):
    return CommitMsg(
        iteration=iteration, bit=bit,
        certificate=_cert(authenticator, iteration, bit, voters),
        sender=sender,
        auth=authenticator.attempt(sender, ("Commit", iteration, bit)))


class TestStatusHandling:
    def test_status_with_bogus_certificate_ignored(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        bogus = _cert(authenticator, 1, 1, range(2))  # sub-quorum
        msg = StatusMsg(iteration=2, bit=1, certificate=bogus, sender=3,
                        auth=authenticator.attempt(3, ("Status", 2, 1)))
        node._handle_status(msg)
        assert node.best_cert[1] is None

    def test_status_with_valid_certificate_absorbed(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        cert = _cert(authenticator, 1, 1, range(f + 1))
        msg = StatusMsg(iteration=2, bit=1, certificate=cert, sender=3,
                        auth=authenticator.attempt(3, ("Status", 2, 1)))
        node._handle_status(msg)
        assert node.best_cert[1] == cert

    def test_status_wrong_auth_topic_ignored(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        cert = _cert(authenticator, 1, 1, range(f + 1))
        msg = StatusMsg(iteration=2, bit=1, certificate=cert, sender=3,
                        auth=authenticator.attempt(3, ("Status", 9, 1)))
        node._handle_status(msg)
        assert node.best_cert[1] is None


class TestCommitHandling:
    def test_commit_quorum_triggers_decision(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        inbox = [
            Delivery(sender, _commit(authenticator, 1, 1, sender,
                                     range(f + 1)))
            for sender in range(1, f + 2)
        ]
        ctx = RoundContext(0, 2, inbox, None)
        node.on_round(ctx)
        assert node.output() == 1
        assert node.halted

    def test_subquorum_commits_do_not_decide(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        inbox = [
            Delivery(sender, _commit(authenticator, 1, 1, sender,
                                     range(f + 1)))
            for sender in range(1, f + 1)  # one short of quorum
        ]
        ctx = RoundContext(0, 2, inbox, None)
        node.on_round(ctx)
        assert node.output() is None

    def test_commit_with_mismatched_certificate_rejected(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        commit = CommitMsg(
            iteration=2, bit=1,
            certificate=_cert(authenticator, 1, 1, range(f + 1)),  # rank 1
            sender=3,
            auth=authenticator.attempt(3, ("Commit", 2, 1)))
        node._handle_commit(commit)
        assert (2, 1) not in node.commits_seen

    def test_duplicate_commit_senders_counted_once(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        commit = _commit(authenticator, 1, 1, 3, range(f + 1))
        node._handle_commit(commit)
        node._handle_commit(commit)
        assert len(node.commits_seen[(1, 1)]) == 1


class TestTerminateHandling:
    def _terminate_msg(self, authenticator, f, bit=1, quorum=None):
        quorum = quorum if quorum is not None else f + 1
        commits = tuple(
            CommitMsg(iteration=1, bit=bit, certificate=None, sender=s,
                      auth=authenticator.attempt(s, ("Commit", 1, bit)))
            for s in range(quorum))
        return TerminateMsg(
            bit=bit, iteration=1, commits=commits, sender=5,
            auth=authenticator.attempt(5, ("Terminate", bit)))

    def test_valid_terminate_adopted(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        adopted = node._handle_terminate(self._terminate_msg(authenticator, f))
        assert adopted == (1, 1)

    def test_subquorum_terminate_rejected(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        msg = self._terminate_msg(authenticator, f, quorum=f)
        assert node._handle_terminate(msg) is None

    def test_terminate_with_wrong_bit_commits_rejected(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        commits = tuple(
            CommitMsg(iteration=1, bit=0, certificate=None, sender=s,
                      auth=authenticator.attempt(s, ("Commit", 1, 0)))
            for s in range(f + 1))
        msg = TerminateMsg(bit=1, iteration=1, commits=commits, sender=5,
                           auth=authenticator.attempt(5, ("Terminate", 1)))
        assert node._handle_terminate(msg) is None

    def test_adopting_node_can_relay(self, world):
        """After adopting a Terminate, the node's own Terminate carries
        the quorum (the Lemma 10 propagation chain)."""
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        msg = self._terminate_msg(authenticator, f)
        ctx = RoundContext(0, 2, [Delivery(5, msg)], None)
        node.on_round(ctx)
        assert node.halted and node.output() == 1
        relayed = [payload for _rec, payload in ctx.staged
                   if isinstance(payload, TerminateMsg)]
        assert len(relayed) == 1
        assert len(relayed[0].commits) >= config.threshold


class TestFallbackOutput:
    def test_undecided_node_falls_back_to_preferred_bit(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        assert node.output() is None
        assert node.finalize() == node.input_bit
        cert = _cert(authenticator, 1, 0, range(f + 1))
        node._absorb_certificate(cert)
        assert node.finalize() == 0

    def test_node_halts_after_max_iterations(self, world):
        n, f, authenticator, config, nodes = world
        node = nodes[0]
        # Round far beyond max_iterations * 4 + 2.
        ctx = RoundContext(0, 4 * config.max_iterations + 10, [], None)
        node.on_round(ctx)
        assert node.halted
