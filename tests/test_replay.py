"""Tests for the execution narrator."""

from repro.adversaries import StaticEquivocationAdversary
from repro.harness import run_instance
from repro.harness.replay import narrate
from repro.protocols import build_phase_king, build_subquadratic_ba
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=24, epsilon=0.1)


class TestNarrate:
    def _run(self, seed=0, adversary=False):
        n, f = 120, 30
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=seed, params=PARAMS)
        attacker = (StaticEquivocationAdversary(instance)
                    if adversary else None)
        return run_instance(instance, f, attacker, seed=seed)

    def test_narrative_contains_phases_and_outcome(self):
        text = narrate(self._run())
        assert "Vote" in text
        assert "Commit" in text
        assert "outcome: consistent=True" in text

    def test_narrative_reports_decisions(self):
        text = narrate(self._run())
        assert "nodes decided" in text

    def test_narrative_reports_proposals_with_cert_ranks(self):
        result = self._run(seed=3)
        if result.rounds_executed > 3:  # went past iteration 1
            text = narrate(result)
            assert "proposal: node" in text
            assert "cert rank" in text

    def test_adversarial_run_shows_both_bits(self):
        text = narrate(self._run(seed=1, adversary=True))
        assert "bit0=" in text and "bit1=" in text

    def test_phase_king_mode(self):
        n, f = 60, 15
        instance = build_phase_king(n, f, [1] * n, seed=0, epochs=4)
        result = run_instance(instance, f, seed=0)
        text = narrate(result, aba=False)
        assert "acks/proposes" in text
        assert "outcome: consistent=True" in text

    def test_round_cap(self):
        result = self._run()
        text = narrate(result, max_rounds=1)
        body_lines = [line for line in text.splitlines()
                      if line.startswith("round") and "decided" not in line]
        assert len(body_lines) == 1
