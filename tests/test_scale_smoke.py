"""Scale smoke guard: one large-n trial must stay tractable.

The scaling-curve work (batched delivery, compiled size accounting,
shared-payload validation) exists so that trials at n ≈ 1000+ are
routine.  This guard runs a single n = 768 quadratic-BA trial — large
enough that any regression to O(n²) eager delivery, per-call recursive
sizing, or per-copy re-verification blows the budgets by an order of
magnitude — under two independent budgets:

- an **authenticator-call budget** (hardware-independent, like
  tests/test_perf_smoke.py): verification work must stay O(n·rounds),
  not Θ(n²·threshold);
- a **wall-clock budget** chosen ~6x above the measured time (~4s on
  the bench machine), loose enough for slow CI hardware but far below
  the pre-optimization cost of the same trial (~1 minute).

CI runs this as the dedicated ``scale-smoke`` job so a hot-path
regression fails fast and by name, separately from the functional suite.
"""

from repro.harness.profiling import profile_phase_budget
from repro.protocols.quadratic_ba import build_quadratic_ba

WALL_BUDGET_SECONDS = 25.0


def test_quadratic_ba_n768_scale_budget():
    n, f = 768, 383
    instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=1)
    profile = profile_phase_budget(instance, f, seed=1)

    # The trial must still be a correct agreement...
    assert profile.result.consistent()
    assert profile.result.all_decided()
    # ...within the verification budget (measured: 3073 calls at n=768)...
    budget = 50 * n
    assert profile.check_calls <= budget, (
        f"authenticator.check called {profile.check_calls} times, "
        f"budget {budget}: verification memoization has regressed")
    # ...and within the wall budget (measured: ~4s on the bench machine).
    assert profile.wall_seconds <= WALL_BUDGET_SECONDS, (
        f"n={n} trial took {profile.wall_seconds:.1f}s "
        f"(budget {WALL_BUDGET_SECONDS}s); phase budget: "
        f"{profile.budget_dict()}")
