"""Tests for the runner, trial aggregation, and table rendering."""

import pytest

from repro.adversaries import CrashAdversary
from repro.harness import Table, run_instance, run_trials
from repro.harness.runner import TrialStats
from repro.protocols import build_quadratic_ba
from repro.sim.result import ExecutionResult


class TestRunTrials:
    def test_aggregates_across_seeds(self):
        n, f = 7, 3
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(3),
                           n=n, inputs=[1] * n)
        assert stats.trials == 3
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0
        assert stats.mean_rounds > 0
        assert stats.mean_multicasts > 0

    def test_adversary_factory_sees_each_instance(self):
        captured = []

        def factory(instance):
            captured.append(instance.name)
            return CrashAdversary()

        n, f = 7, 3
        run_trials(build_quadratic_ba, f=f, seeds=range(2),
                   n=n, inputs=[1] * n, adversary_factory=factory)
        assert captured == ["quadratic-ba", "quadratic-ba"]

    def test_empty_stats_defaults(self):
        stats = TrialStats()
        assert stats.consistency_rate == 1.0
        assert stats.violation_rate == 0.0
        assert stats.mean_rounds == 0.0

    def test_decision_rounds_collects_all(self):
        n, f = 7, 3
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(2),
                           n=n, inputs=[1] * n)
        assert len(stats.decision_rounds()) == 2 * n


def _stats_signature(stats):
    """Every externally observable aggregate of one TrialStats."""
    return {
        "trials": stats.trials,
        "consistency_rate": stats.consistency_rate,
        "validity_rate": stats.validity_rate,
        "termination_rate": stats.termination_rate,
        "mean_rounds": stats.mean_rounds,
        "mean_multicasts": stats.mean_multicasts,
        "mean_multicast_bits": stats.mean_multicast_bits,
        "decision_rounds": stats.decision_rounds(),
    }


class _CountingPool:
    """A lent-pool proxy that records every submit it forwards."""

    def __init__(self, pool):
        self.pool = pool
        self.submits = 0

    def submit(self, *args, **kwargs):
        self.submits += 1
        return self.pool.submit(*args, **kwargs)


class TestLentPool:
    def test_single_seed_routes_through_the_pool(self):
        # Satellite regression: a lone seed used to bypass a lent pool
        # entirely (silently discarding the worker-process state the
        # caller lent the pool to preserve). It must submit like any
        # other seed — and aggregate identically to the inline path.
        from concurrent.futures import ProcessPoolExecutor

        n, f = 7, 3
        kwargs = dict(f=f, n=n, inputs=[1] * n)
        with ProcessPoolExecutor(max_workers=1) as pool:
            counting = _CountingPool(pool)
            pooled = run_trials(build_quadratic_ba, seeds=[5],
                                pool=counting, **kwargs)
        assert counting.submits == 1
        inline = run_trials(build_quadratic_ba, seeds=[5], **kwargs)
        assert _stats_signature(pooled) == _stats_signature(inline)

    def test_pool_vs_inline_determinism_multi_seed(self):
        from concurrent.futures import ProcessPoolExecutor

        n, f = 7, 3
        kwargs = dict(f=f, n=n, inputs=[i % 2 for i in range(n)])
        with ProcessPoolExecutor(max_workers=2) as pool:
            counting = _CountingPool(pool)
            pooled = run_trials(build_quadratic_ba, seeds=range(3),
                                pool=counting, **kwargs)
        assert counting.submits == 3
        inline = run_trials(build_quadratic_ba, seeds=range(3), **kwargs)
        assert _stats_signature(pooled) == _stats_signature(inline)

    def test_empty_seeds_with_pool_runs_nothing(self):
        class ExplodingPool:
            def submit(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError("no seeds, no submits")

        n, f = 7, 3
        stats = run_trials(build_quadratic_ba, f=f, seeds=[],
                           pool=ExplodingPool(), n=n, inputs=[1] * n)
        assert stats.trials == 0


class TestRunInstance:
    def test_max_rounds_override(self):
        n, f = 7, 3
        instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=0)
        result = run_instance(instance, f, seed=0, max_rounds=1)
        assert result.rounds_executed == 1

    def test_returns_execution_result(self):
        n, f = 7, 3
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        assert isinstance(result, ExecutionResult)
        assert result.inputs == {i: 1 for i in range(n)}


class TestTable:
    def test_renders_aligned_columns(self):
        table = Table("Title", ["name", "value"])
        table.add_row("alpha", 1)
        table.add_row("b", 123456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_formats_floats_and_bools(self):
        table = Table("T", ["a", "b"])
        table.add_row(0.123456, True)
        rendered = table.render()
        assert "0.123" in rendered
        assert "yes" in rendered

    def test_wrong_arity_rejected(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_is_render(self):
        table = Table("T", ["a"])
        table.add_row(1)
        assert str(table) == table.render()
