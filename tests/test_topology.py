"""Per-link latency topologies (docs/NETWORK.md, "Topologies")."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.runner import run_instance
from repro.harness.scenarios import ScenarioSpec, SweepSpec, run_sweep
from repro.protocols import build_quadratic_ba
from repro.sim.conditions import (
    NETWORKS,
    TOPOLOGIES,
    LinkTopology,
    NetworkConditions,
    Partition,
)


class TestLinkTopologyShapes:
    def test_uniform_is_free_everywhere(self):
        topology = LinkTopology.uniform()
        assert topology.is_trivial
        assert all(topology.link_extra(s, r, 12) == 0
                   for s in range(12) for r in range(12) if s != r)

    def test_clustered_charges_cross_cluster_links_only(self):
        topology = LinkTopology.clustered(clusters=4, extra=2)
        n = 16  # clusters are contiguous blocks of 4
        assert topology.link_extra(0, 3, n) == 0
        assert topology.link_extra(0, 4, n) == 2
        assert topology.link_extra(15, 12, n) == 0
        assert topology.link_extra(15, 0, n) == 2

    def test_star_spares_hub_links(self):
        topology = LinkTopology.star(hub=2, extra=3)
        assert topology.link_extra(2, 7, 10) == 0
        assert topology.link_extra(7, 2, 10) == 0
        assert topology.link_extra(5, 7, 10) == 3

    def test_ring_charges_per_extra_hop_shorter_arc(self):
        topology = LinkTopology.ring(extra=1)
        n = 10
        assert topology.link_extra(0, 1, n) == 0   # neighbours
        assert topology.link_extra(0, 9, n) == 0   # wrap-around neighbour
        assert topology.link_extra(0, 3, n) == 2
        assert topology.link_extra(0, 5, n) == 4   # antipode
        assert topology.link_extra(8, 1, n) == 2   # shorter arc wraps

    def test_matrix_is_explicit_and_size_checked(self):
        topology = LinkTopology.from_matrix(
            [[0, 5, 0], [1, 0, 0], [0, 0, 0]])
        assert topology.link_extra(0, 1, 3) == 5
        assert topology.link_extra(1, 0, 3) == 1
        topology.check_n(3)
        with pytest.raises(ConfigurationError):
            topology.check_n(4)
        with pytest.raises(ConfigurationError):
            LinkTopology.from_matrix([[0, 1], [1, 0, 0]])

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            LinkTopology(kind="mesh")
        with pytest.raises(ConfigurationError):
            LinkTopology(kind="clustered", clusters=1)
        with pytest.raises(ConfigurationError):
            LinkTopology(kind="star", extra=-1)

    def test_presets_are_registered_and_n_independent(self):
        assert set(TOPOLOGIES) == {"uniform", "clustered", "star", "ring"}
        assert TOPOLOGIES["uniform"].is_trivial
        for name in ("clustered", "star", "ring"):
            assert not TOPOLOGIES[name].is_trivial
            TOPOLOGIES[name].check_n(8)
            TOPOLOGIES[name].check_n(512)


class TestConditionsIntegration:
    def test_trivial_topology_keeps_perfect_normalization(self):
        conditions = NetworkConditions(topology=LinkTopology.uniform())
        assert conditions.is_perfect
        result = run_instance(
            build_quadratic_ba(9, 4, [1] * 9, seed=1), 4, seed=1,
            conditions=conditions)
        assert result.network_stats is None  # lock-step fast path

    def test_nontrivial_topology_requires_delta_headroom(self):
        with pytest.raises(ConfigurationError):
            NetworkConditions(topology=TOPOLOGIES["clustered"])

    def test_describe_mentions_topology(self):
        conditions = NetworkConditions(
            delta=4, latency=("uniform", 1, 4),
            topology=TOPOLOGIES["clustered"])
        assert "topology=clustered(4,+2)" in conditions.describe()

    def test_matrix_topology_validated_against_network_size(self):
        conditions = NetworkConditions(
            delta=4, topology=LinkTopology.from_matrix(
                [[0] * 4 for _ in range(4)][:3] + [[0, 0, 0, 9]]))
        with pytest.raises(ConfigurationError):
            run_instance(build_quadratic_ba(9, 4, [1] * 9, seed=1), 4,
                         seed=1, conditions=conditions)

    def test_trusted_send_round(self):
        assert NetworkConditions.perfect().trusted_send_round == 0
        assert NetworkConditions.uniform(delta=3).trusted_send_round == 0
        assert NetworkConditions(
            delta=3, gst=12, latency=("uniform", 1, 3),
            drop_rate=0.1).trusted_send_round == 4
        assert NetworkConditions(
            delta=2, latency=("uniform", 1, 2),
            partitions=(Partition(start=2, end=10, split=0.5),),
        ).trusted_send_round == 5
        # The later of GST and the last heal wins.
        assert NetworkConditions(
            delta=2, gst=16, latency=("uniform", 1, 2), drop_rate=0.1,
            partitions=(Partition(start=2, end=10, split=0.5),),
        ).trusted_send_round == 8

    def test_topology_shapes_latency_deterministically(self):
        """Same seed, same jitter stream: the clustered run's mean copy
        latency strictly dominates the uniform run's, and both replay
        byte-identically."""
        def run(topology):
            conditions = NetworkConditions(
                delta=4, latency=("uniform", 1, 2), topology=topology)
            return run_instance(
                build_quadratic_ba(12, 5, [i % 2 for i in range(12)],
                                   seed=9),
                5, seed=9, conditions=conditions)

        uniform = run(None)
        clustered = run(TOPOLOGIES["clustered"])
        replay = run(TOPOLOGIES["clustered"])
        assert clustered.consistent() and clustered.agreement_valid()
        assert (clustered.network_stats.mean_delivery_latency
                > uniform.network_stats.mean_delivery_latency)
        assert (clustered.network_stats.mean_delivery_latency
                == replay.network_stats.mean_delivery_latency)
        assert clustered.outputs == replay.outputs
        # Surcharges never add or remove copies.
        assert (clustered.network_stats.delivered_copies
                == uniform.network_stats.delivered_copies)


class TestScenarioBinding:
    def test_topology_grid_axis_resolves_and_labels_rows(self):
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            grid={"topology": ("uniform", "clustered")},
            fixed={"n": 9, "f": 2, "network": "lan"},
            inputs="ones", seeds=(0,))
        cells = spec.cells()
        assert [dict(cell.bindings)["topology"] for cell in cells] \
            == ["uniform", "clustered"]
        assert cells[0].network.topology is None or \
            cells[0].network.topology.is_trivial
        assert cells[1].network.topology.kind == "clustered"

    def test_inline_link_topology_value_binds(self):
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            fixed={"n": 9, "f": 2, "network": "wan",
                   "topology": LinkTopology.star(hub=1, extra=3)},
            inputs="ones", seeds=(0,))
        (cell,) = spec.cells()
        assert cell.network.topology.hub == 1
        assert dict(cell.bindings)["topology"] == "star(hub=1,+3)"

    def test_uniform_binding_strips_baked_in_topology(self):
        """One inline conditions object can back a whole topology axis:
        the 'uniform' point must override (strip) the baked-in topology,
        not silently keep it while the row says uniform."""
        baked = NetworkConditions(
            delta=4, latency=("uniform", 1, 4),
            topology=LinkTopology.star(hub=0, extra=2))
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            grid={"topology": ("uniform", "clustered")},
            fixed={"n": 9, "f": 2, "network": baked},
            inputs="ones", seeds=(0,))
        uniform_cell, clustered_cell = spec.cells()
        assert uniform_cell.network.topology is None
        assert clustered_cell.network.topology.kind == "clustered"

    def test_forced_topology_spans_perfect_cells(self):
        """A topology forced across a grid that includes a perfect cell
        leaves that cell lock-step (surcharges clamp away at delta=1)
        instead of aborting the sweep."""
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            grid={"network": ("perfect", "lan")},
            fixed={"n": 9, "f": 2, "topology": "clustered"},
            inputs="ones", seeds=(0,))
        perfect_cell, lan_cell = spec.cells()
        assert perfect_cell.network is None  # lock-step fast path
        assert lan_cell.network.topology.kind == "clustered"
        assert dict(perfect_cell.bindings)["topology"] == "clustered"

    def test_nontrivial_topology_without_network_is_rejected(self):
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            fixed={"n": 9, "f": 2, "topology": "clustered"},
            inputs="ones", seeds=(0,))
        with pytest.raises(ConfigurationError):
            spec.cells()

    def test_unknown_topology_name_is_rejected(self):
        spec = ScenarioSpec(
            name="quadratic", protocol="quadratic",
            fixed={"n": 9, "f": 2, "network": "lan", "topology": "mesh"},
            inputs="ones", seeds=(0,))
        with pytest.raises(ConfigurationError):
            spec.cells()

    def test_topology_grid_sweep_runs_and_orders_latency(self):
        result = run_sweep(
            SweepSpec(
                name="mini-topology",
                scenarios=(
                    ScenarioSpec(
                        name="quadratic", protocol="quadratic",
                        grid={"topology": ("uniform", "clustered")},
                        fixed={"n": 12, "f": 2, "network": "wan"},
                        inputs="mixed", seeds=range(2)),
                ),
            ))
        uniform_row, clustered_row = [cell.row() for cell in result.cells]
        assert uniform_row["violation_rate"] == 0.0
        assert clustered_row["violation_rate"] == 0.0
        assert (clustered_row["mean_delivery_latency"]
                > uniform_row["mean_delivery_latency"])
