"""Tests for the simulation engine round loop and adversary API."""

from typing import List, Optional

import pytest

from repro.errors import CapabilityError, SimulationError
from repro.sim.adversary import Adversary
from repro.sim.engine import Simulation
from repro.sim.node import Node, RoundContext
from repro.types import AdversaryModel


class EchoNode(Node):
    """Multicasts its id each round and records everything it hears."""

    def __init__(self, node_id, n, rounds=3):
        super().__init__(node_id, n)
        self.rounds = rounds
        self.heard: List = []

    def on_round(self, ctx: RoundContext) -> None:
        self.heard.extend((d.sender, d.payload) for d in ctx.inbox)
        ctx.multicast(("echo", self.node_id, ctx.round))
        if ctx.round >= self.rounds - 1:
            self.decide(0, ctx.round)
            self.halted = True

    def output(self):
        return 0 if self.halted else None


class RecordingAdversary(Adversary):
    def __init__(self):
        super().__init__()
        self.staged_per_round = {}
        self.delivered_per_round = {}

    def observe_deliveries(self, round_index, inboxes):
        self.delivered_per_round[round_index] = {
            node: len(inbox) for node, inbox in inboxes.items()}

    def react(self, round_index, staged):
        self.staged_per_round[round_index] = len(staged)


class CorruptingAdversary(Adversary):
    def __init__(self, target, at_round):
        super().__init__()
        self.target = target
        self.at_round = at_round
        self.grant = None

    def react(self, round_index, staged):
        if round_index == self.at_round and self.grant is None:
            self.grant = self.api.corrupt(self.target)


class TestRoundLoop:
    def test_synchronous_delivery(self):
        """Round-r multicasts arrive at the start of round r+1."""
        nodes = [EchoNode(i, 3) for i in range(3)]
        Simulation(nodes, corruption_budget=1).run()
        # In round 1 each node hears both others' round-0 echoes.
        assert (1, ("echo", 1, 0)) in nodes[0].heard
        assert (2, ("echo", 2, 0)) in nodes[0].heard

    def test_rushing_adversary_sees_staged_messages(self):
        nodes = [EchoNode(i, 3) for i in range(3)]
        adversary = RecordingAdversary()
        Simulation(nodes, 1, adversary=adversary).run()
        assert adversary.staged_per_round[0] == 3

    def test_stops_when_all_halt(self):
        nodes = [EchoNode(i, 2, rounds=2) for i in range(2)]
        result = Simulation(nodes, 1, max_rounds=50).run()
        assert result.rounds_executed == 2

    def test_max_rounds_cap(self):
        nodes = [EchoNode(i, 2, rounds=100) for i in range(2)]
        result = Simulation(nodes, 1, max_rounds=5).run()
        assert result.rounds_executed == 5

    def test_runs_exactly_once(self):
        simulation = Simulation([EchoNode(0, 1, rounds=1)], 0)
        simulation.run()
        with pytest.raises(SimulationError):
            simulation.run()

    def test_metrics_count_honest_multicasts(self):
        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        result = Simulation(nodes, 1).run()
        assert result.metrics.multicast_complexity_messages == 6

    def test_outputs_collected_for_honest_nodes(self):
        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        result = Simulation(nodes, 1).run()
        assert result.outputs == {0: 0, 1: 0, 2: 0}
        assert result.all_decided()


class TestCorruptionSemantics:
    def test_corrupt_node_stops_running(self):
        nodes = [EchoNode(i, 3, rounds=5) for i in range(3)]
        adversary = CorruptingAdversary(target=1, at_round=1)
        result = Simulation(nodes, 1, adversary=adversary, max_rounds=5).run()
        assert 1 in result.corrupt_set
        # Node 1's round-1 message was already staged (sent before the
        # reaction) but it sends nothing in rounds 2+.
        later = [h for h in nodes[0].heard if h[0] == 1 and h[1][2] >= 2]
        assert later == []

    def test_messages_sent_before_corruption_still_deliver(self):
        """No after-the-fact removal under the plain adaptive model."""
        nodes = [EchoNode(i, 3, rounds=5) for i in range(3)]
        adversary = CorruptingAdversary(target=1, at_round=1)
        Simulation(nodes, 1, adversary=adversary, max_rounds=5).run()
        assert (1, ("echo", 1, 1)) in nodes[0].heard

    def test_grant_reveals_state_and_node(self):
        nodes = [EchoNode(i, 2, rounds=4) for i in range(2)]
        adversary = CorruptingAdversary(target=0, at_round=0)
        Simulation(nodes, 1, adversary=adversary, max_rounds=4).run()
        assert adversary.grant.node is nodes[0]
        assert "heard" in adversary.grant.revealed_state

    def test_corrupt_outputs_excluded(self):
        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        adversary = CorruptingAdversary(target=2, at_round=0)
        result = Simulation(nodes, 1, adversary=adversary).run()
        assert 2 not in result.outputs
        assert set(result.outputs) == {0, 1}

    def test_double_corruption_rejected(self):
        class DoubleCorruptor(Adversary):
            def react(self, round_index, staged):
                if round_index == 0:
                    self.api.corrupt(1)
                    with pytest.raises(SimulationError):
                        self.api.corrupt(1)

        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        Simulation(nodes, 2, adversary=DoubleCorruptor()).run()


class TestCapabilityEnforcement:
    def test_removal_needs_strong_adaptivity(self):
        class Remover(Adversary):
            def react(self, round_index, staged):
                if staged:
                    self.api.corrupt(staged[0].sender)
                    self.api.remove(staged[0], recipient=None)

        nodes = [EchoNode(i, 3, rounds=3) for i in range(3)]
        with pytest.raises(CapabilityError):
            Simulation(nodes, 2, model=AdversaryModel.ADAPTIVE,
                       adversary=Remover()).run()

    def test_removal_works_when_strongly_adaptive(self):
        class Remover(Adversary):
            def react(self, round_index, staged):
                if round_index == 0:
                    target = staged[0]
                    self.api.corrupt(target.sender)
                    self.api.remove(target)

        nodes = [EchoNode(i, 3, rounds=3) for i in range(3)]
        Simulation(nodes, 2, model=AdversaryModel.STRONGLY_ADAPTIVE,
                   adversary=Remover()).run()
        removed_sender = 0  # first staged envelope is node 0's
        echoes_from_0 = [h for h in nodes[1].heard
                         if h[0] == removed_sender and h[1][2] == 0]
        assert echoes_from_0 == []

    def test_cannot_remove_honest_message(self):
        """Even a strongly adaptive adversary must corrupt the sender
        before erasing its message."""
        class BadRemover(Adversary):
            def react(self, round_index, staged):
                if staged:
                    self.api.remove(staged[0])

        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        with pytest.raises(CapabilityError):
            Simulation(nodes, 2, model=AdversaryModel.STRONGLY_ADAPTIVE,
                       adversary=BadRemover()).run()

    def test_cannot_inject_from_honest_node(self):
        class BadInjector(Adversary):
            def react(self, round_index, staged):
                self.api.inject(1, None, "forged")

        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        with pytest.raises(CapabilityError):
            Simulation(nodes, 2, adversary=BadInjector()).run()

    def test_injection_from_corrupt_node_delivers(self):
        class Injector(Adversary):
            def react(self, round_index, staged):
                if round_index == 0:
                    self.api.corrupt(2)
                if self.api.is_corrupt(2):
                    self.api.inject(2, None, ("forged", round_index))

        nodes = [EchoNode(i, 3, rounds=3) for i in range(3)]
        Simulation(nodes, 1, adversary=Injector()).run()
        assert (2, ("forged", 0)) in nodes[0].heard

    def test_static_adversary_cannot_corrupt_later(self):
        class LateCorruptor(Adversary):
            def react(self, round_index, staged):
                if round_index == 1:
                    self.api.corrupt(0)

        nodes = [EchoNode(i, 3, rounds=3) for i in range(3)]
        with pytest.raises(CapabilityError):
            Simulation(nodes, 2, model=AdversaryModel.STATIC,
                       adversary=LateCorruptor()).run()

    def test_static_adversary_corrupts_at_setup(self):
        class SetupCorruptor(Adversary):
            def on_setup(self):
                self.api.corrupt(0)

            def react(self, round_index, staged):
                return None

        nodes = [EchoNode(i, 3, rounds=2) for i in range(3)]
        result = Simulation(nodes, 2, model=AdversaryModel.STATIC,
                            adversary=SetupCorruptor()).run()
        assert result.corrupt_set == {0}
