"""Adaptive-family conformance (the bar of
``test_event_engine_differential.py`` and the leader-family suite):
event-scheduler and lock-step executions of ``adaptive-ba`` are
byte-identical — outputs, decided rounds, transcripts, metrics, every
``NetworkStats`` counter, and the conditioned network's RNG end state —
across the named condition presets and the supported adversaries.
"""

import dataclasses

import pytest

from repro.adversaries import ActualFaultsAdversary, CrashAdversary
from repro.harness.runner import run_instance
from repro.protocols import build_adaptive_ba
from repro.sim.conditions import NETWORKS
from repro.sim.engine import SCHEDULER_EVENT, SCHEDULER_LOCKSTEP, Simulation
from tests.engines import both_engines


def _snapshot(result):
    """Everything a conditioned execution observably produced."""
    return {
        "outputs": result.outputs,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "rounds_saved": result.rounds_saved,
        "transcript": [
            (e.envelope_id, e.sender, e.recipient, repr(e.payload),
             e.round_sent, e.honest_sender)
            for e in result.transcript],
        "metrics": (result.metrics.honest_multicast_count,
                    result.metrics.honest_multicast_bits,
                    result.metrics.honest_unicast_count,
                    result.metrics.honest_unicast_bits,
                    result.metrics.corrupt_multicast_count,
                    result.metrics.corrupt_unicast_count,
                    result.metrics.max_message_bits,
                    dict(result.metrics.per_round_honest_multicasts),
                    result.metrics.per_round_multicast_bits()),
        "network_stats": dataclasses.asdict(result.network_stats),
    }


def _inputs(n):
    return [i % 2 for i in range(n)]


ADVERSARIES = {
    "none": lambda: None,
    "crash": lambda: CrashAdversary(),
    "actual-faults": lambda: ActualFaultsAdversary(actual=2),
}

CONDITIONS = ("lan", "wan", "lossy", "split-heal")

GRID = [(network, adversary)
        for network in CONDITIONS
        for adversary in ("none", "actual-faults")] + [
    ("wan", "crash"),
    ("lossy", "crash"),
]


def _execute(network, adversary, scheduler, **kwargs):
    conditions = NETWORKS[network]
    instance = build_adaptive_ba(10, 3, _inputs(10), seed=7,
                                 conditions=conditions)
    return run_instance(instance, 3, ADVERSARIES[adversary](),
                        seed=7, conditions=conditions, scheduler=scheduler,
                        **kwargs)


class TestBothEnginesIdentity:
    @pytest.mark.parametrize("network,adversary", GRID,
                             ids=[f"{n}-{a}" for n, a in GRID])
    def test_event_engine_matches_lockstep(self, network, adversary):
        event = _execute(network, adversary, SCHEDULER_EVENT)
        lockstep = _execute(network, adversary, SCHEDULER_LOCKSTEP)
        assert _snapshot(event) == _snapshot(lockstep)
        # Real conditioned executions, not fast-path ones — and the
        # guarantees hold while the engines agree.
        assert event.network_stats is not None
        assert event.consistent() and event.agreement_valid()

    @both_engines
    def test_decides_on_either_engine(self, engine):
        result = _execute("wan", "none", engine)
        assert result.all_decided() and result.consistent()

    def test_rng_streams_end_in_the_same_state(self):
        """Draw-order identity, not just draw-outcome identity: the
        conditioned network's RNG ends an adaptive execution in the
        same state under both loops."""
        conditions = NETWORKS["lossy"]

        def final_rng_state(scheduler):
            instance = build_adaptive_ba(10, 3, _inputs(10), seed=13,
                                         conditions=conditions)
            simulation = Simulation(
                nodes=instance.nodes, corruption_budget=3, seed=13,
                max_rounds=instance.max_rounds, inputs=instance.inputs,
                signing_capabilities=instance.signing_capabilities,
                mining_capabilities=instance.mining_capabilities,
                conditions=conditions, scheduler=scheduler)
            simulation.run()
            return simulation.network._rng.getstate()

        assert final_rng_state(SCHEDULER_EVENT) == \
            final_rng_state(SCHEDULER_LOCKSTEP)
