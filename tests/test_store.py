"""Tests for the persistent experiment store (harness/store.py):
fingerprint scheme and invalidation, record round-trips, warm replay
byte-identity, interrupted-sweep resume, and shard-union equality."""

import dataclasses
import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.scenarios import (
    EXECUTORS,
    CachedCellPayload,
    ScenarioSpec,
    SweepSpec,
    run_sweep,
)
from repro.harness.store import (
    STORE_SALT,
    ExperimentStore,
    canonical_cell_key,
    cell_fingerprint,
    parse_shard,
)


def tiny_sweep(name="tiny", sizes=(24, 32), seeds=(0, 1)):
    return SweepSpec(
        name=name,
        description="store-test sweep",
        scenarios=(
            ScenarioSpec(
                name="subq", protocol="subquadratic",
                grid={"n": tuple(sizes)},
                fixed={"f_fraction": 0.25, "lam": 10},
                inputs="mixed", adversary="crash", seeds=tuple(seeds)),
        ),
    )


def spec_cell(**overrides):
    """One bound cell from a small spec, with overridable bindings."""
    fixed = {"n": 24, "f_fraction": 0.25, "lam": 10}
    fixed.update(overrides.pop("fixed", {}))
    spec = ScenarioSpec(
        name=overrides.pop("name", "cell"),
        protocol=overrides.pop("protocol", "subquadratic"),
        fixed=fixed,
        inputs=overrides.pop("inputs", "mixed"),
        adversary=overrides.pop("adversary", "crash"),
        seeds=overrides.pop("seeds", (0, 1)),
        **overrides)
    return spec.cells()[0]


class TestFingerprint:
    def test_stable_across_expansions(self):
        assert cell_fingerprint(spec_cell()) == cell_fingerprint(spec_cell())

    def test_scenario_name_is_display_only(self):
        # Renaming a scenario relabels rows but does not change what
        # executes, so it must not invalidate the cache.
        assert (cell_fingerprint(spec_cell(name="a"))
                == cell_fingerprint(spec_cell(name="b")))

    def test_every_result_affecting_axis_misses(self):
        base = cell_fingerprint(spec_cell())
        changed = [
            spec_cell(fixed={"n": 32}),                      # binding
            spec_cell(fixed={"lam": 12}),                    # params
            spec_cell(seeds=(0, 2)),                         # seeds
            spec_cell(seeds=(0,)),                           # seed count
            spec_cell(adversary="none"),                     # adversary
            spec_cell(inputs="ones"),                        # inputs
            spec_cell(fixed={"network": "lan"}),             # conditions
            spec_cell(fixed={"network": "wan",
                             "topology": "clustered"}),      # topology
            ScenarioSpec(                                    # protocol
                name="cell", protocol="quadratic",
                fixed={"n": 24, "f": 5},
                inputs="mixed", adversary="crash",
                seeds=(0, 1)).cells()[0],
        ]
        fingerprints = [cell_fingerprint(cell) for cell in changed]
        assert base not in fingerprints
        assert len(set(fingerprints)) == len(fingerprints)

    def test_salt_and_share_lottery_participate(self):
        cell = spec_cell()
        assert (cell_fingerprint(cell, salt="other")
                != cell_fingerprint(cell))
        assert (cell_fingerprint(cell, share_lottery=False)
                != cell_fingerprint(cell, share_lottery=True))

    def test_key_is_canonical_json(self):
        key = canonical_cell_key(spec_cell(fixed={"network": "lossy",
                                                  "topology": None}))
        # Round-trips through JSON without loss (what the digest hashes).
        assert json.loads(json.dumps(key, sort_keys=True)) == key
        # The resolved conditions are structural, not a display label:
        # every field of the dataclass is covered.
        network = key["network"]
        assert network["__dataclass__"].endswith("NetworkConditions")
        assert set(network["fields"]) == {
            f.name for f in dataclasses.fields(
                __import__("repro.sim.conditions",
                           fromlist=["NetworkConditions"]).NetworkConditions)}

    def test_non_module_callables_are_rejected(self):
        # Two closures from one factory share a __qualname__, so
        # fingerprinting one would let different cells collide; the
        # store must refuse instead of silently replaying wrong results.
        def factory(k):
            def inner(n):
                return k
            return inner

        cell = spec_cell(fixed={"weird_binding": factory(1)})
        with pytest.raises(ConfigurationError,
                           match="non-module-level callable"):
            cell_fingerprint(cell)
        with pytest.raises(ConfigurationError,
                           match="non-module-level callable"):
            cell_fingerprint(spec_cell(fixed={"weird_binding":
                                              lambda n: n}))

    def test_callable_bindings_canonicalize_by_qualname(self):
        from repro.harness.scenarios import f_half_minus_one
        cell = ScenarioSpec(
            name="cell", protocol="broadcast-from-ba",
            fixed={"n": 8, "f": f_half_minus_one, "sender_input": 1,
                   "ba_builder": "quadratic"},
            seeds=(0,)).cells()[0]
        key = canonical_cell_key(cell)
        assert key["kwargs"]["ba_builder"]["__callable__"].endswith(
            "build_quadratic_ba")
        assert key["f"] == 3  # callable f resolved before fingerprinting


class TestStoreRoundTrip:
    def test_record_round_trip_preserves_metric_types(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store).cells[0]
        record = store.load_record(result.fingerprint)
        assert record["metrics"] == result.metrics
        for key, value in result.metrics.items():
            assert type(record["metrics"][key]) is type(value), key
        assert record["row"] == result.row()
        assert record["key"]["salt"] == STORE_SALT

    @pytest.mark.parametrize("old_salt", ["ba-repro-store-v2",
                                          "ba-repro-store-v3"])
    def test_pre_bump_salt_records_read_as_misses(self, tmp_path,
                                                  old_salt):
        """Records written before a salt bump (v2 → v3: the leader
        family added `mean_views_executed` / `mean_view_changes`;
        v3 → v4: the adaptive family added `mean_words` /
        `mean_actual_faults` / `mean_escalations`) must read as plain
        cache misses under the current salt — recomputed on the next
        run, never replayed into the new row shape and never a
        corruption error."""
        assert STORE_SALT == "ba-repro-store-v4"
        pre_bump = ExperimentStore(tmp_path, salt=old_salt)
        run_sweep(tiny_sweep(sizes=(24,), seeds=(0,)), store=pre_bump)
        cell = tiny_sweep(sizes=(24,), seeds=(0,)).scenarios[0].cells()[0]
        # The pre-bump store sees its own record...
        assert pre_bump.load_record(pre_bump.fingerprint(cell)) is not None
        # ...but the same store directory opened under the current salt
        # addresses the same cell at a different fingerprint: a miss.
        current = ExperimentStore(tmp_path)
        assert current.fingerprint(cell) != pre_bump.fingerprint(cell)
        assert current.load_record(current.fingerprint(cell)) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store).cells[0]
        path = store.backend._cell_path(result.fingerprint)
        record = json.loads(path.read_text())
        record["schema"] = 999
        path.write_text(json.dumps(record))
        assert store.load_record(result.fingerprint) is None

    def test_corrupted_records_are_misses_and_resume_recomputes(
            self, tmp_path):
        # A truncated/garbage record file (disk glitch, partial copy of
        # a shared store) must read as a miss — the next resume
        # re-records it — never crash the run.
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        path = store.backend._cell_path(result.cells[0].fingerprint)
        path.write_text('{"schema": 1, "metr')  # truncated mid-write
        assert store.load_record(result.cells[0].fingerprint) is None
        rerun = run_sweep(tiny_sweep(), store=store)
        assert rerun.store_stats["computed"] == 1
        assert rerun.store_stats["replayed"] == 1
        assert rerun.rows() == result.rows()
        # Same treatment for a wrong-shape record and a damaged sweep
        # record (the book simply omits the sweep until re-recorded).
        path.write_text('{"schema": 1, "metrics": "oops"}')
        assert store.load_record(result.cells[0].fingerprint) is None
        store.backend._sweep_path("tiny").write_text("garbage")
        assert store.load_sweep("tiny") is None

    def test_sweep_record_lists_cells_in_order(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        record = store.load_sweep("tiny")
        assert record["complete"] is True
        assert record["cells"] == [cell.fingerprint
                                   for cell in result.cells]
        assert store.sweep_rows("tiny") == result.rows()


class TestWarmReplay:
    def test_warm_run_executes_zero_cells_byte_identically(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        sweep = tiny_sweep()
        plain = run_sweep(sweep)
        cold = run_sweep(sweep, store=store)
        warm = run_sweep(sweep, store=store)
        assert cold.store_stats["computed"] == len(cold.cells)
        assert warm.store_stats["computed"] == 0
        assert warm.store_stats["replayed"] == len(warm.cells)
        # Differential: stored replay ≡ fresh compute ≡ storeless run.
        assert plain.rows() == cold.rows() == warm.rows()
        assert (plain.to_table().render() == cold.to_table().render()
                == warm.to_table().render())
        # Artifact files are byte-identical cold vs warm.
        for suffix, writer in (("csv", "to_csv"), ("json", "to_json")):
            cold_path = getattr(cold, writer)(tmp_path / f"cold.{suffix}")
            warm_path = getattr(warm, writer)(tmp_path / f"warm.{suffix}")
            assert cold_path.read_bytes() == warm_path.read_bytes()

    def test_replayed_cells_refuse_payload_access(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        warm = run_sweep(tiny_sweep(), store=store)
        cell = warm.cells[0]
        assert cell.cached
        assert isinstance(cell.payload, CachedCellPayload)
        # Same refusal contract as metrics-only transcripts: stored
        # records keep metrics only, so TrialStats/transcript access
        # must fail loudly instead of fabricating data.
        with pytest.raises(TypeError, match="replayed from the "
                                            "experiment store"):
            cell.stats

    def test_store_runs_report_no_lottery_counters(self, tmp_path):
        store = ExperimentStore(tmp_path)
        cold = run_sweep(tiny_sweep(), store=store)
        warm = run_sweep(tiny_sweep(), store=store)
        # Cold draws coins, warm draws none — artifacts must not differ,
        # so store-backed results omit the counters entirely.
        assert cold.lottery is None and warm.lottery is None

    def test_unshared_lottery_keys_separate_but_equal_cells(self, tmp_path):
        store = ExperimentStore(tmp_path)
        shared = run_sweep(tiny_sweep(), store=store, share_lottery=True)
        unshared = run_sweep(tiny_sweep(), store=store,
                             share_lottery=False)
        # Conservative fingerprinting: --no-shared-lottery recomputes...
        assert unshared.store_stats["computed"] == len(unshared.cells)
        # ...and the differential pin shows the caution is not hiding a
        # divergence: both populations are row-identical.
        assert shared.rows() == unshared.rows()


class TestResumeAndGrowth:
    def test_interrupted_sweep_resumes_with_missing_cells_only(
            self, tmp_path, monkeypatch):
        store = ExperimentStore(tmp_path)
        sweep = tiny_sweep()
        real = EXECUTORS["trials"]
        calls = []

        def explode_on_second(cell, workers, coin_cache, pool=None):
            calls.append(cell)
            if len(calls) > 1:
                raise RuntimeError("simulated crash mid-sweep")
            return real.run(cell, workers, coin_cache, pool=pool)

        monkeypatch.setitem(
            EXECUTORS, "trials",
            dataclasses.replace(real, run=explode_on_second))
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_sweep(sweep, store=store)
        monkeypatch.setitem(EXECUTORS, "trials", real)

        # The completed cell was durably recorded before the crash.
        resumed = run_sweep(sweep, store=store)
        assert resumed.store_stats == {
            "replayed": 1, "computed": 1, "skipped": 0,
            "salt": STORE_SALT, "shard": None}
        assert resumed.rows() == run_sweep(sweep).rows()

    def test_grid_growth_costs_only_the_new_cells(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(sizes=(24,)), store=store)
        grown = run_sweep(tiny_sweep(sizes=(24, 32)), store=store)
        assert grown.store_stats["replayed"] == 1
        assert grown.store_stats["computed"] == 1
        assert grown.rows() == run_sweep(tiny_sweep(sizes=(24, 32))).rows()

    def test_salt_bump_invalidates_everything(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        bumped = ExperimentStore(tmp_path, salt="store-v2-bumped")
        rerun = run_sweep(tiny_sweep(), store=bumped)
        assert rerun.store_stats["computed"] == len(rerun.cells)
        assert rerun.store_stats["replayed"] == 0


class TestShards:
    def test_parse_shard(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/4") == (2, 4)
        for bad in ("0/2", "3/2", "2", "a/b", "1/0", "-1/2"):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)

    def test_run_sweep_validates_shard(self):
        with pytest.raises(ConfigurationError, match="shard"):
            run_sweep(tiny_sweep(), shard=(3, 2))

    def test_shards_partition_the_cells(self, tmp_path):
        sweep = tiny_sweep()
        full = run_sweep(sweep)
        one = run_sweep(sweep, shard=(1, 2))
        two = run_sweep(sweep, shard=(2, 2))
        labels = [cell.cell.label() for cell in full.cells]
        assert [c.cell.label() for c in one.cells] == labels[0::2]
        assert [c.cell.label() for c in two.cells] == labels[1::2]
        assert one.store_stats["skipped"] == 1
        assert one.store_stats["shard"] == "1/2"

    def test_shard_union_equals_unsharded(self, tmp_path):
        store = ExperimentStore(tmp_path)
        sweep = tiny_sweep()
        first = run_sweep(sweep, store=store, shard=(1, 2))
        assert first.store_stats["skipped"] == 1
        record = store.load_sweep("tiny")
        assert record["complete"] is False
        # The record lists the full expansion even though this shard
        # only computed half — concurrent shards write equivalent
        # records, and the book sections the whole sweep once the cell
        # records exist.
        assert len(record["cells"]) == 2
        second = run_sweep(sweep, store=store, shard=(2, 2))
        # The second shard replays shard 1's cells from the shared store
        # and computes its own: the union is the whole sweep.
        assert second.store_stats == {
            "replayed": 1, "computed": 1, "skipped": 0,
            "salt": STORE_SALT, "shard": "2/2"}
        assert second.rows() == run_sweep(sweep).rows()
        assert store.load_sweep("tiny")["complete"] is True


class TestCanonExoticBindings:
    """Fingerprints over binding types whose canonical form needs care:
    heterogeneous sets (satellite regression — sorting canonical forms
    directly raised ``TypeError: '<' not supported``), sets of frozen
    dataclasses (canonical forms are dicts, also unorderable), bytes,
    and nested frozen dataclasses."""

    def test_mixed_type_set_fingerprints(self):
        # Regression: frozenset({1, "a"}) crashed _canon with a raw
        # TypeError before sets were ordered by canonical JSON encoding.
        a = spec_cell(fixed={"tags": frozenset([1, "a"])})
        b = spec_cell(fixed={"tags": frozenset(["a", 1])})
        assert cell_fingerprint(a) == cell_fingerprint(b)
        c = spec_cell(fixed={"tags": frozenset(["a", 2])})
        assert cell_fingerprint(a) != cell_fingerprint(c)

    def test_set_of_frozen_dataclasses_fingerprints(self):
        @dataclasses.dataclass(frozen=True)
        class Knob:
            name: str
            level: int

        knobs = frozenset({Knob("alpha", 1), Knob("beta", 2)})
        same = frozenset({Knob("beta", 2), Knob("alpha", 1)})
        assert (cell_fingerprint(spec_cell(fixed={"knobs": knobs}))
                == cell_fingerprint(spec_cell(fixed={"knobs": same})))
        other = frozenset({Knob("beta", 3), Knob("alpha", 1)})
        assert (cell_fingerprint(spec_cell(fixed={"knobs": knobs}))
                != cell_fingerprint(spec_cell(fixed={"knobs": other})))

    def test_unorderable_set_raises_configuration_error(self, monkeypatch):
        # Everything _canon emits today JSON-encodes, so force the
        # pathological case to pin the error contract: anything the
        # ordering cannot handle surfaces as ConfigurationError, never a
        # raw TypeError.
        from repro.harness import store as store_module

        real_dumps = json.dumps

        def broken_dumps(value, **kwargs):
            if kwargs.get("separators") == (",", ":"):
                raise TypeError("unorderable for the test")
            return real_dumps(value, **kwargs)

        monkeypatch.setattr(store_module.json, "dumps", broken_dumps)
        with pytest.raises(ConfigurationError, match="cannot order"):
            store_module._canon(frozenset([1, "a"]))

    def test_bytes_round_trip(self):
        a = spec_cell(fixed={"beacon": b"\x00\xffseed"})
        b = spec_cell(fixed={"beacon": b"\x00\xffseed"})
        assert cell_fingerprint(a) == cell_fingerprint(b)
        assert (cell_fingerprint(a)
                != cell_fingerprint(spec_cell(fixed={"beacon": b"other"})))
        # The canonical key document itself must survive a JSON
        # round-trip unchanged — that is what the store hashes and what
        # record files embed.
        key = canonical_cell_key(a)
        assert json.loads(json.dumps(key, sort_keys=True)) == key

    def test_nested_frozen_dataclass_round_trip(self):
        @dataclasses.dataclass(frozen=True)
        class Inner:
            weights: tuple
            blob: bytes

        @dataclasses.dataclass(frozen=True)
        class Outer:
            label: str
            inner: Inner
            members: frozenset

        value = Outer("outer", Inner((1, 2.5), b"\x01\x02"),
                      frozenset({"x", 3}))
        same = Outer("outer", Inner((1, 2.5), b"\x01\x02"),
                     frozenset({3, "x"}))
        assert (cell_fingerprint(spec_cell(fixed={"cfg": value}))
                == cell_fingerprint(spec_cell(fixed={"cfg": same})))
        key = canonical_cell_key(spec_cell(fixed={"cfg": value}))
        assert json.loads(json.dumps(key, sort_keys=True)) == key


class TestSweepRowsAligned:
    def test_short_rows_list_pads_instead_of_truncating(self, tmp_path):
        # Satellite regression: a record whose rows list is shorter than
        # its cells list (hand-edited, or written by an older tool) used
        # to zip-truncate — tail cells vanished from the book even when
        # their cell records could fill the holes.
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        record = store.load_sweep("tiny")
        record["rows"] = record["rows"][:1]
        store.backend.save_sweep("tiny", record)
        aligned = store.sweep_rows_aligned("tiny")
        assert len(aligned) == len(record["cells"])
        # The tail cell falls back to its cell record's row.
        assert aligned == result.rows()

    def test_missing_rows_fall_back_to_cell_records(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        record = store.load_sweep("tiny")
        record["rows"] = []
        store.backend.save_sweep("tiny", record)
        assert store.sweep_rows_aligned("tiny") == result.rows()

    def test_unfillable_hole_stays_none(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        record = store.load_sweep("tiny")
        record["rows"] = record["rows"][:1]
        record["cells"] = record["cells"][:1] + ["0" * 64]
        store.backend.save_sweep("tiny", record)
        aligned = store.sweep_rows_aligned("tiny")
        assert len(aligned) == 2
        assert aligned[1] is None
        assert store.sweep_rows("tiny") == aligned[:1]
