"""Tests for forward-secure signatures (footnote 5 ephemeral keys)."""

import pytest

from repro.crypto.forward_secure import (
    ForwardSecureKeyPair,
    verify_forward_secure,
)
from repro.errors import SignatureError


@pytest.fixture
def fs_keypair(group, rng):
    return ForwardSecureKeyPair(group, max_epochs=8, rng=rng)


class TestSigningAndVerification:
    def test_roundtrip_every_epoch(self, group, rng, fs_keypair):
        for epoch in range(8):
            signature = fs_keypair.sign(epoch, ("vote", epoch), rng)
            assert verify_forward_secure(
                group, fs_keypair.public_root, 8, ("vote", epoch), signature)

    def test_wrong_message_rejected(self, group, rng, fs_keypair):
        signature = fs_keypair.sign(2, "m", rng)
        assert not verify_forward_secure(
            group, fs_keypair.public_root, 8, "other", signature)

    def test_wrong_root_rejected(self, group, rng, fs_keypair):
        other = ForwardSecureKeyPair(group, max_epochs=8, rng=rng)
        signature = fs_keypair.sign(2, "m", rng)
        assert not verify_forward_secure(
            group, other.public_root, 8, "m", signature)

    def test_epoch_out_of_range_rejected(self, group, rng, fs_keypair):
        with pytest.raises(SignatureError):
            fs_keypair.sign(8, "m", rng)
        with pytest.raises(SignatureError):
            fs_keypair.sign(-1, "m", rng)

    def test_cross_epoch_signature_rejected(self, group, rng, fs_keypair):
        """A signature for epoch 2 must not verify as epoch 3's."""
        import dataclasses
        signature = fs_keypair.sign(2, "m", rng)
        forged = dataclasses.replace(signature, epoch=3)
        assert not verify_forward_secure(
            group, fs_keypair.public_root, 8, "m", forged)

    def test_odd_epoch_count_merkle(self, group, rng):
        keypair = ForwardSecureKeyPair(group, max_epochs=5, rng=rng)
        for epoch in range(5):
            signature = keypair.sign(epoch, "m", rng)
            assert verify_forward_secure(
                group, keypair.public_root, 5, "m", signature)


class TestErasure:
    def test_evolve_erases_past_keys(self, group, rng, fs_keypair):
        fs_keypair.sign(3, "m", rng)
        fs_keypair.evolve(4)
        with pytest.raises(SignatureError):
            fs_keypair.sign(3, "again", rng)

    def test_future_epochs_still_usable(self, group, rng, fs_keypair):
        fs_keypair.evolve(4)
        signature = fs_keypair.sign(5, "m", rng)
        assert verify_forward_secure(
            group, fs_keypair.public_root, 8, "m", signature)

    def test_cannot_evolve_backwards(self, group, rng, fs_keypair):
        fs_keypair.evolve(5)
        with pytest.raises(ValueError):
            fs_keypair.evolve(2)

    def test_revealed_state_excludes_erased_keys(self, group, rng, fs_keypair):
        """What an adversary gets on corruption shrinks as keys evolve —
        the memory-erasure model in action."""
        assert set(fs_keypair.reveal_state()) == set(range(8))
        fs_keypair.evolve(3)
        assert set(fs_keypair.reveal_state()) == set(range(3, 8))

    def test_can_sign_tracks_erasure(self, group, rng, fs_keypair):
        assert fs_keypair.can_sign(1)
        fs_keypair.evolve(2)
        assert not fs_keypair.can_sign(1)
        assert fs_keypair.can_sign(2)

    def test_old_signatures_still_verify_after_erasure(self, group, rng,
                                                       fs_keypair):
        signature = fs_keypair.sign(1, "m", rng)
        fs_keypair.evolve(6)
        assert verify_forward_secure(
            group, fs_keypair.public_root, 8, "m", signature)
