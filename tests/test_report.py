"""Tests for the results-book generator (harness/report.py): book
tables match live sweep tables, snapshot/baseline deltas, presentation
order, and the HTML rendering."""

import json

import pytest

from repro.harness.report import (
    build_snapshot,
    render_book,
    write_book,
)
from repro.harness.scenarios import ScenarioSpec, SweepSpec, run_sweep
from repro.harness.store import ExperimentStore

from tests.test_store import tiny_sweep


class TestBook:
    def test_book_table_matches_live_sweep_table(self, tmp_path):
        store = ExperimentStore(tmp_path)
        live = run_sweep(tiny_sweep(), store=store)
        book, _snapshot = render_book(store)
        # The acceptance bar: the rendered section is the *same* table
        # the live SweepResult renders (shared rows_to_table code).
        assert live.to_table().render() in book
        assert "## sweep `tiny`" in book
        assert "store-test sweep" in book  # the description

    def test_provenance_header(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        book, snapshot = render_book(store)
        assert f"fingerprint salt: `{store.salt}`" in book
        assert "code version:" in book
        assert "sweeps: 1, cells: 2" in book
        assert snapshot["salt"] == store.salt
        assert list(snapshot["sweeps"]) == ["tiny"]

    def test_empty_store_renders_a_note(self, tmp_path):
        book, snapshot = render_book(ExperimentStore(tmp_path))
        assert "empty store" in book
        assert snapshot["sweeps"] == {}

    def test_partial_shard_sections_are_flagged(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store, shard=(1, 2))
        book, _ = render_book(store)
        assert "partial" in book

    def test_presentation_order_is_library_first(self, tmp_path):
        store = ExperimentStore(tmp_path)
        # "aaa-custom" sorts before "smoke" alphabetically, but smoke is
        # a library sweep so the book must section it first.
        custom = SweepSpec(
            name="aaa-custom",
            scenarios=(ScenarioSpec(
                name="subq", protocol="subquadratic",
                fixed={"n": 24, "f_fraction": 0.25, "lam": 10},
                inputs="mixed", seeds=(0,)),))
        from repro.harness.sweep_library import SWEEPS
        run_sweep(custom, store=store)
        run_sweep(SWEEPS["smoke"], store=store)
        _, snapshot = render_book(store)
        assert list(snapshot["sweeps"]) == ["smoke", "aaa-custom"]


class TestDuplicateFingerprints:
    def test_two_scenarios_sharing_a_fingerprint_keep_their_labels(
            self, tmp_path):
        # Scenario names are outside the fingerprint, so two scenarios
        # with identical execution config share one cell record — the
        # book must still render both rows under their own labels, and
        # the section must not report itself partial.
        store = ExperimentStore(tmp_path)

        def scenario(name):
            return ScenarioSpec(
                name=name, protocol="subquadratic",
                fixed={"n": 24, "f_fraction": 0.25, "lam": 10},
                inputs="mixed", adversary="crash", seeds=(0, 1))

        sweep = SweepSpec(name="twins", description="",
                          scenarios=(scenario("a"), scenario("b")))
        live = run_sweep(sweep, store=store)
        # Content-addressing: the second cell replays the first.
        assert live.store_stats == {
            "replayed": 1, "computed": 1, "skipped": 0,
            "salt": store.salt, "shard": None}
        book, snapshot = render_book(store)
        assert snapshot["sweeps"]["twins"]["complete"] is True
        assert live.to_table().render() in book  # both rows, labels a+b
        rows = snapshot["sweeps"]["twins"]["rows"]
        assert [row["scenario"] for row in rows] == ["a", "b"]


class TestDisplayMetadataHealing:
    def test_renamed_scenario_heals_the_stored_rows(self, tmp_path):
        # Scenario names are display-only (outside the fingerprint); a
        # warm run under new labels must refresh the stored rows so the
        # book keeps matching the live tables.
        store = ExperimentStore(tmp_path)

        def sweep_named(scenario):
            return SweepSpec(
                name="tiny", description="renaming test",
                scenarios=(ScenarioSpec(
                    name=scenario, protocol="subquadratic",
                    grid={"n": (24, 32)},
                    fixed={"f_fraction": 0.25, "lam": 10},
                    inputs="mixed", adversary="crash", seeds=(0, 1)),))

        run_sweep(sweep_named("oldname"), store=store)
        warm = run_sweep(sweep_named("newname"), store=store)
        assert warm.store_stats["replayed"] == 2
        book, _ = render_book(store)
        assert warm.to_table().render() in book
        assert "oldname" not in book


class TestSnapshotDeltas:
    def test_grid_growth_shows_added_cells(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        run_sweep(tiny_sweep(sizes=(24,)), store=store)
        baseline = build_snapshot(store)
        run_sweep(tiny_sweep(sizes=(24, 32)), store=store)
        book, _ = render_book(store, baseline=baseline)
        assert "delta vs baseline: 1 added, 0 removed, 0 changed" in book
        assert "WARNING" not in book

    def test_changed_row_without_fingerprint_change_warns(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        baseline = build_snapshot(store)
        # Tamper with one recorded row in place: same fingerprint,
        # different content — exactly the nondeterminism / overdue-salt
        # situation the book must call out.
        assert result.cells  # sweep ran
        path = store.backend._sweep_path("tiny")
        record = json.loads(path.read_text())
        record["rows"][0]["mean_rounds"] = -1.0
        path.write_text(json.dumps(record))
        book, _ = render_book(store, baseline=baseline)
        assert "1 changed" in book
        assert "WARNING" in book

    def test_scenario_rename_does_not_trip_the_changed_warning(
            self, tmp_path):
        # The scenario label is the one row column outside the
        # fingerprint; renaming it replays every cell and relabels the
        # rows, which must read as 0 changed, not as nondeterminism.
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        baseline = build_snapshot(store)
        renamed = SweepSpec(
            name="tiny", description="store-test sweep",
            scenarios=(ScenarioSpec(
                name="renamed", protocol="subquadratic",
                grid={"n": (24, 32)},
                fixed={"f_fraction": 0.25, "lam": 10},
                inputs="mixed", adversary="crash", seeds=(0, 1)),))
        assert run_sweep(renamed, store=store).store_stats["computed"] == 0
        book, _ = render_book(store, baseline=baseline)
        assert "0 added, 0 removed, 0 changed" in book
        assert "WARNING" not in book

    def test_malformed_baselines_raise_value_error(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        run_sweep(tiny_sweep(), store=store)
        for payload in ('[1, 2, 3]',
                        '{"sweeps": ["x"], "salt": "y"}',
                        '{"sweeps": {"tiny": "oops"}}'):
            bad = tmp_path / "bad.json"
            bad.write_text(payload)
            with pytest.raises(ValueError, match="not a book snapshot"):
                write_book(store, baseline_path=bad)

    def test_display_only_relabeling_is_not_a_changed_cell(self, tmp_path):
        # f_fraction / network / topology labels are display-side too:
        # an equivalent relabeling (same resolved cell) replays from the
        # store and must not read as a changed result.
        store = ExperimentStore(tmp_path)
        run_sweep(SweepSpec(
            name="tiny", description="",
            scenarios=(ScenarioSpec(
                name="subq", protocol="subquadratic",
                fixed={"n": 24, "f_fraction": 0.25, "lam": 10},
                inputs="mixed", adversary="crash", seeds=(0, 1)),)),
            store=store)
        baseline = build_snapshot(store)
        relabeled = run_sweep(SweepSpec(
            name="tiny", description="",
            scenarios=(ScenarioSpec(
                name="subq", protocol="subquadratic",
                fixed={"n": 24, "f": 6, "lam": 10},  # same resolved f
                inputs="mixed", adversary="crash", seeds=(0, 1)),)),
            store=store)
        assert relabeled.store_stats["computed"] == 0
        book, _ = render_book(store, baseline=baseline)
        assert "0 added, 0 removed, 0 changed" in book
        assert "WARNING" not in book

    def test_salt_mismatch_is_called_out(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        baseline = dict(build_snapshot(store), salt="old-salt")
        book, _ = render_book(store, baseline=baseline)
        assert "invalidation boundary" in book

    def test_hand_pruned_record_is_not_a_removed_cell(self, tmp_path):
        store = ExperimentStore(tmp_path)
        result = run_sweep(tiny_sweep(), store=store)
        baseline = build_snapshot(store)
        # Prune one cell-record file; the sweep record still lists the
        # cell *and* carries its display row, so the book stays complete
        # and the delta must not count the cell as removed (only future
        # replays recompute it).
        store.backend._cell_path(result.cells[0].fingerprint).unlink()
        book, snapshot = render_book(store, baseline=baseline)
        assert "0 added, 0 removed, 0 changed" in book
        assert snapshot["sweeps"]["tiny"]["complete"] is True
        assert result.to_table().render() in book


class TestSaltStaleness:
    def test_sections_recorded_under_another_salt_are_stamped_stale(
            self, tmp_path):
        # A salt bump without re-running the sweeps must not publish
        # pre-bump tables as if they were current.
        old = ExperimentStore(tmp_path, salt="salt-old")
        run_sweep(tiny_sweep(), store=old)
        bumped = ExperimentStore(tmp_path, salt="salt-new")
        book, snapshot = render_book(bumped)
        assert "STALE" in book
        assert "salt-old" in book and "salt-new" in book
        assert snapshot["sweeps"]["tiny"]["salt"] == "salt-old"

    def test_current_salt_sections_are_not_stale(self, tmp_path):
        store = ExperimentStore(tmp_path)
        run_sweep(tiny_sweep(), store=store)
        book, _ = render_book(store)
        assert "STALE" not in book


class TestWriteBook:
    def test_write_book_and_snapshot(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        live = run_sweep(tiny_sweep(), store=store)
        book_path, snapshot_path = write_book(store)
        assert book_path == store.root / "book.md"
        assert snapshot_path == store.root / "book.json"
        assert live.to_table().render() in book_path.read_text()
        snapshot = json.loads(snapshot_path.read_text())
        assert snapshot["sweeps"]["tiny"]["complete"] is True
        # The snapshot feeds straight back in as a baseline.
        book, _ = render_book(store, baseline=snapshot)
        assert "0 added, 0 removed, 0 changed" in book

    def test_json_out_path_does_not_collide_with_snapshot(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        run_sweep(tiny_sweep(), store=store)
        book_path, snapshot_path = write_book(
            store, out_path=tmp_path / "results.json")
        assert book_path != snapshot_path
        assert snapshot_path.name == "results.snapshot.json"
        assert book_path.read_text().startswith("# Results book")
        json.loads(snapshot_path.read_text())  # a real snapshot

    def test_html_format(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        live = run_sweep(tiny_sweep(), store=store)
        book_path, _ = write_book(store, fmt="html")
        assert book_path.name == "book.html"
        html = book_path.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<h2>" in html and "<pre>" in html
        # The table text survives inside the <pre> block (escaped).
        first_column_line = live.to_table().render().splitlines()[1]
        assert first_column_line in html
