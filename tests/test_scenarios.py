"""Tests for the declarative scenario-matrix layer (harness/scenarios.py):
grid expansion, worker/cache determinism, lottery-cache soundness, and
artifact round-trips."""

import csv
import json

import pytest

from repro.eligibility import DifficultySchedule, FMineEligibility
from repro.eligibility.lottery_cache import SharedLotteryCache, shared_cache
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.harness.scenarios import ScenarioSpec, SweepSpec, run_sweep
from repro.harness.sweep_library import SWEEPS
from repro.protocols import build_subquadratic_ba
from repro.types import SecurityParameters

SMOKE = SWEEPS["smoke"]


def _worker_cache_stats(token):
    """Probe a worker process's view of a shared lottery cache
    (module-level so the pool can pickle it)."""
    return shared_cache(token).stats()

TINY = SweepSpec(
    name="tiny",
    scenarios=(
        ScenarioSpec(
            name="subq", protocol="subquadratic",
            grid={"n": (24, 32)},
            fixed={"f_fraction": 0.25, "lam": 10},
            inputs="mixed", adversary="crash", seeds=range(2)),
    ),
)


class TestGridExpansion:
    def test_cross_product_counts_and_order(self):
        spec = ScenarioSpec(
            name="s", protocol="subquadratic",
            grid={"lam": (10, 20), "n": (24, 32, 48)},
            fixed={"f_fraction": 0.25}, seeds=(0,))
        cells = spec.cells()
        assert len(cells) == 6
        # First axis is the outermost loop (row-major expansion).
        assert [(dict(c.bindings)["lam"], c.n) for c in cells] == [
            (10, 24), (10, 32), (10, 48), (20, 24), (20, 32), (20, 48)]

    def test_f_fraction_and_callable_f(self):
        spec = ScenarioSpec(
            name="s", protocol="quadratic",
            grid={"n": (20, 40)}, fixed={"f_fraction": 0.25}, seeds=(0,))
        assert [c.f for c in spec.cells()] == [5, 10]

        def half(n):
            return (n - 1) // 2

        spec = ScenarioSpec(
            name="s", protocol="quadratic",
            grid={"n": (21, 41)}, fixed={"f": half}, seeds=(0,))
        assert [c.f for c in spec.cells()] == [10, 20]

    def test_adversary_as_grid_axis(self):
        cells = SMOKE.expand()
        assert [c.adversary for c in cells] == ["none", "crash"]
        # Fixed bindings are shared across the axis.
        assert {c.n for c in cells} == {32}

    def test_lam_folds_into_params(self):
        cell = TINY.scenarios[0].cells()[0]
        kwargs = cell.builder_kwargs()
        assert kwargs["params"] == SecurityParameters(lam=10)
        assert "lam" not in kwargs

    def test_missing_f_raises(self):
        spec = ScenarioSpec(name="s", protocol="quadratic",
                            fixed={"n": 20}, seeds=(0,))
        with pytest.raises(ConfigurationError, match="f or f_fraction"):
            spec.cells()

    def test_silently_dropped_bindings_raise(self):
        # lam on a protocol that takes no params.
        with pytest.raises(ConfigurationError, match="lam binding"):
            ScenarioSpec(name="s", protocol="quadratic",
                         fixed={"n": 8, "f": 2, "lam": 99},
                         seeds=(0,)).cells()
        # epsilon with nothing to fold it into.
        with pytest.raises(ConfigurationError, match="epsilon requires"):
            ScenarioSpec(name="s", protocol="subquadratic",
                         fixed={"n": 8, "f": 2, "epsilon": 0.3},
                         seeds=(0,)).cells()
        # pre-built params alongside lam/epsilon.
        with pytest.raises(ConfigurationError, match="would be ignored"):
            ScenarioSpec(name="s", protocol="subquadratic",
                         fixed={"n": 8, "f": 2, "lam": 10,
                                "params": SecurityParameters(lam=20)},
                         seeds=(0,)).cells()

    def test_single_seed_executors_reject_multi_seed_specs(self):
        with pytest.raises(ConfigurationError, match="exactly one seed"):
            ScenarioSpec(name="s", protocol="naive-broadcast",
                         executor="dolev-reischuk",
                         fixed={"n": 8, "f": 2, "sender_input": 0},
                         seeds=(1, 2)).cells()

    def test_unknown_names_raise(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            ScenarioSpec(name="s", protocol="nope",
                         fixed={"n": 8, "f": 2}, seeds=(0,)).cells()
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            ScenarioSpec(name="s", protocol="quadratic", adversary="nope",
                         fixed={"n": 8, "f": 2}, seeds=(0,)).cells()
        with pytest.raises(ConfigurationError, match="unknown executor"):
            ScenarioSpec(name="s", protocol="quadratic", executor="nope",
                         fixed={"n": 8, "f": 2}, seeds=(0,)).cells()


class TestDeterminism:
    def test_rows_identical_with_and_without_workers(self):
        sequential = run_sweep(SMOKE, workers=1)
        parallel = run_sweep(SMOKE, workers=2)
        assert sequential.rows() == parallel.rows()
        assert (sequential.to_table().render()
                == parallel.to_table().render())

    def test_rows_identical_with_and_without_lottery_cache(self):
        shared = run_sweep(TINY, share_lottery=True)
        unshared = run_sweep(TINY, share_lottery=False)
        assert shared.rows() == unshared.rows()
        assert unshared.lottery is None
        assert shared.lottery["misses"] > 0


class TestLotteryCache:
    def _run(self, seed, coin_cache=None):
        n, f = 24, 6
        params = SecurityParameters(lam=10, epsilon=0.1)
        instance = build_subquadratic_ba(
            n=n, f=f, inputs=[i % 2 for i in range(n)], seed=seed,
            params=params, coin_cache=coin_cache)
        return run_instance(instance, f, seed=seed)

    def test_cached_execution_is_observationally_identical(self):
        cache = SharedLotteryCache()
        baseline = self._run(seed=3)
        cached = self._run(seed=3, coin_cache=cache)
        assert cache.misses > 0
        assert cached.outputs == baseline.outputs
        assert cached.rounds_executed == baseline.rounds_executed
        assert (cached.metrics.multicast_complexity_bits
                == baseline.metrics.multicast_complexity_bits)
        # A second instance with the same seed is served from the cache
        # and still byte-identical.
        hits_before = cache.hits
        rerun = self._run(seed=3, coin_cache=cache)
        assert cache.hits > hits_before
        assert rerun.outputs == baseline.outputs
        assert (rerun.metrics.multicast_complexity_bits
                == baseline.metrics.multicast_complexity_bits)

    def test_key_covers_seed_and_difficulty(self):
        # Same cache, different seeds and different λ: every combination
        # must draw its own coins, identical to the uncached lottery.
        cache = SharedLotteryCache()
        topic = ("Vote", 1, 1)
        n = 40
        for lam in (8, 16):
            for seed in (0, 1):
                schedule = DifficultySchedule.for_parameters(
                    SecurityParameters(lam=lam), n)
                cached = FMineEligibility(n, schedule, seed=seed,
                                          coin_cache=cache)
                plain = FMineEligibility(n, schedule, seed=seed)
                for node in range(n):
                    assert (
                        (cached.capability_for(node).try_mine(topic) is None)
                        == (plain.capability_for(node).try_mine(topic) is None)
                    )
        # 4 distinct (seed, λ) combinations × n nodes, no collisions.
        assert len(cache) == 4 * n
        assert cache.hits == 0

    def test_cache_pickles_to_process_local_token(self):
        import pickle

        cache = SharedLotteryCache(token="test-pickle-token")
        cache.coin(("k", 0.5), lambda: True)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone is shared_cache("test-pickle-token")
        assert clone is cache  # same process -> same registry entry

    def test_worker_cache_accumulates_across_cells_with_shared_pool(self):
        # run_sweep lends one pool to every cell, so a worker's
        # token-rebound cache must carry coins from cell to cell: with a
        # single worker, the second cell's trials (same seeds/lottery,
        # different adversary) are served from the worker's cache.
        from concurrent.futures import ProcessPoolExecutor

        cache = SharedLotteryCache(token="test-worker-pool-token")
        kwargs = dict(n=24, inputs=[i % 2 for i in range(24)],
                      params=SecurityParameters(lam=10),
                      coin_cache=cache)
        with ProcessPoolExecutor(max_workers=1) as pool:
            first = run_trials(build_subquadratic_ba, f=6, seeds=range(2),
                               pool=pool, **kwargs)
            stats_after_one = pool.submit(
                _worker_cache_stats, "test-worker-pool-token").result()
            second = run_trials(build_subquadratic_ba, f=6, seeds=range(2),
                                pool=pool, **kwargs)
            stats_after_two = pool.submit(
                _worker_cache_stats, "test-worker-pool-token").result()
        assert stats_after_one["misses"] > 0
        assert stats_after_one["hits"] == 0
        assert stats_after_two["hits"] > 0  # second cell hit the memo
        assert first.mean_multicasts == second.mean_multicasts
        # The main-process cache saw none of it (worker-local state).
        assert cache.misses == 0

    def test_verification_still_sees_mined_coins(self):
        # Tickets mined through a cached lottery must verify exactly like
        # uncached ones (Fmine.verify reads the per-instance coin table,
        # which the cache feeds).
        cache = SharedLotteryCache()
        schedule = DifficultySchedule.for_parameters(
            SecurityParameters(lam=12), 24)
        source = FMineEligibility(24, schedule, seed=7, coin_cache=cache)
        topic = ("Vote", 2, 0)
        tickets = [source.capability_for(node).try_mine(topic)
                   for node in range(24)]
        mined = [t for t in tickets if t is not None]
        assert mined
        for ticket in mined:
            assert source.verify(ticket)


class TestArtifacts:
    def test_json_round_trip(self, tmp_path):
        result = run_sweep(TINY)
        path = result.to_json(tmp_path / "tiny.json")
        assert result.rows() == result.load_rows(path)

    def test_csv_matches_rows(self, tmp_path):
        result = run_sweep(TINY)
        path = result.to_csv(tmp_path / "tiny.csv")
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        rows = result.rows()
        assert len(parsed) == len(rows)
        assert set(parsed[0]) == set(rows[0])
        assert [r["n"] for r in parsed] == [str(r["n"]) for r in rows]

    def test_rows_are_json_safe(self):
        result = run_sweep(SMOKE)
        json.dumps(result.rows())


class TestSpecParity:
    def test_trials_cell_matches_direct_run_trials(self):
        """A spec-driven cell is the same run_trials call, field for field."""
        n, f = 24, 6
        params = SecurityParameters(lam=10)
        spec = SweepSpec(
            name="parity",
            scenarios=(
                ScenarioSpec(
                    name="subq", protocol="subquadratic",
                    fixed={"n": n, "f": f, "lam": 10},
                    inputs="mixed", adversary="crash", seeds=range(2)),
            ),
        )
        cell = run_sweep(spec).cells[0]
        from repro.adversaries import CrashAdversary
        direct = run_trials(
            build_subquadratic_ba, f=f, seeds=range(2), n=n,
            inputs=[i % 2 for i in range(n)], params=params,
            adversary_factory=lambda inst: CrashAdversary())
        assert cell.stats.mean_multicasts == direct.mean_multicasts
        assert cell.stats.mean_rounds == direct.mean_rounds
        assert cell.stats.consistency_rate == direct.consistency_rate
        assert cell.stats.max_message_bits == direct.max_message_bits

    def test_sweep_library_specs_expand(self):
        for sweep in SWEEPS.values():
            cells = sweep.expand()
            assert cells, sweep.name
            for cell in cells:
                assert cell.seeds
