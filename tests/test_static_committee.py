"""Tests for the static-committee baseline and its adaptive downfall."""

import pytest

from repro.adversaries import CommitteeTakeoverAdversary, CrashAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.protocols import build_static_committee
from repro.protocols.static_committee import elect_committee
from repro.types import AdversaryModel


class TestCommitteeElection:
    def test_committee_is_deterministic_per_crs(self):
        assert elect_committee(100, 9, 1) == elect_committee(100, 9, 1)

    def test_different_crs_different_committee(self):
        assert elect_committee(100, 9, 1) != elect_committee(100, 9, 2)

    def test_committee_size(self):
        assert len(elect_committee(100, 9, 1)) == 9

    def test_committee_larger_than_network_rejected(self):
        with pytest.raises(ConfigurationError):
            build_static_committee(5, 1, [0] * 5, committee_size=10)


class TestHonestAndStaticExecutions:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        n, f = 60, 20
        instance = build_static_committee(n, f, [bit] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {bit}

    def test_sublinear_multicasts(self):
        """The whole point of the committee: only members speak."""
        n, f = 200, 40
        instance = build_static_committee(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, seed=0)
        assert result.metrics.multicast_complexity_messages < n

    def test_static_crash_of_non_members_tolerated(self):
        n, f = 60, 20
        instance = build_static_committee(n, f, [1] * n, seed=1)
        committee = set(instance.services["committee"])
        victims = [node for node in range(n) if node not in committee][:f]
        result = run_instance(instance, f, CrashAdversary(victims=victims),
                              model=AdversaryModel.STATIC, seed=1)
        assert result.consistent()
        assert set(result.honest_outputs) == {1}


class TestAdaptiveTakeover:
    def test_adaptive_adversary_breaks_consistency(self):
        """Section 1: 'corrupt them, and thereby control the whole
        committee' — with only |committee| ≪ f corruptions."""
        n, f = 80, 30
        violations = 0
        for seed in range(3):
            instance = build_static_committee(n, f, [1] * n, seed=seed)
            adversary = CommitteeTakeoverAdversary(instance)
            result = run_instance(instance, f, adversary, seed=seed)
            violations += not result.consistent()
            assert result.corruptions_used == len(
                instance.services["committee"])
        assert violations == 3

    def test_attack_needs_budget_for_committee(self):
        n = 80
        instance = build_static_committee(n, 2, [1] * n, seed=0)
        adversary = CommitteeTakeoverAdversary(instance)
        with pytest.raises(ConfigurationError):
            run_instance(instance, 2, adversary, seed=0)

    def test_attack_impossible_for_static_adversary(self):
        """A static adversary must commit before... corrupting the
        announced committee mid-run is exactly what STATIC forbids."""
        from repro.errors import CapabilityError

        class LateTakeover(CommitteeTakeoverAdversary):
            def on_setup(self):
                pass  # corrupt later instead

            def react(self, round_index, staged):
                if round_index == 0:
                    for member in self.committee:
                        self.grants[member] = self.api.corrupt(member)
                super().react(round_index, staged)

        n, f = 80, 30
        instance = build_static_committee(n, f, [1] * n, seed=0)
        adversary = LateTakeover(instance)
        with pytest.raises(CapabilityError):
            run_instance(instance, f, adversary,
                         model=AdversaryModel.STATIC, seed=0)
