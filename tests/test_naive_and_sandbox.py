"""Tests for the naive lower-bound targets and the adversary sandbox."""

import pytest

from repro.adversaries import SandboxRunner
from repro.errors import ConfigurationError
from repro.harness import run_instance
from repro.protocols import build_naive_broadcast
from repro.sim.adversary import Adversary


class TestNaiveBroadcast:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_all_honest_correctness(self, bit):
        n, f = 20, 8
        instance = build_naive_broadcast(n, f, bit)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {bit}

    def test_cheap_message_count(self):
        """The protocol spends O(n·relay_width) unicasts — far below the
        (f/2)² Dolev–Reischuk budget for f = Θ(n)."""
        n, f = 40, 16
        instance = build_naive_broadcast(n, f, 0, relay_width=2)
        result = run_instance(instance, f, seed=0)
        assert result.metrics.honest_unicast_count <= n - 1 + 2 * n
        assert result.metrics.honest_multicast_count == 0

    def test_silent_node_outputs_default(self):
        from repro.adversaries import CrashAdversary
        n, f = 10, 4
        instance = build_naive_broadcast(n, f, 0, default_when_silent=1)
        # Crash the sender before it speaks: nobody hears anything.
        result = run_instance(instance, f, CrashAdversary(victims=[0]),
                              seed=0)
        assert set(result.honest_outputs) == {1}

    def test_deterministic(self):
        n, f = 20, 8
        r1 = run_instance(build_naive_broadcast(n, f, 1), f, seed=0)
        r2 = run_instance(build_naive_broadcast(n, f, 1), f, seed=0)
        assert r1.outputs == r2.outputs

    def test_rejects_bad_f(self):
        with pytest.raises(ConfigurationError):
            build_naive_broadcast(5, 5, 1)


class TestSandboxRunner:
    def test_sandboxed_node_keeps_following_protocol(self):
        """A corrupted-but-sandboxed relay behaves exactly honestly."""
        class SandboxEverything(Adversary):
            def __init__(self, victims):
                super().__init__()
                self.victims = victims

            def bind(self, api):
                self.sandbox = SandboxRunner(api)
                super().bind(api)

            def on_setup(self):
                for victim in self.victims:
                    self.sandbox.adopt(self.api.corrupt(victim))

            def observe_deliveries(self, round_index, inboxes):
                self.sandbox.step(inboxes)

            def react(self, round_index, staged):
                return None

        n, f = 20, 8
        instance = build_naive_broadcast(n, f, 1)
        adversary = SandboxEverything(victims=[3, 4, 5])
        result = run_instance(instance, f, adversary, seed=0)
        # Corrupt-but-honest-behaving nodes change nothing for the rest.
        assert set(result.honest_outputs) == {1}

    def test_send_filter_blocks_selected_edges(self):
        class MuteTowardsVictim(Adversary):
            def __init__(self, victims, blocked):
                super().__init__()
                self.victims = victims
                self.blocked = blocked

            def bind(self, api):
                self.sandbox = SandboxRunner(api)
                super().bind(api)

            def on_setup(self):
                for victim in self.victims:
                    self.sandbox.adopt(self.api.corrupt(victim))

            def observe_deliveries(self, round_index, inboxes):
                self.sandbox.step(
                    inboxes,
                    send_filter=lambda node, recipient, payload:
                        recipient != self.blocked)

            def react(self, round_index, staged):
                return None

        n, f = 10, 4
        # Sender corrupted-but-honest except it never talks to node 7;
        # with no relays, node 7 hears nothing and outputs the default.
        instance = build_naive_broadcast(n, f, 0, relay_width=0,
                                         default_when_silent=1)
        adversary = MuteTowardsVictim(victims=[0], blocked=7)
        result = run_instance(instance, f, adversary, seed=0)
        assert result.outputs[7] == 1
        assert all(result.outputs[node] == 0
                   for node in result.forever_honest if node != 7)

    def test_inbox_filter_makes_node_deaf(self):
        class DeafVictims(Adversary):
            def __init__(self, victims):
                super().__init__()
                self.victims = victims

            def bind(self, api):
                self.sandbox = SandboxRunner(api)
                super().bind(api)

            def on_setup(self):
                for victim in self.victims:
                    self.sandbox.adopt(self.api.corrupt(victim))

            def observe_deliveries(self, round_index, inboxes):
                self.sandbox.step(
                    inboxes, inbox_filter=lambda node, delivery: False)

            def react(self, round_index, staged):
                return None

        n, f = 10, 4
        instance = build_naive_broadcast(n, f, 0, default_when_silent=1)
        adversary = DeafVictims(victims=[3])
        run_instance(instance, f, adversary, seed=0)
        # The deaf node never heard the sender: its own (sandboxed) state
        # reflects silence.
        assert instance.nodes[3].heard is None
