"""Tests for repro.types."""

import pytest

from repro.types import AdversaryModel, SecurityParameters, other_bit, validate_bit


class TestBits:
    def test_other_bit_flips(self):
        assert other_bit(0) == 1
        assert other_bit(1) == 0

    def test_other_bit_rejects_non_bits(self):
        with pytest.raises(ValueError):
            other_bit(2)
        with pytest.raises(ValueError):
            other_bit(-1)

    def test_validate_bit_accepts_bits(self):
        assert validate_bit(0) == 0
        assert validate_bit(1) == 1

    def test_validate_bit_rejects_non_bits(self):
        with pytest.raises(ValueError):
            validate_bit("1")


class TestAdversaryModel:
    def test_only_strongly_adaptive_removes(self):
        assert AdversaryModel.STRONGLY_ADAPTIVE.can_remove_after_the_fact
        assert not AdversaryModel.ADAPTIVE.can_remove_after_the_fact
        assert not AdversaryModel.STATIC.can_remove_after_the_fact

    def test_static_cannot_corrupt_adaptively(self):
        assert not AdversaryModel.STATIC.can_corrupt_adaptively
        assert AdversaryModel.ADAPTIVE.can_corrupt_adaptively
        assert AdversaryModel.STRONGLY_ADAPTIVE.can_corrupt_adaptively


class TestSecurityParameters:
    def test_committee_probability_is_lambda_over_n(self):
        params = SecurityParameters(lam=40)
        assert params.committee_probability(400) == pytest.approx(0.1)

    def test_committee_probability_caps_at_one(self):
        params = SecurityParameters(lam=40)
        assert params.committee_probability(10) == 1.0

    def test_leader_probability_is_half_over_n(self):
        params = SecurityParameters()
        assert params.leader_probability(100) == pytest.approx(1 / 200)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            SecurityParameters(epsilon=0.5)
        with pytest.raises(ValueError):
            SecurityParameters(epsilon=0.0)

    def test_rejects_non_positive_lambda(self):
        with pytest.raises(ValueError):
            SecurityParameters(lam=0)

    def test_rejects_bad_n(self):
        params = SecurityParameters()
        with pytest.raises(ValueError):
            params.committee_probability(0)
        with pytest.raises(ValueError):
            params.leader_probability(0)
