"""Tests for deterministic randomness derivation."""

from repro.rng import derive_rng, derive_seed


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(7, "node", 3)
        b = derive_rng(7, "node", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = derive_rng(7, "node", 3)
        b = derive_rng(7, "node", 4)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = derive_rng(7, "node", 3)
        b = derive_rng(8, "node", 3)
        assert a.random() != b.random()

    def test_label_path_is_not_ambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_string_and_int_seeds_supported(self):
        assert derive_rng("exp-1", "x").random() != derive_rng(1, "x").random()
