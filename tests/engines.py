"""The engine axis for conditioned-execution tests.

Conditioned executions run under one of two result-identical loops (see
``repro.sim.engine``): the Δ-lockstep synchronizer (``"lockstep"``, the
historical reference) and the event-driven scheduler (``"event"``, the
default).  Tests that exercise partial-synchrony behavior should make
their claims on *both* — a regression that only breaks one loop must not
hide behind whichever one the suite happens to run.  Decorate with
:data:`both_engines` and pass the ``engine`` argument through to
``run_instance(..., scheduler=engine)``.
"""

import pytest

from repro.sim.engine import SCHEDULER_EVENT, SCHEDULER_LOCKSTEP

#: Every conditioned-execution loop, lock-step reference first.
ENGINES = (SCHEDULER_LOCKSTEP, SCHEDULER_EVENT)

#: ``@both_engines`` parametrizes a test over the engine axis; the test
#: receives the scheduler name as its ``engine`` argument.
both_engines = pytest.mark.parametrize("engine", ENGINES)
