"""Perf smoke guard: verification work must stay bounded as n grows.

Counts ``authenticator.check`` invocations — not wall time, so CI
hardware variance cannot flake it.  Before the content-addressed
verification caches, the n = 96 quadratic-BA run below performed ~921k
checks; with them it performs a few hundred.  The budget is deliberately
generous (50 per node) so legitimate protocol changes don't trip it, while
any regression to per-copy re-verification (which is Θ(n² · threshold))
overshoots it by orders of magnitude.
"""

from repro.harness.profiling import profile_check_calls
from repro.protocols.quadratic_ba import build_quadratic_ba


def test_quadratic_ba_n96_check_call_budget():
    n, f = 96, 47
    instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)], seed=1)
    profile = profile_check_calls(instance, f, seed=1)

    # The run must still be a correct agreement...
    assert profile.result.consistent()
    assert profile.result.all_decided()
    # ...within the call budget (measured: 385 at n=96, seed 1).
    budget = 50 * n
    assert profile.check_calls <= budget, (
        f"authenticator.check called {profile.check_calls} times, "
        f"budget {budget}: verification memoization has regressed")
