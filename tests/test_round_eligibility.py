"""Tests for the round-specific eligibility baseline (± memory erasure)."""

import pytest

from repro.adversaries import AckEquivocationAdversary
from repro.errors import ConfigurationError, SignatureError
from repro.harness import run_instance, run_trials
from repro.protocols import build_round_eligibility
from repro.protocols.round_eligibility import (
    EpochKeyRegistry,
    EpochSignature,
    EpochSigningCapability,
    signing_slot,
)
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=30, epsilon=0.1)


class TestEpochKeyRegistry:
    def test_sign_verify_roundtrip(self):
        registry = EpochKeyRegistry(4)
        signature = registry.capability_for(1).sign(3, ("ACK", 3, 0))
        assert registry.verify(1, 3, ("ACK", 3, 0), signature)

    def test_wrong_epoch_rejected(self):
        registry = EpochKeyRegistry(4)
        signature = registry.capability_for(1).sign(3, "m")
        assert not registry.verify(1, 4, "m", signature)

    def test_wrong_signer_rejected(self):
        registry = EpochKeyRegistry(4)
        signature = registry.capability_for(1).sign(3, "m")
        assert not registry.verify(2, 3, "m", signature)

    def test_unissued_token_rejected(self):
        registry = EpochKeyRegistry(4)
        from repro.crypto.hashing import hash_objects
        forged = EpochSignature(
            signer=1, epoch=3, digest=hash_objects("epoch-sig", 1, 3, "m"))
        assert not registry.verify(1, 3, "m", forged)

    def test_evolution_erases_past(self):
        registry = EpochKeyRegistry(4)
        capability = registry.capability_for(0)
        capability.sign(2, "m")
        capability.evolve(3)
        with pytest.raises(SignatureError):
            capability.sign(2, "again")

    def test_future_epochs_signable_after_evolution(self):
        registry = EpochKeyRegistry(4)
        capability = registry.capability_for(0)
        capability.evolve(5)
        signature = capability.sign(7, "m")
        assert registry.verify(0, 7, "m", signature)


class TestSigningSlots:
    def test_propose_and_ack_use_distinct_slots(self):
        """Proposing must not burn the same epoch's ACK key."""
        assert signing_slot(("Propose", 3, 1)) != signing_slot(("ACK", 3, 1))

    def test_slots_monotone_in_epoch(self):
        assert signing_slot(("ACK", 2, 0)) < signing_slot(("Propose", 3, 0))

    def test_slot_ignores_bit(self):
        assert signing_slot(("ACK", 3, 0)) == signing_slot(("ACK", 3, 1))


class TestProtocolRuns:
    @pytest.mark.parametrize("memory_erasure", [False, True])
    def test_honest_validity(self, memory_erasure):
        n, f = 120, 30
        instance = build_round_eligibility(
            n, f, [1] * n, seed=0, params=PARAMS, epochs=6,
            memory_erasure=memory_erasure)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {1}

    def test_requires_f_below_third(self):
        with pytest.raises(ConfigurationError):
            build_round_eligibility(90, 30, [0] * 90)


class TestEquivocationAttack:
    def _attack(self, memory_erasure, seeds=range(4)):
        n, f = 150, 45
        outcomes = []
        adversaries = []
        for seed in seeds:
            instance = build_round_eligibility(
                n, f, [1] * n, seed=seed, params=PARAMS, epochs=6,
                memory_erasure=memory_erasure)
            adversary = AckEquivocationAdversary(instance, reserve=60)
            result = run_instance(instance, f, adversary, seed=seed)
            outcomes.append(result.consistent() and result.agreement_valid())
            adversaries.append(adversary)
        return outcomes, adversaries

    def test_no_erasure_is_broken(self):
        """Remark 3.3: the same-round equivocation breaks the strawman."""
        outcomes, adversaries = self._attack(memory_erasure=False)
        assert not any(outcomes)
        assert all(adv.forged > 0 for adv in adversaries)

    def test_erasure_defends(self):
        """Chen–Micali's ephemeral keys block the second signature."""
        outcomes, adversaries = self._attack(memory_erasure=True)
        assert all(outcomes)
        assert all(adv.forged == 0 for adv in adversaries)
        assert all(adv.failed_forgeries > 0 for adv in adversaries)

    def test_attack_rejects_bit_specific_protocols(self):
        from repro.protocols import build_phase_king_subquadratic
        instance = build_phase_king_subquadratic(
            90, 20, [1] * 90, seed=0, params=PARAMS, epochs=4)
        with pytest.raises(ConfigurationError):
            AckEquivocationAdversary(instance)


class TestRealForwardSecureMode:
    """The same matrix with genuine Merkle-tree FS signatures."""

    PARAMS_SMALL = SecurityParameters(lam=12, epsilon=0.1)

    def test_honest_validity(self):
        n, f = 45, 13
        instance = build_round_eligibility(
            n, f, [1] * n, seed=0, params=self.PARAMS_SMALL, epochs=4,
            fs_mode="real")
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {1}

    def test_no_erasure_is_broken(self):
        n, f = 45, 13
        instance = build_round_eligibility(
            n, f, [1] * n, seed=1, params=self.PARAMS_SMALL, epochs=4,
            memory_erasure=False, fs_mode="real")
        adversary = AckEquivocationAdversary(instance, reserve=15)
        result = run_instance(instance, f, adversary, seed=1)
        assert not result.consistent()
        assert adversary.forged > 0

    def test_erasure_defends(self):
        """Real key deletion: the Merkle-tree epoch key is gone, so the
        forgery attempt raises inside the signing call."""
        n, f = 45, 13
        instance = build_round_eligibility(
            n, f, [1] * n, seed=1, params=self.PARAMS_SMALL, epochs=4,
            memory_erasure=True, fs_mode="real")
        adversary = AckEquivocationAdversary(instance, reserve=15)
        result = run_instance(instance, f, adversary, seed=1)
        assert result.consistent()
        assert adversary.forged == 0
        assert adversary.failed_forgeries > 0

    def test_unknown_fs_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            build_round_eligibility(30, 8, [0] * 30, fs_mode="quantum")
