"""Tests for Schnorr group arithmetic."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.groups import (
    MODP_2048_GROUP,
    SchnorrGroup,
    TEST_GROUP,
    is_probable_prime,
)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 101):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (1, 4, 9, 91, 561, 41041):  # includes Carmichael numbers
            assert not is_probable_prime(c)

    def test_test_group_parameters_are_prime(self):
        TEST_GROUP.validate()

    def test_modp_2048_parameters_are_prime(self):
        MODP_2048_GROUP.validate(rounds=4)


class TestGroupStructure:
    def test_generators_have_order_q(self, group):
        assert pow(group.g, group.q, group.p) == 1
        assert pow(group.h, group.q, group.p) == 1

    def test_generators_are_not_identity(self, group):
        assert group.g != 1
        assert group.h != 1

    def test_g_h_distinct(self, group):
        assert group.g != group.h

    def test_rejects_non_safe_prime(self):
        with pytest.raises(ValueError):
            SchnorrGroup(name="bad", p=23, q=7, g=2)

    def test_rejects_bad_generator(self):
        # 5 is a non-residue mod TEST_GROUP.p, so it has order 2q, not q.
        candidate = 5
        if pow(candidate, TEST_GROUP.q, TEST_GROUP.p) != 1:
            with pytest.raises(ValueError):
                SchnorrGroup(name="bad", p=TEST_GROUP.p, q=TEST_GROUP.q,
                             g=candidate)


class TestGroupOperations:
    @given(st.integers(min_value=1, max_value=TEST_GROUP.q - 1),
           st.integers(min_value=1, max_value=TEST_GROUP.q - 1))
    @settings(max_examples=30)
    def test_exponent_homomorphism(self, a, b):
        group = TEST_GROUP
        lhs = group.mul(group.exp(group.g, a), group.exp(group.g, b))
        rhs = group.exp(group.g, (a + b) % group.q)
        assert lhs == rhs

    @given(st.integers(min_value=1, max_value=TEST_GROUP.q - 1))
    @settings(max_examples=30)
    def test_inverse(self, a):
        group = TEST_GROUP
        element = group.exp(group.g, a)
        assert group.mul(element, group.inv(element)) == 1

    def test_random_scalar_in_range(self, group, rng):
        for _ in range(50):
            scalar = group.random_scalar(rng)
            assert 1 <= scalar < group.q

    def test_is_element_accepts_powers_of_g(self, group, rng):
        scalar = group.random_scalar(rng)
        assert group.is_element(group.exp(group.g, scalar))

    def test_is_element_rejects_out_of_range(self, group):
        assert not group.is_element(0)
        assert not group.is_element(group.p)
        assert not group.is_element(group.p + 5)


class TestHashToGroup:
    def test_lands_in_subgroup(self, group):
        for i in range(20):
            element = group.hash_to_group(f"msg-{i}".encode())
            assert group.is_element(element)

    def test_deterministic(self, group):
        assert group.hash_to_group(b"x") == group.hash_to_group(b"x")

    def test_different_inputs_differ(self, group):
        assert group.hash_to_group(b"x") != group.hash_to_group(b"y")

    def test_object_hashing(self, group):
        a = group.hash_to_group_from_object(("Vote", 1, 0))
        b = group.hash_to_group_from_object(("Vote", 1, 1))
        assert a != b

    def test_element_bits_matches_p(self, group):
        assert group.element_bits() == 8 * ((group.p.bit_length() + 7) // 8)


class TestChallengeScalar:
    def test_in_range_and_deterministic(self, group):
        c1 = group.challenge_scalar("dom", 1, 2, 3)
        c2 = group.challenge_scalar("dom", 1, 2, 3)
        assert c1 == c2
        assert 0 <= c1 < group.q

    def test_domain_separation(self, group):
        assert (group.challenge_scalar("a", 1)
                != group.challenge_scalar("b", 1))


class TestModp2048Operations:
    """Targeted tests on the production-size group (slow ops, few cases)."""

    def test_schnorr_signature_roundtrip(self, rng):
        from repro.crypto.schnorr import SchnorrKeyPair, sign, verify
        keypair = SchnorrKeyPair.generate(MODP_2048_GROUP, rng)
        signature = sign(keypair, ("Vote", 1, 1), rng)
        assert verify(MODP_2048_GROUP, keypair.public, ("Vote", 1, 1),
                      signature)
        assert not verify(MODP_2048_GROUP, keypair.public, ("Vote", 1, 0),
                          signature)

    def test_vrf_roundtrip(self, rng):
        from repro.crypto.vrf import VrfKeyPair, verify_vrf
        keypair = VrfKeyPair.generate(MODP_2048_GROUP, rng)
        output = keypair.evaluate(("ACK", 2, 0), rng)
        assert verify_vrf(MODP_2048_GROUP, keypair.public, ("ACK", 2, 0),
                          output)
        assert not verify_vrf(MODP_2048_GROUP, keypair.public,
                              ("ACK", 2, 1), output)

    def test_element_size_is_2048_bits(self):
        assert MODP_2048_GROUP.element_bits() == 2048
