"""Tests for the PKI registry and ideal signatures."""

import pytest

from repro.crypto.registry import (
    IDEAL_MODE,
    IdealSignature,
    KeyRegistry,
    REAL_MODE,
    SigningCapability,
)
from repro.errors import ConfigurationError, ForgeryAttempt


class TestIdealMode:
    def test_sign_verify_roundtrip(self):
        registry = KeyRegistry(4, IDEAL_MODE)
        signature = registry.capability_for(1).sign(("Vote", 2, 0))
        assert registry.verify(1, ("Vote", 2, 0), signature)

    def test_wrong_message_rejected(self):
        registry = KeyRegistry(4, IDEAL_MODE)
        signature = registry.capability_for(1).sign("m")
        assert not registry.verify(1, "other", signature)

    def test_wrong_signer_rejected(self):
        registry = KeyRegistry(4, IDEAL_MODE)
        signature = registry.capability_for(1).sign("m")
        assert not registry.verify(2, "m", signature)

    def test_unissued_token_rejected(self):
        """A digest-correct token that was never issued via a capability
        does not verify: unforgeability by construction."""
        registry = KeyRegistry(4, IDEAL_MODE)
        forged = IdealSignature(
            signer=1, digest=registry._expected_digest(1, "m"))
        assert not registry.verify(1, "m", forged)

    def test_counterfeit_capability_rejected(self):
        registry = KeyRegistry(4, IDEAL_MODE)
        fake = SigningCapability(registry, 1)
        with pytest.raises(ForgeryAttempt):
            fake.sign("m")

    def test_out_of_range_node_rejected(self):
        registry = KeyRegistry(4, IDEAL_MODE)
        signature = registry.capability_for(1).sign("m")
        assert not registry.verify(7, "m", signature)
        assert not registry.verify(-1, "m", signature)

    def test_unhashable_message_supported(self):
        registry = KeyRegistry(2, IDEAL_MODE)
        message = ["list", "is", "unhashable"]
        signature = registry.capability_for(0).sign(message)
        assert registry.verify(0, message, signature)

    def test_signature_bits_positive(self):
        assert KeyRegistry(2, IDEAL_MODE).signature_bits() > 0


class TestRealMode:
    def test_sign_verify_roundtrip(self, group):
        registry = KeyRegistry(3, REAL_MODE, group, seed=5)
        signature = registry.capability_for(2).sign(("ds", 0, 1))
        assert registry.verify(2, ("ds", 0, 1), signature)

    def test_cross_node_rejected(self, group):
        registry = KeyRegistry(3, REAL_MODE, group, seed=5)
        signature = registry.capability_for(2).sign("m")
        assert not registry.verify(1, "m", signature)

    def test_ideal_token_rejected_in_real_mode(self, group):
        registry = KeyRegistry(3, REAL_MODE, group, seed=5)
        assert not registry.verify(0, "m", IdealSignature(0, b"x" * 32))

    def test_signature_bits_scale_with_group(self, group):
        registry = KeyRegistry(2, REAL_MODE, group)
        assert registry.signature_bits() >= 2 * group.q.bit_length() - 16


class TestConstruction:
    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            KeyRegistry(0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            KeyRegistry(2, "quantum")

    def test_deterministic_keys_per_seed(self, group):
        r1 = KeyRegistry(3, REAL_MODE, group, seed=9)
        r2 = KeyRegistry(3, REAL_MODE, group, seed=9)
        assert r1.public_keys == r2.public_keys
