"""Tests for the difficulty schedule (D and D0)."""

import pytest

from repro.crypto.vrf import VRF_OUTPUT_BITS
from repro.eligibility.difficulty import DifficultySchedule
from repro.errors import ConfigurationError
from repro.types import SecurityParameters


class TestDifficultySchedule:
    def test_committee_kinds_get_lambda_over_n(self):
        params = SecurityParameters(lam=40)
        schedule = DifficultySchedule.for_parameters(params, 400)
        for kind in ("Status", "Vote", "Commit", "Terminate", "ACK"):
            assert schedule.probability((kind, 3, 1)) == pytest.approx(0.1)

    def test_propose_gets_one_over_2n(self):
        schedule = DifficultySchedule.for_parameters(SecurityParameters(), 100)
        assert schedule.probability(("Propose", 3, 1)) == pytest.approx(1 / 200)

    def test_unknown_kind_raises(self):
        schedule = DifficultySchedule.for_parameters(SecurityParameters(), 100)
        with pytest.raises(ConfigurationError):
            schedule.probability(("Gossip", 1, 0))

    def test_malformed_topic_raises(self):
        schedule = DifficultySchedule.for_parameters(SecurityParameters(), 100)
        with pytest.raises(ConfigurationError):
            schedule.probability(())
        with pytest.raises(ConfigurationError):
            schedule.probability((42, 1, 0))

    def test_threshold_matches_probability(self):
        schedule = DifficultySchedule.for_parameters(
            SecurityParameters(lam=40), 400)
        threshold = schedule.threshold(("Vote", 1, 0))
        assert threshold == int(0.1 * (1 << VRF_OUTPUT_BITS))

    def test_always_schedule_is_certain(self):
        schedule = DifficultySchedule.always()
        assert schedule.probability(("Vote", 1, 0)) == 1.0
        assert schedule.probability(("Propose", 1, 0)) == 1.0

    def test_rejects_zero_probability(self):
        with pytest.raises(ConfigurationError):
            DifficultySchedule(committee_probability=0.0,
                               leader_probability=0.5)

    def test_rejects_probability_above_one(self):
        with pytest.raises(ConfigurationError):
            DifficultySchedule(committee_probability=1.5,
                               leader_probability=0.5)

    def test_small_n_caps_committee_probability(self):
        params = SecurityParameters(lam=40)
        schedule = DifficultySchedule.for_parameters(params, 10)
        assert schedule.probability(("Vote", 1, 0)) == 1.0
