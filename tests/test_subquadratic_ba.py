"""End-to-end tests for the headline subquadratic BA (Appendix C.2)."""

import pytest

from repro.adversaries import (
    AdaptiveSpeakerAdversary,
    CrashAdversary,
    StaticEquivocationAdversary,
)
from repro.errors import ConfigurationError
from repro.harness import run_instance, run_trials
from repro.protocols import build_subquadratic_ba
from repro.protocols.subquadratic_ba import committee_threshold
from repro.types import SecurityParameters
from tests.conftest import mixed_inputs

PARAMS = SecurityParameters(lam=30, epsilon=0.1)


class TestHonestExecutions:
    def test_unanimous_inputs(self):
        n, f = 200, 60
        instance = build_subquadratic_ba(n, f, [1] * n, seed=0, params=PARAMS)
        result = run_instance(instance, f, seed=0)
        assert result.consistent()
        assert set(result.honest_outputs) == {1}
        assert result.all_decided()

    def test_mixed_inputs_agree(self):
        n, f = 200, 60
        stats = run_trials(build_subquadratic_ba, f=f, seeds=range(5),
                           n=n, inputs=mixed_inputs(n), params=PARAMS)
        assert stats.consistency_rate == 1.0
        assert stats.termination_rate == 1.0

    def test_sublinear_speakers(self):
        """Only O(λ²) multicasts regardless of n — Theorem 2's point."""
        n, f = 500, 150
        instance = build_subquadratic_ba(n, f, [1] * n, seed=1, params=PARAMS)
        result = run_instance(instance, f, seed=1)
        assert result.metrics.multicast_complexity_messages < n

    def test_multicast_count_stable_across_n(self):
        counts = []
        for n in (128, 512):
            stats = run_trials(build_subquadratic_ba, f=int(0.25 * n),
                               seeds=range(3), n=n, inputs=[1] * n,
                               params=PARAMS)
            counts.append(stats.mean_multicasts)
        # Within 2x of each other while n varies 4x.
        assert counts[1] < 2 * counts[0] + 10

    def test_expected_constant_rounds(self):
        n, f = 150, 45
        stats = run_trials(build_subquadratic_ba, f=f, seeds=range(6),
                           n=n, inputs=mixed_inputs(n), params=PARAMS)
        assert stats.mean_rounds < 40


class TestAdversarialExecutions:
    def test_crash_faults_tolerated(self):
        n, f = 200, 90
        stats = run_trials(build_subquadratic_ba, f=f, seeds=range(4),
                           n=n, inputs=[1] * n, params=PARAMS,
                           adversary_factory=lambda inst: CrashAdversary())
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0

    def test_static_equivocation_consistency(self):
        n, f = 200, 60
        stats = run_trials(build_subquadratic_ba, f=f, seeds=range(5),
                           n=n, inputs=mixed_inputs(n), params=PARAMS,
                           adversary_factory=StaticEquivocationAdversary)
        assert stats.consistency_rate == 1.0

    def test_adaptive_speaker_corruption_survived(self):
        """Corrupting whoever speaks gains nothing: bit-specific
        eligibility makes the flipped-vote lottery fresh (Section 3.2)."""
        n, f = 200, 60
        stats = run_trials(build_subquadratic_ba, f=f, seeds=range(5),
                           n=n, inputs=[1] * n, params=PARAMS,
                           adversary_factory=AdaptiveSpeakerAdversary)
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0


class TestRealCryptoMode:
    def test_vrf_mode_runs_and_agrees(self):
        n, f = 24, 7
        params = SecurityParameters(lam=10, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, [1] * n, seed=2,
                                         params=params, mode="vrf")
        result = run_instance(instance, f, seed=2)
        assert result.consistent()
        assert set(result.honest_outputs) == {1}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            build_subquadratic_ba(10, 3, [0] * 10, mode="quantum")


class TestConfiguration:
    def test_threshold_is_half_lambda(self):
        assert committee_threshold(SecurityParameters(lam=30)) == 15
        assert committee_threshold(SecurityParameters(lam=31)) == 16

    def test_requires_honest_majority(self):
        with pytest.raises(ConfigurationError):
            build_subquadratic_ba(10, 5, [0] * 10)

    def test_requires_input_per_node(self):
        with pytest.raises(ConfigurationError):
            build_subquadratic_ba(10, 3, [0, 1])

    def test_deterministic_replay(self):
        n, f = 100, 30
        r1 = run_instance(
            build_subquadratic_ba(n, f, mixed_inputs(n), seed=5,
                                  params=PARAMS), f, seed=5)
        r2 = run_instance(
            build_subquadratic_ba(n, f, mixed_inputs(n), seed=5,
                                  params=PARAMS), f, seed=5)
        assert r1.outputs == r2.outputs
        assert r1.rounds_executed == r2.rounds_executed
