"""Tests for the store backend layer (harness/backends.py): backend
selection, JSON-vs-SQLite byte-identity, and SQLite safety under
concurrent threads and processes sharing one database file."""

import json
import sqlite3
import subprocess
import sys
import threading
from pathlib import Path

from repro.harness.backends import (
    SQLITE_SUFFIXES,
    JsonTreeBackend,
    SQLiteBackend,
    backend_for_path,
    is_sqlite_path,
)
from repro.harness.scenarios import run_sweep
from repro.harness.store import ExperimentStore

from tests.test_store import tiny_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestBackendSelection:
    def test_suffix_selects_sqlite(self, tmp_path):
        for suffix in SQLITE_SUFFIXES:
            assert is_sqlite_path(tmp_path / f"store{suffix}")
        assert not is_sqlite_path(tmp_path / "store-dir")

    def test_magic_header_selects_sqlite_without_suffix(self, tmp_path):
        # A pre-existing database keeps working even renamed to a
        # suffix-less path: detection falls back to the file header.
        db = tmp_path / "corpus.sqlite"
        SQLiteBackend(db).close()
        renamed = tmp_path / "corpus"
        db.rename(renamed)
        assert is_sqlite_path(renamed)
        assert backend_for_path(renamed).kind == "sqlite"

    def test_explicit_backend_overrides_suffix(self, tmp_path):
        backend = backend_for_path(tmp_path / "plain-dir", backend="sqlite")
        assert backend.kind == "sqlite"
        backend.close()

    def test_store_accepts_backend_instance(self, tmp_path):
        backend = JsonTreeBackend(tmp_path / "tree")
        store = ExperimentStore(tmp_path / "tree", backend=backend)
        assert store.backend is backend

    def test_default_is_json_tree(self, tmp_path):
        store = ExperimentStore(tmp_path / "tree")
        assert store.backend.kind == "json"


class TestJsonSqliteDifferential:
    def test_same_cells_in_byte_identical_artifacts_out(self, tmp_path):
        sweep = tiny_sweep()
        json_store = ExperimentStore(tmp_path / "tree")
        sqlite_store = ExperimentStore(tmp_path / "corpus.sqlite")
        from_json = run_sweep(sweep, store=json_store)
        from_sqlite = run_sweep(sweep, store=sqlite_store)
        assert from_json.rows() == from_sqlite.rows()
        for suffix, writer in (("json", "to_json"), ("csv", "to_csv")):
            a = getattr(from_json, writer)(tmp_path / f"a.{suffix}")
            b = getattr(from_sqlite, writer)(tmp_path / f"b.{suffix}")
            assert a.read_bytes() == b.read_bytes()

    def test_stored_record_text_is_backend_independent(self, tmp_path):
        # Both backends persist the same canonical JSON text, so a
        # corpus can migrate between them by copying records verbatim.
        sweep = tiny_sweep()
        json_store = ExperimentStore(tmp_path / "tree")
        sqlite_store = ExperimentStore(tmp_path / "corpus.sqlite")
        result = run_sweep(sweep, store=json_store)
        run_sweep(sweep, store=sqlite_store)
        for cell in result.cells:
            file_text = (json_store.backend._cell_path(cell.fingerprint)
                         .read_text())
            with sqlite3.connect(tmp_path / "corpus.sqlite") as conn:
                (db_text,) = conn.execute(
                    "SELECT record FROM cells WHERE fingerprint = ?",
                    (cell.fingerprint,)).fetchone()
            assert file_text == db_text

    def test_sqlite_warm_replay_is_byte_identical(self, tmp_path):
        sweep = tiny_sweep()
        store = ExperimentStore(tmp_path / "corpus.sqlite")
        cold = run_sweep(sweep, store=store)
        warm = run_sweep(sweep, store=store)
        assert warm.store_stats["computed"] == 0
        assert warm.store_stats["replayed"] == len(warm.cells)
        cold_path = cold.to_json(tmp_path / "cold.json")
        warm_path = warm.to_json(tmp_path / "warm.json")
        assert cold_path.read_bytes() == warm_path.read_bytes()

    def test_corrupted_sqlite_record_is_a_miss(self, tmp_path):
        store = ExperimentStore(tmp_path / "corpus.sqlite")
        result = run_sweep(tiny_sweep(), store=store)
        fingerprint = result.cells[0].fingerprint
        with sqlite3.connect(tmp_path / "corpus.sqlite") as conn:
            conn.execute("UPDATE cells SET record = ? WHERE fingerprint = ?",
                         ('{"schema": 1, "metr', fingerprint))
        assert store.load_record(fingerprint) is None
        rerun = run_sweep(tiny_sweep(), store=store)
        assert rerun.store_stats["computed"] == 1
        assert rerun.rows() == result.rows()


def _record(tag):
    return {"schema": 1, "tag": tag, "metrics": {"x": 1.5}}


class TestSqliteThreadConcurrency:
    def test_disjoint_writers_lose_nothing(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "corpus.sqlite")
        errors = []

        def writer(worker):
            try:
                for index in range(25):
                    fingerprint = f"{worker:02d}-{index:04d}"
                    backend.save_cell(fingerprint, _record(fingerprint))
                    assert backend.load_cell(fingerprint) is not None
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(worker,))
                   for worker in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert backend.cell_count() == 8 * 25
        backend.close()

    def test_overlapping_writers_converge_uncorrupted(self, tmp_path):
        # Many threads racing to record the *same* cells (two services
        # computing an overlapping sweep) must leave every record
        # readable and equal to one writer's payload.
        backend = SQLiteBackend(tmp_path / "corpus.sqlite")
        fingerprints = [f"shared-{index:03d}" for index in range(10)]

        def writer():
            for fingerprint in fingerprints:
                backend.save_cell(fingerprint, _record(fingerprint))

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.cell_count() == len(fingerprints)
        for fingerprint in fingerprints:
            assert backend.load_cell(fingerprint) == _record(fingerprint)
        backend.close()

    def test_job_counter_updates_are_atomic(self, tmp_path):
        # update_job is the read-modify-write under the service's
        # progress counters; concurrent increments must never lose one.
        backend = SQLiteBackend(tmp_path / "corpus.sqlite")
        backend.save_job("job", {"computed": 0})

        def bump(record):
            record["computed"] += 1
            return record

        def worker():
            for _ in range(50):
                backend.update_job("job", bump)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.load_job("job")["computed"] == 6 * 50
        backend.close()


_PROCESS_WRITER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.harness.backends import SQLiteBackend
backend = SQLiteBackend({db!r})
worker = int(sys.argv[1])
for index in range(20):
    fingerprint = f"proc-{{worker:02d}}-{{index:04d}}"
    backend.save_cell(fingerprint,
                      {{"schema": 1, "tag": fingerprint}})
for _ in range(40):
    backend.update_job("shared-job",
                       lambda record: (record.update(
                           computed=record["computed"] + 1) or record))
backend.close()
print("ok")
"""


class TestSqliteProcessConcurrency:
    def test_processes_share_one_database(self, tmp_path):
        db = str(tmp_path / "corpus.sqlite")
        setup = SQLiteBackend(db)
        setup.save_job("shared-job", {"computed": 0})
        setup.close()
        script = _PROCESS_WRITER.format(src=str(REPO_ROOT / "src"), db=db)
        procs = [subprocess.Popen(
                     [sys.executable, "-c", script, str(worker)],
                     stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                     text=True)
                 for worker in range(4)]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        check = SQLiteBackend(db)
        assert check.cell_count() == 4 * 20
        assert check.load_job("shared-job")["computed"] == 4 * 40
        check.close()


class TestSqliteJobStore:
    def test_job_round_trip_and_listing(self, tmp_path):
        store = ExperimentStore(tmp_path / "corpus.sqlite")
        store.save_job("b-job", {"state": "queued"})
        store.save_job("a-job", {"state": "queued"})
        assert store.job_ids() == ["a-job", "b-job"]
        assert store.load_job("a-job")["state"] == "queued"
        assert store.load_job("missing") is None
        store.update_job("a-job", lambda record: dict(record,
                                                      state="done"))
        assert store.load_job("a-job")["state"] == "done"
        store.close()

    def test_update_job_missing_returns_none(self, tmp_path):
        store = ExperimentStore(tmp_path / "corpus.sqlite")
        assert store.update_job("ghost", lambda record: record) is None
        store.close()

    def test_json_backend_jobs_match_sqlite_semantics(self, tmp_path):
        for root in (tmp_path / "tree", tmp_path / "corpus.sqlite"):
            store = ExperimentStore(root)
            store.save_job("job", {"state": "queued", "computed": 0})
            store.update_job(
                "job", lambda record: dict(record,
                                           computed=record["computed"] + 1))
            record = store.load_job("job")
            assert record["computed"] == 1, store.backend.kind
            assert store.job_ids() == ["job"], store.backend.kind
            store.close()
