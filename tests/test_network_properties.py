"""Property-based partial-synchrony suite (seeded generators, no new deps).

The synchronizer claim behind ``docs/NETWORK.md``, checked end-to-end:
under *any* Δ-bounded network conditions (random per-copy latencies, any
Δ, worst-case adversarial delaying to the Δ deadline) the lock-step
protocols keep their agreement/validity/termination guarantees, because
the engine dilates protocol rounds by Δ.  Conditions are drawn from
seeded ``random.Random`` generators so every failure reproduces from its
case number alone.

Also pinned here:

- determinism — same seed + same conditions ⇒ byte-identical
  ``SweepResult`` artifacts, for any worker count;
- the ``metrics-only`` retention refusal (transcript analyses must not
  vacuously pass) still triggers when network conditions are active.
"""

import math
import random

import pytest

from repro.adversaries import DelayAdversary
from repro.harness import run_instance
from repro.harness.invariants import (
    commits_carry_valid_certificates,
    honest_votes_unique_per_iteration,
    quorum_intersection_on_acks,
)
from repro.harness.replay import narrate
from repro.harness.scenarios import ScenarioSpec, SweepSpec, run_sweep
from repro.protocols import (
    build_phase_king,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.sim.conditions import NETWORKS, NetworkConditions
from repro.types import SecurityParameters

CASES = range(6)


def delta_bounded_conditions(rng: random.Random) -> NetworkConditions:
    """A random Δ-bounded, lossless environment (the regime in which the
    synchronizer argument guarantees correctness: gst=0, no drops, no
    partitions — delays and reordering only)."""
    delta = rng.randint(1, 4)
    kind = rng.choice(("fixed", "uniform", "geometric"))
    if kind == "fixed":
        latency = ("fixed", rng.randint(1, delta))
    elif kind == "uniform":
        lo = rng.randint(1, delta)
        latency = ("uniform", lo, rng.randint(lo, delta))
    else:
        # Geometric draws above Δ exist but the post-GST clamp caps them.
        latency = ("geometric", rng.choice((0.3, 0.5, 0.8)))
    return NetworkConditions(delta=delta, latency=latency)


def random_inputs(rng: random.Random, n: int):
    """Either unanimous (validity must bind) or per-node random bits."""
    if rng.random() < 0.5:
        bit = rng.randint(0, 1)
        return [bit] * n, bit
    return [rng.randint(0, 1) for _ in range(n)], None


def assert_secure(result, expected_bit) -> None:
    assert result.consistent(), "agreement broken under Δ-bounded delays"
    assert result.agreement_valid(), "validity broken under Δ-bounded delays"
    assert result.all_decided(), "termination broken under Δ-bounded delays"
    if expected_bit is not None:
        assert set(result.honest_outputs) == {expected_bit}


class TestQuadraticBaUnderRandomConditions:
    @pytest.mark.parametrize("case", CASES)
    def test_invariants_hold(self, case):
        rng = random.Random(f"quadratic-{case}")
        n = rng.randint(8, 16)
        f = rng.randint(0, (n - 1) // 2)
        inputs, expected = random_inputs(rng, n)
        conditions = delta_bounded_conditions(rng)
        seed = rng.randint(0, 2**16)
        instance = build_quadratic_ba(n, f, inputs, seed=seed)
        result = run_instance(instance, f, seed=seed, conditions=conditions)
        assert_secure(result, expected)
        # Transcript-level invariants, not just end-state predicates.
        assert honest_votes_unique_per_iteration(result) is None
        threshold = instance.services["config"].threshold
        assert commits_carry_valid_certificates(result, threshold) is None


class TestPhaseKingUnderRandomConditions:
    @pytest.mark.parametrize("case", CASES)
    def test_invariants_hold(self, case):
        rng = random.Random(f"phase-king-{case}")
        f = rng.randint(0, 3)
        n = rng.randint(3 * f + 1, 3 * f + 6)
        inputs, expected = random_inputs(rng, n)
        conditions = delta_bounded_conditions(rng)
        seed = rng.randint(0, 2**16)
        instance = build_phase_king(n, f, inputs, seed=seed)
        result = run_instance(instance, f, seed=seed, conditions=conditions)
        assert_secure(result, expected)
        assert quorum_intersection_on_acks(
            result, math.ceil(2 * n / 3)) is None


class TestSubquadraticBaUnderRandomConditions:
    @pytest.mark.parametrize("case", CASES)
    def test_invariants_hold(self, case):
        rng = random.Random(f"subquadratic-{case}")
        n = rng.randint(24, 40)
        f = rng.randint(0, int(0.3 * n))
        inputs, expected = random_inputs(rng, n)
        conditions = delta_bounded_conditions(rng)
        seed = rng.randint(0, 2**16)
        params = SecurityParameters(lam=12, epsilon=0.1)
        instance = build_subquadratic_ba(n, f, inputs, seed=seed,
                                         params=params)
        result = run_instance(instance, f, seed=seed, conditions=conditions)
        assert_secure(result, expected)


class TestAdversarialDelayWithinDelta:
    @pytest.mark.parametrize("case", CASES)
    def test_delay_scheduler_cannot_break_safety(self, case):
        """Worst-case Δ-bounded scheduling: every (or a random fraction
        of) honest copies shoved to the Δ deadline."""
        rng = random.Random(f"delay-{case}")
        n = rng.randint(8, 14)
        f = rng.randint(0, (n - 1) // 2)
        inputs, expected = random_inputs(rng, n)
        conditions = delta_bounded_conditions(rng)
        seed = rng.randint(0, 2**16)
        adversary = DelayAdversary(
            fraction=rng.choice((0.5, 1.0)), seed=seed)
        instance = build_quadratic_ba(n, f, inputs, seed=seed)
        result = run_instance(instance, f, adversary, seed=seed,
                              conditions=conditions)
        assert_secure(result, expected)
        if conditions.delta > 1:
            assert adversary.delayed_envelopes > 0


def _network_sweep() -> SweepSpec:
    return SweepSpec(
        name="net-determinism",
        scenarios=(
            ScenarioSpec(
                name="quadratic",
                protocol="quadratic",
                grid={"network": ("lan", "lossy", "split-heal")},
                fixed={"n": 10, "f": 2},
                inputs="mixed",
                seeds=range(2),
            ),
        ),
    )


class TestDeterministicArtifacts:
    def test_same_seed_same_conditions_byte_identical_artifacts(self, tmp_path):
        # share_lottery=False: the lottery section carries a process-local
        # cache token (not a result); the rows are compared with the cache
        # on in test_worker_count_does_not_change_artifacts.
        first = run_sweep(_network_sweep(), share_lottery=False)
        second = run_sweep(_network_sweep(), share_lottery=False)
        a = first.to_json(tmp_path / "a.json")
        b = second.to_json(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        assert first.to_csv(tmp_path / "a.csv").read_bytes() == \
            second.to_csv(tmp_path / "b.csv").read_bytes()

    def test_worker_count_does_not_change_artifacts(self, tmp_path):
        sequential = run_sweep(_network_sweep(), workers=1)
        fanned = run_sweep(_network_sweep(), workers=2)
        assert sequential.rows() == fanned.rows()

    def test_rows_carry_network_metrics(self):
        rows = run_sweep(_network_sweep()).rows()
        assert all(row["network"] in ("lan", "lossy", "split-heal")
                   for row in rows)
        assert all("mean_delivery_latency" in row for row in rows)
        lossy = [row for row in rows if row["network"] == "lossy"]
        assert all(row["dropped_copies"] > 0 for row in lossy)

    def test_conditioned_executions_reproduce_exactly(self):
        conditions = NETWORKS["lossy"]
        n, f = 12, 3

        def execute():
            instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)],
                                          seed=21)
            return run_instance(instance, f, seed=21, conditions=conditions)

        first, second = execute(), execute()
        assert first.outputs == second.outputs
        assert first.network_stats == second.network_stats
        assert [e.payload for e in first.transcript] == \
            [e.payload for e in second.transcript]


class TestMetricsOnlyRefusalUnderConditions:
    """Regression: ``metrics-only`` results must still be refused by the
    transcript analyses when network conditions are active — a discarded
    transcript must never vacuously pass an invariant scan."""

    def _metrics_only_result(self):
        n, f = 10, 2
        instance = build_quadratic_ba(n, f, [1] * n, seed=5)
        return run_instance(instance, f, seed=5,
                            transcript_retention="metrics-only",
                            conditions=NETWORKS["wan"])

    def test_retention_flag_survives_conditioned_network(self):
        result = self._metrics_only_result()
        assert result.transcript_retained is False
        assert result.transcript == []
        assert result.network_stats is not None  # metrics still recorded

    def test_invariants_refuse(self):
        result = self._metrics_only_result()
        with pytest.raises(ValueError, match="metrics-only"):
            honest_votes_unique_per_iteration(result)
        with pytest.raises(ValueError, match="metrics-only"):
            commits_carry_valid_certificates(result, threshold=8)

    def test_replay_refuses(self):
        result = self._metrics_only_result()
        with pytest.raises(ValueError, match="metrics-only"):
            narrate(result)
