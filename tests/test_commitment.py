"""Tests for commitment schemes."""

import pytest

from repro.crypto.commitment import (
    ElGamalCommitmentScheme,
    HashCommitment,
)


class TestHashCommitment:
    def test_roundtrip(self):
        commitment = HashCommitment.commit(b"value", b"r" * 16)
        assert commitment.open(b"value", b"r" * 16)

    def test_wrong_value_rejected(self):
        commitment = HashCommitment.commit(b"value", b"r" * 16)
        assert not commitment.open(b"other", b"r" * 16)

    def test_wrong_randomness_rejected(self):
        commitment = HashCommitment.commit(b"value", b"r" * 16)
        assert not commitment.open(b"value", b"s" * 16)

    def test_short_randomness_rejected(self):
        with pytest.raises(ValueError):
            HashCommitment.commit(b"v", b"short")

    def test_open_with_short_randomness_is_false(self):
        commitment = HashCommitment.commit(b"v", b"r" * 16)
        assert not commitment.open(b"v", b"tiny")

    def test_hiding_structure(self):
        # Different randomness -> different commitment to the same value.
        c1 = HashCommitment.commit(b"v", b"r" * 16)
        c2 = HashCommitment.commit(b"v", b"s" * 16)
        assert c1 != c2


class TestElGamalCommitment:
    def test_roundtrip(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        value = group.random_scalar(rng)
        commitment, randomness = scheme.commit_random(value, rng)
        assert scheme.open(commitment, value, randomness)

    def test_wrong_value_rejected(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        value = group.random_scalar(rng)
        commitment, randomness = scheme.commit_random(value, rng)
        assert not scheme.open(commitment, (value + 1) % group.q, randomness)

    def test_wrong_randomness_rejected(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        value = group.random_scalar(rng)
        commitment, randomness = scheme.commit_random(value, rng)
        assert not scheme.open(commitment, value, (randomness + 1) % group.q)

    def test_perfectly_binding_search(self, group, rng):
        """No second opening exists (exhaustive over a small window)."""
        scheme = ElGamalCommitmentScheme(group)
        value = 1234
        commitment = scheme.commit(value, 777)
        for other_value in range(1, 50):
            for other_rand in range(1, 50):
                if (other_value, other_rand) == (value % group.q, 777):
                    continue
                assert not scheme.open(commitment, other_value, other_rand)

    def test_components_are_group_elements(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        commitment, _ = scheme.commit_random(group.random_scalar(rng), rng)
        assert scheme.is_well_formed(commitment)

    def test_rejects_invalid_scalars(self, group):
        scheme = ElGamalCommitmentScheme(group)
        with pytest.raises(ValueError):
            scheme.commit(group.q, 1)
        with pytest.raises(ValueError):
            scheme.commit(1, 0)

    def test_hiding_structure(self, group, rng):
        scheme = ElGamalCommitmentScheme(group)
        c1 = scheme.commit(42, group.random_scalar(rng))
        c2 = scheme.commit(42, group.random_scalar(rng))
        assert c1 != c2
