"""Property-based integration tests: the paper's security predicates hold
across randomized executions, inputs, and adversaries.

These are the repository's strongest checks: hypothesis drives seeds,
input vectors, and adversary choices through full protocol executions and
asserts consistency/validity every time.  Parameters are chosen inside the
regimes where the concrete-λ failure bounds are tiny (see
``repro.analysis.parameters``), so a single counterexample is a bug, not
statistical noise.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversaries import (
    AdaptiveSpeakerAdversary,
    CrashAdversary,
    StaticEquivocationAdversary,
)
from repro.harness import run_instance
from repro.protocols import (
    build_broadcast_from_ba,
    build_dolev_strong,
    build_phase_king,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=30, epsilon=0.1)

_slow = settings(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def quadratic_world(draw):
    n = draw(st.integers(min_value=5, max_value=13))
    f = draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    inputs = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    seed = draw(st.integers(0, 10**6))
    adversary_kind = draw(st.sampled_from(["none", "crash", "equivocate"]))
    return n, f, inputs, seed, adversary_kind


def _make_adversary(kind, instance):
    if kind == "crash":
        return CrashAdversary()
    if kind == "equivocate":
        return StaticEquivocationAdversary(instance)
    if kind == "speaker":
        return AdaptiveSpeakerAdversary(instance)
    return None


class TestQuadraticBaProperties:
    @given(quadratic_world())
    @_slow
    def test_consistency_and_validity(self, world):
        n, f, inputs, seed, adversary_kind = world
        instance = build_quadratic_ba(n, f, inputs, seed=seed,
                                      max_iterations=25)
        adversary = _make_adversary(adversary_kind, instance)
        result = run_instance(instance, f, adversary, seed=seed)
        assert result.consistent(), (
            f"consistency broken: n={n} f={f} inputs={inputs} seed={seed} "
            f"adversary={adversary_kind}")
        assert result.agreement_valid(), (
            f"validity broken: n={n} f={f} inputs={inputs} seed={seed} "
            f"adversary={adversary_kind}")


@st.composite
def subquadratic_world(draw):
    n = draw(st.sampled_from([120, 180, 240]))
    fraction = draw(st.sampled_from([0.0, 0.1, 0.2, 0.3]))
    unanimous = draw(st.booleans())
    bit = draw(st.integers(0, 1))
    if unanimous:
        inputs = [bit] * n
    else:
        inputs = [(i + bit) % 2 for i in range(n)]
    seed = draw(st.integers(0, 10**6))
    adversary_kind = draw(st.sampled_from(["none", "crash", "equivocate",
                                           "speaker"]))
    return n, int(fraction * n), inputs, seed, adversary_kind


class TestSubquadraticBaProperties:
    @given(subquadratic_world())
    @_slow
    def test_consistency_and_validity(self, world):
        n, f, inputs, seed, adversary_kind = world
        instance = build_subquadratic_ba(n, f, inputs, seed=seed,
                                         params=PARAMS)
        adversary = _make_adversary(adversary_kind, instance)
        result = run_instance(instance, f, adversary, seed=seed)
        assert result.consistent(), (
            f"consistency broken: n={n} f={f} seed={seed} "
            f"adversary={adversary_kind}")
        assert result.agreement_valid(), (
            f"validity broken: n={n} f={f} seed={seed} "
            f"adversary={adversary_kind}")

    @given(subquadratic_world())
    @_slow
    def test_multicast_complexity_per_iteration_is_lambda(self, world):
        """The Lemma 15 structure: O(λ) multicasts per iteration,
        independent of n — the per-iteration bound is what makes the
        total O(λ²) for expected O(1)=O(λ) iterations."""
        n, f, inputs, seed, adversary_kind = world
        instance = build_subquadratic_ba(n, f, inputs, seed=seed,
                                         params=PARAMS)
        adversary = _make_adversary(adversary_kind, instance)
        result = run_instance(instance, f, adversary, seed=seed)
        iterations = max(1, (result.rounds_executed + 1) // 4 + 1)
        per_iteration_budget = 4 * PARAMS.lam  # 3 committees + slack
        budget = per_iteration_budget * (iterations + 1)
        assert result.metrics.multicast_complexity_messages < budget
        # And sublinearity in n holds whenever n dominates λ·iterations.
        if n > budget:
            assert result.metrics.multicast_complexity_messages < n


class TestPhaseKingProperties:
    @given(st.integers(0, 10**6), st.integers(0, 1), st.booleans())
    @_slow
    def test_validity_and_consistency(self, seed, bit, crash):
        n, f = 10, 3
        inputs = [bit] * n
        instance = build_phase_king(n, f, inputs, seed=seed, epochs=8)
        adversary = CrashAdversary() if crash else None
        result = run_instance(instance, f, adversary, seed=seed)
        assert result.consistent()
        assert set(result.honest_outputs) == {bit}


class TestBroadcastProperties:
    @given(st.integers(0, 10**6), st.integers(0, 1))
    @_slow
    def test_dolev_strong_validity(self, seed, bit):
        n, f = 9, 3
        instance = build_dolev_strong(n, f, bit, seed=seed)
        result = run_instance(instance, f, CrashAdversary(), seed=seed)
        assert result.broadcast_valid(0, bit)
        assert result.consistent()

    @given(st.integers(0, 10**6), st.integers(0, 1))
    @_slow
    def test_bb_from_ba_validity(self, seed, bit):
        n, f = 120, 30
        instance = build_broadcast_from_ba(
            build_subquadratic_ba, n=n, f=f, sender_input=bit, params=PARAMS)
        result = run_instance(instance, f, seed=seed)
        assert result.broadcast_valid(0, bit)
        assert result.consistent()
