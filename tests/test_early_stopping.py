"""GST-aware early-stopping variants (docs/PROTOCOLS.md).

The safety-critical property: agreement and validity must hold when
*some* nodes stop early and others run the full budget — mixed halting
is the normal operating mode under Byzantine equivocation (an adversary
can always keep one honest node's view just short of unanimity).  The
suite drives that mix three ways: a rushing equivocator that completes
unanimity for only half the network, a literally mixed instance (half
the nodes run the fixed-budget original), and randomized Δ-bounded
conditions where the GST gate staggers detection.
"""

import random

import pytest

from repro.adversaries import CrashAdversary, DelayAdversary
from repro.harness.runner import run_instance, run_trials
from repro.harness.scenarios import ScenarioSpec, SweepSpec, run_sweep
from repro.harness.sweep_library import SWEEPS
from repro.protocols import (
    build_phase_king,
    build_phase_king_early_stop,
    build_quadratic_ba,
    build_quadratic_ba_early_stop,
)
from repro.protocols.messages import AckMsg
from repro.protocols.phase_king import phase_king_rounds
from repro.sim.adversary import Adversary
from repro.sim.conditions import NETWORKS, NetworkConditions
from tests.engines import both_engines


# ---------------------------------------------------------------------------
# Helper adversary: complete unanimity for only half of the network.
# ---------------------------------------------------------------------------


class HalfUnanimityAdversary(Adversary):
    """Corrupts one node and ACKs each epoch's unanimous bit to only the
    first half of the network — those nodes observe all ``n`` ACKers and
    stop early, while the other half's view stays one short."""

    name = "half-unanimity"

    def __init__(self, instance, bit=1):
        super().__init__()
        self.authenticator = instance.services["authenticator"]
        self.bit = bit
        self.victim = None

    def on_setup(self):
        self.victim = self.api.n - 1
        self.api.corrupt(self.victim)

    def react(self, round_index, staged):
        epoch, is_ack_round = divmod(round_index, 2)
        if not is_ack_round:
            return
        auth = self.authenticator.attempt(
            self.victim, ("ACK", epoch, self.bit))
        message = AckMsg(epoch=epoch, bit=self.bit,
                         sender=self.victim, auth=auth)
        for target in range(self.api.n // 2):
            self.api.inject(self.victim, target, message)


# ---------------------------------------------------------------------------
# Phase-king early stopping.
# ---------------------------------------------------------------------------


class TestPhaseKingEarlyStop:
    def test_unanimous_inputs_stop_immediately(self):
        n, f = 13, 4
        result = run_instance(
            build_phase_king_early_stop(n, f, [1] * n, seed=3), f, seed=3)
        assert result.consistent() and result.agreement_valid()
        assert result.all_decided()
        assert set(result.honest_outputs) == {1}
        # Epoch 0 is unanimous; everyone detects at the epoch-1 propose
        # round and halts — 3 rounds against a 41-round budget.
        assert result.rounds_executed == 3
        assert result.rounds_saved == phase_king_rounds(20) - 3

    def test_mixed_inputs_converge_then_stop(self):
        n, f = 13, 4
        result = run_instance(
            build_phase_king_early_stop(
                n, f, [i % 2 for i in range(n)], seed=5), f, seed=5)
        assert result.consistent() and result.agreement_valid()
        assert result.all_decided()
        assert result.rounds_saved > 30

    def test_plain_phase_king_saves_nothing(self):
        n, f = 13, 4
        result = run_instance(
            build_phase_king(n, f, [1] * n, seed=3), f, seed=3)
        assert result.rounds_executed == phase_king_rounds(20)
        assert result.rounds_saved == 0

    def test_rounds_saved_zero_under_perfect_with_adversary(self):
        """The ISSUE's pinned regression: a crash adversary removes its
        victims' ACKs, unanimity is unobservable, and the early-stop
        variant degrades to the fixed budget — rounds_saved == 0."""
        n, f = 13, 4
        stats = run_trials(
            build_phase_king_early_stop, f=f, seeds=range(3),
            adversary_factory=lambda instance: CrashAdversary(),
            conditions=NETWORKS["perfect"], builder_takes_conditions=True,
            n=n, inputs=[1] * n)
        assert stats.consistency_rate == 1.0
        assert stats.validity_rate == 1.0
        assert stats.mean_rounds_saved == 0.0
        assert stats.mean_rounds == phase_king_rounds(20)

    def test_half_unanimity_staggers_stops_but_agreement_holds(self):
        """The rushing equivocator completes unanimity for half the
        network; detectors publish the certificate, so the other half
        adopts one round later — decisions land at different rounds but
        on the same bit."""
        n, f = 9, 2
        instance = build_phase_king_early_stop(n, f, [1] * n, seed=7)
        adversary = HalfUnanimityAdversary(instance)
        result = run_instance(instance, f, adversary, seed=7)
        assert result.consistent() and result.agreement_valid()
        assert result.all_decided()
        assert set(result.honest_outputs) == {1}
        rounds = set(result.decision_rounds())
        assert len(rounds) == 2, "expected staggered decision rounds"
        assert max(rounds) == min(rounds) + 1

    def test_mixed_instance_early_and_full_budget_nodes_agree(self):
        """Half the nodes run the fixed-budget original (they ignore
        decide certificates entirely): early stoppers halt in epochs,
        the rest run out the whole budget, and outputs still agree."""
        import dataclasses

        n, f = 12, 3
        instance = build_phase_king_early_stop(n, f, [1] * n, seed=11)
        config = instance.services["config"]
        plain_config = dataclasses.replace(
            config, early_stop_unanimity=False)
        for node in instance.nodes:
            if node.node_id % 2:
                node.config = plain_config
        result = run_instance(instance, f, seed=11)
        assert result.consistent() and result.agreement_valid()
        assert result.all_decided()
        budget = phase_king_rounds(20)
        decision_rounds = [result.decided_rounds[node.node_id]
                           for node in instance.nodes]
        early = [r for r in decision_rounds if r < budget - 1]
        full = [r for r in decision_rounds if r == budget - 1]
        assert early and full, (
            f"expected a mix of early and full-budget halts, "
            f"got {sorted(decision_rounds)}")
        # The execution itself still runs the whole budget (the plain
        # half keeps going), so rounds_saved is honest about that.
        assert result.rounds_executed == budget
        assert result.rounds_saved == 0

    @both_engines
    def test_gst_gate_defers_detection(self, engine):
        """Under gst > 0 the detector must ignore pre-GST epochs even if
        a view looks unanimous: no decision lands before the first
        trusted tally round."""
        conditions = NetworkConditions(
            delta=2, gst=8, latency=("uniform", 1, 2), drop_rate=0.2)
        trusted = conditions.trusted_send_round
        assert trusted == 4
        n, f = 13, 4
        for seed in range(5):
            instance = build_phase_king_early_stop(
                n, f, [1] * n, seed=seed, conditions=conditions)
            result = run_instance(instance, f, seed=seed,
                                  conditions=conditions, scheduler=engine)
            assert result.consistent() and result.agreement_valid()
            assert min(result.decision_rounds()) > trusted

    @both_engines
    def test_randomized_conditions_property(self, engine):
        """Seeded sweep over random Δ-bounded conditions: agreement,
        validity, and termination hold while detection staggers."""
        rng = random.Random(20260728)
        n, f = 13, 4
        for trial in range(8):
            delta = rng.randint(2, 4)
            gst = rng.choice((0, 4, 8, 12))
            drop = rng.uniform(0.0, 0.25) if gst else 0.0
            conditions = NetworkConditions(
                delta=delta, gst=gst, latency=("uniform", 1, delta),
                drop_rate=drop)
            seed = rng.randint(0, 10_000)
            instance = build_phase_king_early_stop(
                n, f, [i % 2 for i in range(n)], seed=seed,
                conditions=conditions)
            result = run_instance(instance, f, seed=seed,
                                  conditions=conditions, scheduler=engine)
            assert result.consistent(), (trial, delta, gst, drop, seed)
            assert result.agreement_valid(), (trial, delta, gst, drop, seed)
            assert result.all_decided(), (trial, delta, gst, drop, seed)


# ---------------------------------------------------------------------------
# Quadratic-BA early stopping.
# ---------------------------------------------------------------------------


class TestQuadraticEarlyStop:
    def test_fast_decide_beats_plain_without_faults(self):
        n, f = 9, 4
        plain = run_instance(
            build_quadratic_ba(n, f, [1] * n, seed=2), f, seed=2)
        early = run_instance(
            build_quadratic_ba_early_stop(n, f, [1] * n, seed=2), f, seed=2)
        assert early.consistent() and early.agreement_valid()
        assert early.all_decided()
        assert early.honest_outputs == plain.honest_outputs
        assert early.rounds_executed < plain.rounds_executed

    def test_crash_adversary_makes_variant_identical_to_plain(self):
        """Crashed nodes never vote, unanimity is unobservable, and the
        fast path must be completely inert: same outputs, same rounds,
        same transcript as the fixed protocol."""
        n, f = 9, 4
        for seed in range(3):
            plain_instance = build_quadratic_ba(n, f, [1] * n, seed=seed)
            plain = run_instance(plain_instance, f, CrashAdversary(),
                                 seed=seed)
            early_instance = build_quadratic_ba_early_stop(
                n, f, [1] * n, seed=seed)
            early = run_instance(early_instance, f, CrashAdversary(),
                                 seed=seed)
            assert early.outputs == plain.outputs
            assert early.rounds_executed == plain.rounds_executed
            assert early.rounds_saved == plain.rounds_saved
            assert len(early.transcript) == len(plain.transcript)

    @both_engines
    def test_randomized_conditions_property(self, engine):
        """Random Δ-bounded conditions with the Δ-deadline scheduler and
        crashes: the variant keeps the invariants of the original."""
        rng = random.Random(42)
        n, f = 9, 4
        for trial in range(8):
            delta = rng.randint(2, 4)
            gst = rng.choice((0, 6, 12))
            conditions = NetworkConditions(
                delta=delta, gst=gst, latency=("uniform", 1, delta),
                drop_rate=rng.uniform(0.0, 0.2) if gst else 0.0)
            seed = rng.randint(0, 10_000)
            adversary = rng.choice(
                (None, CrashAdversary(), DelayAdversary()))
            instance = build_quadratic_ba_early_stop(
                n, f, [i % 2 for i in range(n)], seed=seed,
                conditions=conditions)
            result = run_instance(instance, f, adversary, seed=seed,
                                  conditions=conditions, scheduler=engine)
            assert result.consistent(), (trial, delta, gst, seed)
            assert result.agreement_valid(), (trial, delta, gst, seed)


# ---------------------------------------------------------------------------
# Scenario layer, sweep library, artifacts.
# ---------------------------------------------------------------------------


class TestEarlyStopSweeps:
    def test_early_stop_vs_delta_monotone(self):
        """The acceptance criterion: rounds_saved grows monotonically
        with the Δ-headroom, for both early-stop scenarios."""
        result = run_sweep(SWEEPS["early-stop-vs-delta"])
        for scenario in ("phase-king-early-stop", "quadratic-early-stop"):
            cells = result.scenario(scenario)
            saved = [cell.metrics["mean_rounds_saved"] for cell in cells]
            assert all(a <= b for a, b in zip(saved, saved[1:])), (
                scenario, saved)
            assert saved[0] < saved[-1], (scenario, saved)
            assert all(cell.metrics["violation_rate"] == 0.0
                       for cell in cells)

    def test_rounds_saved_column_only_for_early_stop_protocols(self):
        sweep = SweepSpec(
            name="column-scope",
            scenarios=(
                ScenarioSpec(
                    name="plain", protocol="phase-king",
                    fixed={"n": 9, "f": 2}, inputs="ones", seeds=(0,)),
                ScenarioSpec(
                    name="early", protocol="phase-king-early-stop",
                    fixed={"n": 9, "f": 2}, inputs="ones", seeds=(0,)),
            ),
        )
        result = run_sweep(sweep)
        plain_row, early_row = [cell.row() for cell in result.cells]
        assert "mean_rounds_saved" not in plain_row
        assert early_row["mean_rounds_saved"] > 0

    def test_worker_pool_determinism(self):
        """Early-stop builders receive conditions through the pickled
        worker path; rows must match the sequential run exactly."""
        spec = SweepSpec(
            name="early-stop-workers",
            scenarios=(
                ScenarioSpec(
                    name="phase-king-early-stop",
                    protocol="phase-king-early-stop",
                    grid={"network": ("perfect", "lan")},
                    fixed={"n": 9, "f": 2}, inputs="ones",
                    seeds=range(2)),
            ),
        )
        sequential = run_sweep(spec, workers=1)
        fanned = run_sweep(spec, workers=2)
        assert sequential.rows() == fanned.rows()

    def test_attack_partition_studies_execute(self):
        """theorem4 / dolev-reischuk executors now accept a network
        binding and still find their starved victim under a healed
        split."""
        result = run_sweep(SWEEPS["partition-heal"])
        t4 = result.scenario("theorem4-under-partition")
        assert [cell.metrics["violation_rate"] for cell in t4] == [1.0, 1.0]
        dr = result.scenario("dolev-reischuk-under-partition")
        assert all(cell.metrics["consistency_violated"] for cell in dr)

    def test_attack_executors_still_reject_network_for_pure_analysis(self):
        from repro.errors import ConfigurationError

        spec = ScenarioSpec(
            name="census", executor="committee-census",
            fixed={"n": 32, "f": 8, "lam": 12, "network": "lan"},
            seeds=(0,))
        with pytest.raises(ConfigurationError):
            spec.cells()
