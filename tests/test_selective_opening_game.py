"""Tests for the Definition 20 selective-opening game apparatus."""

import pytest

from repro.crypto.games import (
    ComplianceViolation,
    RANDOM_WORLD,
    REAL_WORLD,
    SelectiveOpeningChallenger,
    run_distinguisher,
    statistical_distinguisher,
)
from repro.errors import ReproError


class TestChallengerMechanics:
    def test_create_and_evaluate(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=1)
        index = challenger.create_instance()
        value = challenger.evaluate(index, "m")
        assert challenger.group.is_element(value)

    def test_evaluations_are_deterministic(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=1)
        index = challenger.create_instance()
        assert challenger.evaluate(index, "m") == challenger.evaluate(
            index, "m")

    def test_corrupt_reveals_the_real_key(self):
        """Selective opening hands over exactly the instance's key: the
        revealed key re-derives every past and future evaluation."""
        from repro.crypto.prf import DdhPrf
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=2)
        index = challenger.create_instance()
        observed = challenger.evaluate(index, "m")
        key = challenger.corrupt(index)
        rebuilt = DdhPrf(challenger.group, key)
        assert rebuilt.evaluate("m") == observed

    def test_real_world_challenges_match_prf(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=3)
        index = challenger.create_instance()
        value = challenger.challenge(index, "c")
        key = challenger.corrupt(challenger.create_instance())
        # independent instance corruption doesn't disturb the challenge
        assert challenger.challenge(index, "c") == value

    def test_random_world_is_consistent_per_query(self):
        challenger = SelectiveOpeningChallenger(RANDOM_WORLD, seed=3)
        index = challenger.create_instance()
        assert challenger.challenge(index, "c") == challenger.challenge(
            index, "c")

    def test_worlds_differ(self):
        real = SelectiveOpeningChallenger(REAL_WORLD, seed=4)
        rand = SelectiveOpeningChallenger(RANDOM_WORLD, seed=4)
        i1, i2 = real.create_instance(), rand.create_instance()
        assert real.challenge(i1, "x") != rand.challenge(i2, "x")

    def test_unknown_instance_rejected(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD)
        with pytest.raises(ReproError):
            challenger.evaluate(5, "m")

    def test_invalid_world_bit_rejected(self):
        with pytest.raises(ValueError):
            SelectiveOpeningChallenger(7)


class TestCompliance:
    def test_corrupting_the_challenge_instance_is_flagged(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=5)
        index = challenger.create_instance()
        challenger.challenge(index, "m")
        challenger.corrupt(index)
        with pytest.raises(ComplianceViolation):
            challenger.assert_compliant()

    def test_challenge_duplicating_evaluation_is_flagged(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=5)
        index = challenger.create_instance()
        challenger.evaluate(index, "m")
        challenger.challenge(index, "m")
        with pytest.raises(ComplianceViolation):
            challenger.assert_compliant()

    def test_compliant_run_passes(self):
        challenger = SelectiveOpeningChallenger(REAL_WORLD, seed=5)
        a = challenger.create_instance()
        b = challenger.create_instance()
        challenger.evaluate(a, "m1")
        challenger.corrupt(a)
        challenger.challenge(b, "m2")
        challenger.assert_compliant()

    def test_non_compliant_trivial_win_demonstration(self):
        """Why compliance matters: corrupting the challenge instance lets
        the adversary recompute the challenge and win with certainty."""
        from repro.crypto.prf import DdhPrf

        def cheating_adversary(challenger):
            index = challenger.create_instance()
            value = challenger.challenge(index, "m")
            key = challenger.corrupt(index)  # non-compliant!
            return (REAL_WORLD
                    if DdhPrf(challenger.group, key).evaluate("m") == value
                    else RANDOM_WORLD)

        # The cheat distinguishes perfectly...
        real = SelectiveOpeningChallenger(REAL_WORLD, seed=6)
        rand = SelectiveOpeningChallenger(RANDOM_WORLD, seed=6)
        assert cheating_adversary(real) == REAL_WORLD
        assert cheating_adversary(rand) == RANDOM_WORLD
        # ...and is caught by the compliance check.
        with pytest.raises(ComplianceViolation):
            real.assert_compliant()


class TestStatisticalDistinguisher:
    def test_compliant_distinguisher_has_no_advantage(self):
        """Over many seeds the statistical adversary's guesses are
        uncorrelated with the world bit (advantage ~ 0)."""
        agreements = 0
        trials = 40
        for seed in range(trials):
            real_guess, random_guess = run_distinguisher(
                statistical_distinguisher, seed=seed)
            # "Winning" both worlds means distinguishing.
            agreements += (real_guess == REAL_WORLD
                           and random_guess == RANDOM_WORLD)
        # A distinguisher with advantage δ wins ~(1/2 + δ)·trials... here
        # expect ~25% (two independent fair guesses); allow wide noise.
        assert agreements < 0.6 * trials
