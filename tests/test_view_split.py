"""Tests for the view-splitting adversary (divergent certificate views)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversaries import ViewSplitAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance
from repro.harness.invariants import check_aba_invariants
from repro.protocols import (
    build_dolev_strong,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=30, epsilon=0.1)


class TestViewSplitSafety:
    @given(st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_consistency_survives_divergent_views(self, seed):
        n, f = 200, 60
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=seed, params=PARAMS)
        adversary = ViewSplitAdversary(instance)
        result = run_instance(instance, f, adversary, seed=seed)
        assert result.consistent()
        violations = check_aba_invariants(
            result, instance.nodes, instance.services["threshold"])
        assert violations == [], violations

    def test_quadratic_protocol_also_survives(self):
        n, f = 9, 4
        for seed in range(3):
            instance = build_quadratic_ba(
                n, f, [i % 2 for i in range(n)], seed=seed)
            adversary = ViewSplitAdversary(instance)
            result = run_instance(instance, f, adversary, seed=seed)
            assert result.consistent()

    def test_split_messages_are_unicast(self):
        """The attack's signature: corrupt votes go to halves, never to
        everyone (multicasts would re-merge the views)."""
        n, f = 100, 30
        instance = build_subquadratic_ba(n, f, [0] * n, seed=1,
                                         params=PARAMS)
        adversary = ViewSplitAdversary(instance)
        result = run_instance(instance, f, adversary, seed=1)
        corrupt_multicasts = [
            envelope for envelope in result.transcript
            if not envelope.honest_sender and envelope.is_multicast]
        assert corrupt_multicasts == []

    def test_liveness_recovers(self):
        """A unique honest proposer re-merges the views (Lemma 12)."""
        n, f = 150, 45
        decided = 0
        for seed in range(4):
            instance = build_subquadratic_ba(
                n, f, [i % 2 for i in range(n)], seed=seed, params=PARAMS)
            adversary = ViewSplitAdversary(instance)
            result = run_instance(instance, f, adversary, seed=seed)
            decided += result.all_decided()
        assert decided >= 3

    def test_rejects_unsupported_protocols(self):
        instance = build_dolev_strong(10, 3, 1)
        with pytest.raises(ConfigurationError):
            ViewSplitAdversary(instance)
