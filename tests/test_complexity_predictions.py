"""Tests comparing measured communication against the closed forms."""

import pytest

from repro.adversaries import CrashAdversary
from repro.analysis.complexity import (
    expected_dolev_strong_multicasts,
    expected_iterations_subquadratic,
    expected_quadratic_multicasts,
    expected_subquadratic_multicasts,
    message_size_bound_bits,
)
from repro.harness import run_trials
from repro.protocols import (
    build_dolev_strong,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters


class TestClosedForms:
    def test_subquadratic_prediction_monotone_in_lambda(self):
        assert (expected_subquadratic_multicasts(20, 3)
                < expected_subquadratic_multicasts(40, 3))

    def test_subquadratic_prediction_monotone_in_iterations(self):
        assert (expected_subquadratic_multicasts(30, 2)
                < expected_subquadratic_multicasts(30, 5))

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            expected_subquadratic_multicasts(30, 0)

    def test_expected_iterations_close_to_2e(self):
        assert 4.0 < expected_iterations_subquadratic(1000) < 6.0

    def test_message_size_bound_scales_linearly_in_lambda(self):
        small = message_size_bound_bits(20, 512, 32)
        large = message_size_bound_bits(40, 512, 32)
        assert large == pytest.approx(2 * small)


class TestMeasuredVsPredicted:
    def test_subquadratic_multicasts_within_prediction_envelope(self):
        n, lam = 400, 24
        params = SecurityParameters(lam=lam, epsilon=0.15)
        stats = run_trials(build_subquadratic_ba, f=0, seeds=range(3),
                           n=n, inputs=[1] * n, params=params)
        # Unanimous honest run decides in iteration 1.
        predicted = expected_subquadratic_multicasts(lam, iterations=1)
        assert 0.4 * predicted < stats.mean_multicasts < 2.5 * predicted

    def test_quadratic_multicasts_match_rounds_times_n(self):
        n, f = 21, 10
        stats = run_trials(build_quadratic_ba, f=f, seeds=range(3),
                           n=n, inputs=[1] * n,
                           adversary_factory=lambda inst: CrashAdversary())
        predicted = expected_quadratic_multicasts(
            n, f, rounds=stats.mean_rounds)
        # Not every honest node speaks every round (decided nodes halt);
        # the prediction is an upper envelope of the right order.
        assert stats.mean_multicasts <= predicted + n
        assert stats.mean_multicasts >= 0.2 * predicted

    def test_dolev_strong_relay_count_exact(self):
        n, f = 16, 7
        stats = run_trials(build_dolev_strong, f=f, seeds=range(2),
                           n=n, sender_input=1)
        # All honest: exactly one extracted bit, each node relays once.
        assert stats.mean_multicasts == expected_dolev_strong_multicasts(
            n, 0, extracted_bits=1)
