"""Leader-family conformance and leader-killer regressions.

Two pinned claims for ``protocols/leader_ba.py``:

- **Both-engines identity** (the bar of
  ``test_event_engine_differential.py``): event-scheduler and lock-step
  executions of the leader family are byte-identical — outputs, decided
  rounds, transcripts, metrics, every ``NetworkStats`` counter, and the
  conditioned network's RNG end state — across the named presets, both
  adversaries, and the chained workload.
- **Leader-killer regressions**: assassinating every announced leader
  costs exactly the rotation views the budget predicts, but an honest
  view after GST (budget exhausted, round-robin rotation past the
  killed set) still decides; unsupported targets are rejected with a
  clear :class:`~repro.errors.ConfigurationError` instead of silently
  attacking the wrong schedule.
"""

import dataclasses

import pytest

from repro.adversaries import (
    CrashAdversary,
    LeaderKillerAdversary,
    ViewSplitAdversary,
)
from repro.errors import ConfigurationError
from repro.harness.runner import run_instance
from repro.protocols import (
    build_dolev_strong,
    build_leader_ba,
    build_leader_chain,
    build_phase_king,
    build_quadratic_ba,
)
from repro.protocols.leader_ba import decision_view_of
from repro.sim.conditions import NETWORKS, NetworkConditions
from repro.sim.engine import SCHEDULER_EVENT, SCHEDULER_LOCKSTEP, Simulation
from tests.engines import both_engines


def _snapshot(result):
    """Everything a conditioned execution observably produced."""
    return {
        "outputs": result.outputs,
        "decided_rounds": result.decided_rounds,
        "rounds_executed": result.rounds_executed,
        "rounds_saved": result.rounds_saved,
        "transcript": [
            (e.envelope_id, e.sender, e.recipient, repr(e.payload),
             e.round_sent, e.honest_sender)
            for e in result.transcript],
        "metrics": (result.metrics.honest_multicast_count,
                    result.metrics.honest_multicast_bits,
                    result.metrics.honest_unicast_count,
                    result.metrics.honest_unicast_bits,
                    result.metrics.corrupt_multicast_count,
                    result.metrics.corrupt_unicast_count,
                    result.metrics.max_message_bits,
                    dict(result.metrics.per_round_honest_multicasts),
                    result.metrics.per_round_multicast_bits()),
        "network_stats": dataclasses.asdict(result.network_stats),
    }


def _inputs(n):
    return [i % 2 for i in range(n)]


ADVERSARIES = {
    "none": lambda instance: None,
    "crash": lambda instance: CrashAdversary(),
    "leader-killer": LeaderKillerAdversary,
    "view-split": ViewSplitAdversary,
}

CONDITIONS = ("lan", "wan", "lossy", "split-heal")

GRID = [(builder, network, adversary)
        for builder in ("leader-ba", "leader-chain")
        for network in CONDITIONS
        for adversary in ("none", "leader-killer")] + [
    ("leader-ba", "wan", "crash"),
    ("leader-ba", "lossy", "view-split"),
    ("leader-chain", "wan", "view-split"),
]


def _build(builder, conditions):
    if builder == "leader-chain":
        return build_leader_chain(10, 3, _inputs(10), seed=7, heights=2,
                                  conditions=conditions)
    return build_leader_ba(10, 3, _inputs(10), seed=7,
                           conditions=conditions)


def _execute(builder, network, adversary, scheduler, **kwargs):
    conditions = NETWORKS[network]
    instance = _build(builder, conditions)
    return run_instance(instance, 3, ADVERSARIES[adversary](instance),
                        seed=7, conditions=conditions, scheduler=scheduler,
                        **kwargs)


class TestBothEnginesIdentity:
    @pytest.mark.parametrize("builder,network,adversary", GRID,
                             ids=[f"{b}-{n}-{a}" for b, n, a in GRID])
    def test_event_engine_matches_lockstep(self, builder, network,
                                           adversary):
        event = _execute(builder, network, adversary, SCHEDULER_EVENT)
        lockstep = _execute(builder, network, adversary,
                            SCHEDULER_LOCKSTEP)
        assert _snapshot(event) == _snapshot(lockstep)
        # Real conditioned executions, not fast-path ones — and the
        # guarantees hold while the engines agree.
        assert event.network_stats is not None
        assert event.consistent() and event.agreement_valid()

    @both_engines
    def test_decides_on_either_engine(self, engine):
        result = _execute("leader-ba", "wan", "none", engine)
        assert result.all_decided() and result.consistent()

    def test_rng_streams_end_in_the_same_state(self):
        """Draw-order identity, not just draw-outcome identity: the
        conditioned network's RNG ends a leader-family execution in the
        same state under both loops."""
        conditions = NETWORKS["lossy"]

        def final_rng_state(scheduler):
            instance = build_leader_ba(10, 3, _inputs(10), seed=13,
                                       conditions=conditions)
            simulation = Simulation(
                nodes=instance.nodes, corruption_budget=3, seed=13,
                max_rounds=instance.max_rounds, inputs=instance.inputs,
                signing_capabilities=instance.signing_capabilities,
                mining_capabilities=instance.mining_capabilities,
                conditions=conditions, scheduler=scheduler)
            simulation.run()
            return simulation.network._rng.getstate()

        assert final_rng_state(SCHEDULER_EVENT) == \
            final_rng_state(SCHEDULER_LOCKSTEP)


class TestQuorumThreshold:
    """Regressions for the quorum-intersection fix: the threshold is
    ``n - f`` (not a fixed ``2f + 1``), so two quorums intersect in more
    than ``f`` nodes for *every* admitted ``n > 3f`` — including the
    ``n = 3f + 2`` / ``3f + 3`` configurations where ``2f + 1`` quorums
    would admit equal-rank prevote-QCs for opposite bits."""

    @pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (6, 1),
                                     (7, 2), (8, 2), (9, 2), (10, 3)])
    def test_threshold_is_n_minus_f(self, n, f):
        instance = build_leader_ba(n, f, _inputs(n))
        threshold = instance.services["threshold"]
        assert threshold == n - f
        # The safety bound itself: two quorums overlap in more nodes
        # than the adversary can double-vote.
        assert 2 * threshold - n > f

    @pytest.mark.parametrize("n,f", [(8, 2), (9, 2)])
    def test_view_split_cannot_break_agreement_beyond_3f_plus_1(
            self, n, f):
        """The review's concrete failure shape: n > 3f + 1 with an
        equivocating corrupt leader unicasting per-half conflicting
        proposals and prevotes under pre-GST drops."""
        conditions = NetworkConditions(delta=2, gst=6,
                                       latency=("uniform", 1, 2),
                                       drop_rate=0.25)
        for seed in range(5):
            instance = build_leader_ba(n, f, _inputs(n), seed=seed,
                                       conditions=conditions)
            adversary = ViewSplitAdversary(instance)
            result = run_instance(instance, f, adversary, seed=seed,
                                  conditions=conditions,
                                  scheduler=SCHEDULER_EVENT)
            assert result.consistent(), f"n={n} f={f} seed {seed}"
            assert result.agreement_valid(), f"n={n} f={f} seed {seed}"


class TestLeaderKillerRegressions:
    def test_honest_view_after_gst_still_decides(self):
        """The pinned liveness claim: the killer burns its whole budget
        on the first f leaders, and the first surviving honest leader's
        view after GST decides — within the Δ-derived budget."""
        conditions = NetworkConditions(delta=2, gst=8,
                                       latency=("uniform", 1, 2),
                                       drop_rate=0.2)
        for seed in range(5):
            instance = build_leader_ba(10, 3, _inputs(10), seed=seed,
                                       conditions=conditions)
            adversary = LeaderKillerAdversary(instance)
            result = run_instance(instance, 3, adversary, seed=seed,
                                  conditions=conditions,
                                  scheduler=SCHEDULER_EVENT)
            assert result.all_decided(), f"seed {seed}"
            assert result.consistent() and result.agreement_valid()
            # The budget is spent on announced leaders, nobody else.
            assert len(adversary.killed) <= 3
            assert set(adversary.killed) == set(result.corrupt_set)

    def test_kills_track_the_view_schedule(self):
        """Under lock-step the round-robin leaders of views 1, 2, ...
        are assassinated in order until the budget runs dry, and the
        settled view lands right behind the killed prefix."""
        instance = build_leader_ba(10, 3, _inputs(10), seed=1)
        adversary = LeaderKillerAdversary(instance)
        result = run_instance(instance, 3, adversary, seed=1)
        assert adversary.killed == [1, 2, 3]  # leader(view) = view % n
        assert result.all_decided()
        assert decision_view_of(result) == 4  # first un-killed leader

    def test_family_is_sniffed_from_the_instance(self):
        leader = LeaderKillerAdversary(
            build_leader_ba(7, 2, _inputs(7)))
        assert leader.family == "leader-ba"
        chain = LeaderKillerAdversary(
            build_leader_chain(7, 2, _inputs(7), heights=2))
        assert chain.family == "leader-ba"
        aba = LeaderKillerAdversary(
            build_quadratic_ba(8, 3, _inputs(8)))
        assert aba.family == "aba"
        king = LeaderKillerAdversary(
            build_phase_king(7, 2, _inputs(7)))
        assert king.family == "phase-king"

    def test_rejects_unsupported_targets(self):
        with pytest.raises(ConfigurationError,
                           match="needs an announced leader oracle"):
            LeaderKillerAdversary(build_dolev_strong(5, 1, sender_input=1))
        with pytest.raises(ConfigurationError, match="unknown family"):
            LeaderKillerAdversary(build_quadratic_ba(8, 3, _inputs(8)),
                                  family="hotstuff")
