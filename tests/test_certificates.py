"""Tests for certificates and their ranking."""

from repro.protocols.certificates import (
    Certificate,
    GENESIS_RANK,
    certificate_from_votes,
    rank,
    verify_certificate,
)
from repro.protocols.messages import SignedVote


def _votes(iteration, bit, voters):
    return {voter: f"auth-{voter}" for voter in voters}


def _accept_all(vote: SignedVote) -> bool:
    return True


def _reject_all(vote: SignedVote) -> bool:
    return False


class TestRanking:
    def test_none_is_genesis_rank(self):
        assert rank(None) == GENESIS_RANK == 0

    def test_rank_is_iteration(self):
        certificate = certificate_from_votes(3, 1, _votes(3, 1, [0, 1]), 2)
        assert rank(certificate) == 3

    def test_higher_iteration_outranks(self):
        low = certificate_from_votes(2, 0, _votes(2, 0, [0, 1]), 2)
        high = certificate_from_votes(5, 1, _votes(5, 1, [0, 1]), 2)
        assert rank(high) > rank(low) > rank(None)


class TestConstruction:
    def test_takes_exactly_threshold_votes(self):
        certificate = certificate_from_votes(
            1, 0, _votes(1, 0, range(10)), threshold=4)
        assert len(certificate.votes) == 4

    def test_votes_are_canonically_ordered(self):
        certificate = certificate_from_votes(
            1, 0, {5: "a", 2: "b", 9: "c"}, threshold=3)
        assert [v.voter for v in certificate.votes] == [2, 5, 9]

    def test_votes_carry_iteration_and_bit(self):
        certificate = certificate_from_votes(7, 1, _votes(7, 1, [3, 4]), 2)
        assert all(v.iteration == 7 and v.bit == 1
                   for v in certificate.votes)


class TestVerification:
    def test_valid_certificate_accepted(self):
        certificate = certificate_from_votes(1, 0, _votes(1, 0, range(3)), 3)
        assert verify_certificate(certificate, 3, _accept_all)

    def test_too_few_votes_rejected(self):
        certificate = certificate_from_votes(1, 0, _votes(1, 0, range(2)), 2)
        assert not verify_certificate(certificate, 3, _accept_all)

    def test_duplicate_voters_rejected(self):
        vote = SignedVote(iteration=1, bit=0, voter=4, auth="a")
        certificate = Certificate(iteration=1, bit=0,
                                  votes=(vote, vote, vote))
        assert not verify_certificate(certificate, 2, _accept_all)

    def test_mismatched_vote_bit_rejected(self):
        good = SignedVote(iteration=1, bit=0, voter=1, auth="a")
        bad = SignedVote(iteration=1, bit=1, voter=2, auth="b")
        certificate = Certificate(iteration=1, bit=0, votes=(good, bad))
        assert not verify_certificate(certificate, 2, _accept_all)

    def test_mismatched_vote_iteration_rejected(self):
        good = SignedVote(iteration=1, bit=0, voter=1, auth="a")
        stale = SignedVote(iteration=2, bit=0, voter=2, auth="b")
        certificate = Certificate(iteration=1, bit=0, votes=(good, stale))
        assert not verify_certificate(certificate, 2, _accept_all)

    def test_bad_auth_rejected(self):
        certificate = certificate_from_votes(1, 0, _votes(1, 0, range(3)), 3)
        assert not verify_certificate(certificate, 3, _reject_all)

    def test_iteration_zero_certificate_rejected(self):
        """Only the implicit None represents the genesis certificate."""
        certificate = Certificate(iteration=0, bit=0, votes=())
        assert not verify_certificate(certificate, 0, _accept_all)

    def test_non_bit_rejected(self):
        certificate = Certificate(iteration=1, bit=7, votes=())
        assert not verify_certificate(certificate, 0, _accept_all)

    def test_single_bad_vote_poisons_certificate(self):
        votes = _votes(1, 0, range(4))
        certificate = certificate_from_votes(1, 0, votes, 4)

        def check(vote):
            return vote.voter != 2

        assert not verify_certificate(certificate, 4, check)
