"""Unit tests for the adversary implementations."""

import pytest

from repro.adversaries import (
    AdaptiveSpeakerAdversary,
    CommitteeTakeoverAdversary,
    CrashAdversary,
    IsolationAdversary,
    LeaderKillerAdversary,
    StaticEquivocationAdversary,
)
from repro.errors import ConfigurationError
from repro.harness import run_instance
from repro.protocols import (
    build_dolev_strong,
    build_naive_broadcast,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.sim.trace import summarize_transcript
from repro.types import AdversaryModel, SecurityParameters

PARAMS = SecurityParameters(lam=24, epsilon=0.1)


class TestCrashAdversary:
    def test_corrupts_exactly_budget(self):
        n, f = 20, 6
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, CrashAdversary(), seed=0)
        assert result.corruptions_used == f

    def test_explicit_victims(self):
        n, f = 20, 3
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f,
                              CrashAdversary(victims=[2, 5, 9]), seed=0)
        assert result.corrupt_set == {2, 5, 9}

    def test_victims_truncated_to_budget(self):
        n, f = 20, 2
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f,
                              CrashAdversary(victims=[2, 5, 9]), seed=0)
        assert result.corrupt_set == {2, 5}

    def test_crashed_nodes_stay_silent(self):
        n, f = 20, 6
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        result = run_instance(instance, f, CrashAdversary(), seed=0)
        silent = {node for node in range(n - f, n)}
        speakers = summarize_transcript(result.transcript).honest_speakers
        assert not (speakers & silent)


class TestStaticEquivocation:
    def test_corrupt_nodes_send_both_bits(self):
        n, f = 100, 30
        instance = build_subquadratic_ba(n, f, [i % 2 for i in range(n)],
                                         seed=1, params=PARAMS)
        adversary = StaticEquivocationAdversary(instance)
        result = run_instance(instance, f, adversary, seed=1)
        corrupt_votes = {}
        for envelope in result.transcript:
            if envelope.honest_sender:
                continue
            payload = envelope.payload
            if type(payload).__name__ == "VoteMsg":
                corrupt_votes.setdefault(payload.sender, set()).add(
                    payload.bit)
        # At least one corrupt node got to push both bits in iteration 1.
        assert any(bits == {0, 1} for bits in corrupt_votes.values())

    def test_rejects_unknown_protocol_family(self):
        instance = build_dolev_strong(10, 3, 1)
        with pytest.raises(ConfigurationError):
            StaticEquivocationAdversary(instance)


class TestAdaptiveSpeaker:
    def test_corrupts_only_speakers(self):
        n, f = 150, 40
        instance = build_subquadratic_ba(n, f, [1] * n, seed=2, params=PARAMS)
        adversary = AdaptiveSpeakerAdversary(instance)
        result = run_instance(instance, f, adversary, seed=2)
        speakers = summarize_transcript(result.transcript).honest_speakers
        assert set(adversary.corrupted) <= speakers

    def test_spare_budget_respected(self):
        n, f = 150, 40
        instance = build_subquadratic_ba(n, f, [1] * n, seed=2, params=PARAMS)
        adversary = AdaptiveSpeakerAdversary(instance, spare_budget=35)
        result = run_instance(instance, f, adversary, seed=2)
        assert result.corruptions_used <= f - 35


class TestIsolation:
    def test_requires_strong_adaptivity(self):
        from repro.errors import CapabilityError
        n, f = 60, 20
        instance = build_naive_broadcast(n, f, 1)
        with pytest.raises(CapabilityError):
            run_instance(instance, f, IsolationAdversary(victim=3),
                         model=AdversaryModel.ADAPTIVE, seed=0)

    def test_isolates_victim_of_naive_broadcast(self):
        n, f = 60, 20
        instance = build_naive_broadcast(n, f, 0, default_when_silent=1)
        adversary = IsolationAdversary(victim=3)
        result = run_instance(instance, f, adversary,
                              model=AdversaryModel.STRONGLY_ADAPTIVE, seed=0)
        assert result.outputs[3] == 1
        assert not result.consistent()
        assert adversary.removed_copies > 0

    def test_corruption_bill_equals_senders_to_victim(self):
        n, f = 60, 20
        instance = build_naive_broadcast(n, f, 0, relay_width=2)
        adversary = IsolationAdversary(victim=3)
        result = run_instance(instance, f, adversary,
                              model=AdversaryModel.STRONGLY_ADAPTIVE, seed=0)
        # Only the sender and the victim's two ring-predecessors ever try.
        assert result.corruptions_used <= 4


class TestLeaderKiller:
    def test_needs_an_oracle(self):
        instance = build_subquadratic_ba(50, 10, [1] * 50, params=PARAMS)
        with pytest.raises(ConfigurationError):
            LeaderKillerAdversary(instance)

    def test_kills_distinct_leaders(self):
        n, f = 13, 6
        instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)],
                                      seed=9)
        adversary = LeaderKillerAdversary(instance)
        result = run_instance(instance, f, adversary, seed=9)
        assert len(set(adversary.killed)) == len(adversary.killed)
        assert result.corruptions_used == len(adversary.killed)

    def test_budget_limits_the_killing_spree(self):
        n, f = 13, 2
        instance = build_quadratic_ba(n, f, [i % 2 for i in range(n)],
                                      seed=9)
        adversary = LeaderKillerAdversary(instance)
        result = run_instance(instance, f, adversary, seed=9)
        assert len(adversary.killed) <= f
        assert result.consistent()


class TestCommitteeTakeover:
    def test_needs_committee_services(self):
        instance = build_quadratic_ba(10, 4, [1] * 10)
        with pytest.raises(ConfigurationError):
            CommitteeTakeoverAdversary(instance)
