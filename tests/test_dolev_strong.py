"""Tests for Dolev–Strong broadcast."""

import pytest

from repro.adversaries import CrashAdversary
from repro.errors import ConfigurationError
from repro.harness import run_instance
from repro.protocols import build_dolev_strong
from repro.protocols.dolev_strong import ChainMsg
from repro.sim.adversary import Adversary


class EquivocatingSenderAdversary(Adversary):
    """Corrupts the sender and sends signed 0 to half, signed 1 to all."""

    def __init__(self, instance):
        super().__init__()
        self.registry = instance.services["registry"]
        self.sender = instance.services["sender"]
        self.grant = None

    def on_setup(self):
        self.grant = self.api.corrupt(self.sender)

    def react(self, round_index, staged):
        if round_index != 0:
            return
        capability = self.grant.signing_capability
        for bit, targets in ((0, range(1, self.api.n, 2)),
                             (1, range(2, self.api.n, 2))):
            signature = capability.sign(("ds", self.sender, bit))
            message = ChainMsg(bit=bit, chain=((self.sender, signature),))
            for target in targets:
                self.api.inject(self.sender, target, message)


class TestHonestBroadcast:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_validity(self, bit):
        n, f = 10, 4
        instance = build_dolev_strong(n, f, bit, seed=0)
        result = run_instance(instance, f, seed=0)
        assert set(result.honest_outputs) == {bit}
        assert result.broadcast_valid(0, bit)

    def test_terminates_after_f_plus_one_rounds(self):
        n, f = 10, 4
        instance = build_dolev_strong(n, f, 1, seed=0)
        result = run_instance(instance, f, seed=0)
        assert result.rounds_executed <= f + 3

    def test_crash_faults_tolerated(self):
        n, f = 10, 4
        instance = build_dolev_strong(n, f, 1, seed=0)
        result = run_instance(instance, f, CrashAdversary(victims=[5, 6, 7]),
                              seed=0)
        assert result.consistent()
        assert result.broadcast_valid(0, 1)

    def test_tolerates_nearly_all_corrupt(self):
        """Dolev–Strong works for any f < n (unlike the BA protocols)."""
        n, f = 6, 4
        instance = build_dolev_strong(n, f, 1, seed=0)
        result = run_instance(
            instance, f, CrashAdversary(victims=[1, 2, 3, 4]), seed=0)
        assert result.consistent()


class TestEquivocatingSender:
    def test_consistency_despite_split_sends(self):
        """The relay rule forces all honest nodes to the same extracted
        set, hence the same (default) output."""
        n, f = 10, 4
        instance = build_dolev_strong(n, f, 1, seed=3)
        adversary = EquivocatingSenderAdversary(instance)
        result = run_instance(instance, f, adversary, seed=3)
        assert result.consistent()

    def test_equivocation_detected_as_two_extracted_bits(self):
        n, f = 10, 4
        instance = build_dolev_strong(n, f, 1, seed=3)
        adversary = EquivocatingSenderAdversary(instance)
        run_instance(instance, f, adversary, seed=3)
        extracted_sizes = {len(node.extracted) for node in instance.nodes
                           if node.node_id != 0}
        assert extracted_sizes == {2}


class TestChainValidation:
    def test_forged_chain_rejected(self):
        n, f = 6, 2
        instance = build_dolev_strong(n, f, 1, seed=0)
        node = instance.nodes[2]
        bogus = ChainMsg(bit=0, chain=((0, "not-a-signature"),))
        assert not node._chain_valid(bogus, round_index=1)

    def test_chain_must_start_with_sender(self):
        n, f = 6, 2
        instance = build_dolev_strong(n, f, 1, seed=0)
        registry = instance.services["registry"]
        signature = registry.capability_for(3).sign(("ds", 0, 1))
        msg = ChainMsg(bit=1, chain=((3, signature),))
        assert not instance.nodes[2]._chain_valid(msg, round_index=1)

    def test_chain_length_must_cover_round(self):
        n, f = 6, 2
        instance = build_dolev_strong(n, f, 1, seed=0)
        registry = instance.services["registry"]
        signature = registry.capability_for(0).sign(("ds", 0, 1))
        msg = ChainMsg(bit=1, chain=((0, signature),))
        assert instance.nodes[2]._chain_valid(msg, round_index=1)
        assert not instance.nodes[2]._chain_valid(msg, round_index=2)

    def test_duplicate_signers_rejected(self):
        n, f = 6, 2
        instance = build_dolev_strong(n, f, 1, seed=0)
        registry = instance.services["registry"]
        signature = registry.capability_for(0).sign(("ds", 0, 1))
        msg = ChainMsg(bit=1, chain=((0, signature), (0, signature)))
        assert not instance.nodes[2]._chain_valid(msg, round_index=2)

    def test_configuration_bounds(self):
        with pytest.raises(ConfigurationError):
            build_dolev_strong(5, 5, 1)
