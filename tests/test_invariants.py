"""Transcript-invariant property tests (the lemma statements, live)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversaries import (
    AdaptiveSpeakerAdversary,
    CrashAdversary,
    StaticEquivocationAdversary,
)
from repro.harness import run_instance
from repro.harness.invariants import (
    check_aba_invariants,
    commits_carry_valid_certificates,
    honest_votes_unique_per_iteration,
    no_conflicting_certificates_after_decision,
    quorum_intersection_on_acks,
)
from repro.protocols import (
    build_phase_king,
    build_quadratic_ba,
    build_subquadratic_ba,
)
from repro.types import SecurityParameters

PARAMS = SecurityParameters(lam=30, epsilon=0.1)

_slow = settings(max_examples=10, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _adversary(kind, instance):
    if kind == "crash":
        return CrashAdversary()
    if kind == "equivocate":
        return StaticEquivocationAdversary(instance)
    if kind == "speaker":
        return AdaptiveSpeakerAdversary(instance)
    return None


class TestQuadraticInvariants:
    @given(st.integers(0, 10**6),
           st.sampled_from(["none", "crash", "equivocate"]))
    @_slow
    def test_lemma_invariants_hold(self, seed, adversary_kind):
        n, f = 9, 4
        instance = build_quadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=seed)
        adversary = _adversary(adversary_kind, instance)
        result = run_instance(instance, f, adversary, seed=seed)
        violations = check_aba_invariants(result, instance.nodes, f + 1)
        assert violations == [], violations


class TestSubquadraticInvariants:
    @given(st.integers(0, 10**6),
           st.sampled_from(["none", "crash", "equivocate", "speaker"]))
    @_slow
    def test_lemma_invariants_hold(self, seed, adversary_kind):
        n, f = 150, 45
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=seed, params=PARAMS)
        adversary = _adversary(adversary_kind, instance)
        result = run_instance(instance, f, adversary, seed=seed)
        threshold = instance.services["threshold"]
        violations = check_aba_invariants(result, instance.nodes, threshold)
        assert violations == [], violations

    def test_lemma13_no_conflicting_certificate(self):
        n, f = 200, 60
        instance = build_subquadratic_ba(
            n, f, [i % 2 for i in range(n)], seed=3, params=PARAMS)
        adversary = StaticEquivocationAdversary(instance)
        result = run_instance(instance, f, adversary, seed=3)
        assert no_conflicting_certificates_after_decision(
            result, instance.nodes) is None

    def test_corrupt_double_votes_do_not_trip_honest_uniqueness(self):
        """Corrupt nodes MAY vote both bits; the invariant is about
        honest senders only (the Lemma 11 counting)."""
        n, f = 150, 45
        instance = build_subquadratic_ba(
            n, f, [1] * n, seed=4, params=PARAMS)
        adversary = StaticEquivocationAdversary(instance)
        result = run_instance(instance, f, adversary, seed=4)
        assert honest_votes_unique_per_iteration(result) is None


class TestPhaseKingInvariants:
    @given(st.integers(0, 10**6), st.booleans())
    @_slow
    def test_no_epoch_has_double_ample_acks(self, seed, crash):
        n, f = 10, 3
        instance = build_phase_king(n, f, [i % 2 for i in range(n)],
                                    seed=seed, epochs=8)
        adversary = CrashAdversary() if crash else None
        result = run_instance(instance, f, adversary, seed=seed)
        threshold = instance.services["threshold"]
        assert quorum_intersection_on_acks(result, threshold) is None


class TestCheckersDetectViolations:
    """The oracles themselves must not be vacuous: feed them doctored
    transcripts and verify they fire."""

    def _run(self):
        n, f = 9, 4
        instance = build_quadratic_ba(n, f, [1] * n, seed=0)
        return instance, run_instance(instance, f, seed=0)

    def test_uniqueness_checker_fires(self):
        from repro.protocols.messages import VoteMsg
        from repro.sim.network import Envelope
        instance, result = self._run()
        forged = [
            Envelope(998, 3, None, VoteMsg(1, 0, 3, "x", None), 0, True),
            Envelope(999, 3, None, VoteMsg(1, 1, 3, "x", None), 0, True),
        ]
        result.transcript.extend(forged)
        assert honest_votes_unique_per_iteration(result) is not None

    def test_commit_checker_fires_on_missing_certificate(self):
        from repro.protocols.messages import CommitMsg
        from repro.sim.network import Envelope
        instance, result = self._run()
        result.transcript.append(
            Envelope(999, 3, None, CommitMsg(1, 1, None, 3, "x"), 0, True))
        assert commits_carry_valid_certificates(result, 5) is not None

    def test_conflict_checker_fires(self):
        from repro.protocols.certificates import certificate_from_votes
        from repro.protocols.messages import StatusMsg
        from repro.sim.network import Envelope
        instance, result = self._run()
        # All nodes decided 1 in iteration 1; forge a rank-2 cert for 0.
        certificate = certificate_from_votes(
            2, 0, {v: "a" for v in range(5)}, 5)
        result.transcript.append(
            Envelope(999, 3, None,
                     StatusMsg(3, 0, certificate, 3, "x"), 0, True))
        assert no_conflicting_certificates_after_decision(
            result, instance.nodes) is not None
