"""Tests for the experiment service (harness/service/): the job queue
and worker pool, the HTTP API end to end, concurrent overlapping
submissions, warm-store replay through the API, and artifact
byte-identity against a direct ``run_sweep``."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.harness.scenarios import run_sweep
from repro.harness.service import (
    JOB_DONE,
    JOB_QUEUED,
    ExperimentService,
    ServiceClient,
    ServiceError,
)
from repro.harness.service.app import make_server
from repro.harness.store import ExperimentStore
from repro.harness.sweep_library import SWEEPS

SMOKE_CELLS = len(SWEEPS["smoke"].expand())


@pytest.fixture()
def sqlite_store(tmp_path):
    store = ExperimentStore(tmp_path / "corpus.sqlite")
    yield store
    store.close()


@pytest.fixture()
def served(sqlite_store):
    """A live HTTP server on an ephemeral port, with its client."""
    server, service = make_server(sqlite_store, port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    yield client, sqlite_store
    server.shutdown()
    server.server_close()
    service.shutdown()


class TestServiceQueue:
    def test_submit_runs_to_done_with_counters(self, sqlite_store):
        with ExperimentService(sqlite_store, workers=2) as service:
            job_id = service.submit("smoke")
            record = service.wait(job_id, timeout=120)
        assert record["state"] == JOB_DONE
        assert record["total"] == SMOKE_CELLS
        assert record["computed"] == SMOKE_CELLS
        assert record["replayed"] == 0
        assert record["failed_cells"] == 0
        assert record["error"] is None
        assert record["started_at"] is not None
        assert record["finished_at"] is not None
        assert sqlite_store.load_sweep("smoke")["complete"] is True

    def test_resubmission_replays_everything(self, sqlite_store):
        with ExperimentService(sqlite_store, workers=2) as service:
            service.wait(service.submit("smoke"), timeout=120)
            record = service.wait(service.submit("smoke"), timeout=120)
        assert record["state"] == JOB_DONE
        assert record["replayed"] == SMOKE_CELLS
        assert record["computed"] == 0

    def test_unknown_sweep_rejected_before_enqueue(self, sqlite_store):
        with ExperimentService(sqlite_store, workers=1) as service:
            with pytest.raises(ConfigurationError):
                service.submit("no-such-sweep")
            assert service.jobs() == []

    def test_events_survive_job_completion(self, sqlite_store):
        with ExperimentService(sqlite_store, workers=2) as service:
            job_id = service.submit("smoke")
            service.wait(job_id, timeout=120)
            events = service.events(job_id)
        assert len(events) == SMOKE_CELLS
        assert [event["seq"] for event in events] == list(
            range(SMOKE_CELLS))
        assert {event["status"] for event in events} == {"computed"}
        assert {event["index"] for event in events} == set(
            range(SMOKE_CELLS))

    def test_rows_match_a_direct_run(self, sqlite_store, tmp_path):
        with ExperimentService(sqlite_store, workers=2) as service:
            service.wait(service.submit("smoke"), timeout=120)
        direct = run_sweep(SWEEPS["smoke"],
                           store=ExperimentStore(tmp_path / "tree"))
        assert sqlite_store.sweep_rows("smoke") == direct.rows()

    def test_works_against_json_backend_too(self, tmp_path):
        store = ExperimentStore(tmp_path / "tree")
        with ExperimentService(store, workers=2) as service:
            record = service.wait(service.submit("smoke"), timeout=120)
        assert record["state"] == JOB_DONE
        assert record["computed"] == SMOKE_CELLS

    def test_submit_after_shutdown_refused(self, sqlite_store):
        service = ExperimentService(sqlite_store, workers=1)
        service.shutdown()
        with pytest.raises(ConfigurationError):
            service.submit("smoke")

    def test_job_record_is_durable_across_services(self, sqlite_store):
        with ExperimentService(sqlite_store, workers=2) as service:
            job_id = service.submit("smoke")
            service.wait(job_id, timeout=120)
        revived = ExperimentService(sqlite_store, workers=1)
        try:
            record = revived.job(job_id)
            assert record["state"] == JOB_DONE
            assert record["computed"] == SMOKE_CELLS
            # The fine-grained event log is process-local, gone now.
            assert revived.events(job_id) == []
        finally:
            revived.shutdown()


class TestHttpEndToEnd:
    def test_submit_poll_fetch(self, served):
        client, store = served
        assert client.health()
        listing = client.sweeps()
        assert "smoke" in listing["available"]
        assert listing["recorded"] == []

        job_id = client.submit("smoke")
        assert client.job(job_id)["state"] in (JOB_QUEUED, "running",
                                               JOB_DONE)
        events = []
        record = client.wait(job_id, on_event=events.append,
                             max_wait=120)
        assert record["state"] == JOB_DONE
        assert record["computed"] == SMOKE_CELLS
        assert len(events) == SMOKE_CELLS
        assert all(event["fingerprint"] for event in events)

        rows = client.sweep_rows("smoke")
        assert rows["complete"] is True
        assert len(rows["rows"]) == SMOKE_CELLS
        assert client.jobs()[0]["id"] == job_id

    def test_artifacts_byte_identical_to_direct_run(self, served,
                                                    tmp_path):
        client, _ = served
        client.wait(client.submit("smoke"), max_wait=120)
        direct = run_sweep(SWEEPS["smoke"],
                           store=ExperimentStore(tmp_path / "tree"))
        json_path = direct.to_json(tmp_path / "direct.json")
        csv_path = direct.to_csv(tmp_path / "direct.csv")
        assert client.artifact("smoke", "json") == json_path.read_bytes()
        assert client.artifact("smoke", "csv") == csv_path.read_bytes()

    def test_warm_replay_through_the_api(self, served):
        client, _ = served
        client.wait(client.submit("smoke"), max_wait=120)
        statuses = []
        record = client.wait(
            client.submit("smoke"),
            on_event=lambda event: statuses.append(event["status"]),
            max_wait=120)
        assert record["state"] == JOB_DONE
        assert record["replayed"] == SMOKE_CELLS
        assert record["computed"] == 0
        assert statuses == ["replayed"] * SMOKE_CELLS

    def test_concurrent_overlapping_submissions_both_complete(self,
                                                              served):
        client, store = served
        records = []

        def submit_and_wait():
            records.append(client.wait(client.submit("smoke"),
                                       max_wait=180))

        threads = [threading.Thread(target=submit_and_wait)
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(records) == 2
        assert all(record["state"] == JOB_DONE for record in records)
        assert all(record["failed_cells"] == 0 for record in records)
        # Between them the overlapping cells were computed once or twice
        # (a race may compute both copies) but never lost.
        for record in records:
            assert record["computed"] + record["replayed"] == SMOKE_CELLS
        assert store.cell_count() == SMOKE_CELLS
        rows = client.sweep_rows("smoke")
        assert rows["complete"] is True and len(
            rows["rows"]) == SMOKE_CELLS

    def test_error_paths(self, served):
        client, _ = served
        with pytest.raises(ServiceError) as excinfo:
            client.submit("no-such-sweep")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.job("no-such-job")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.sweep_rows("never-recorded")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request_json("/api/nowhere")
        assert excinfo.value.status == 404

    def test_events_long_poll_pagination(self, served):
        client, _ = served
        job_id = client.submit("smoke")
        client.wait(job_id, max_wait=120)
        first = client.events(job_id, since=0, poll_timeout=1)
        assert first["next"] == SMOKE_CELLS
        assert len(first["events"]) == SMOKE_CELLS
        # Offsets past the end return an empty page, not an error.
        tail = client.events(job_id, since=first["next"], poll_timeout=0)
        assert tail["events"] == []

    def test_stream_emits_ndjson_until_settled(self, served):
        client, _ = served
        job_id = client.submit("smoke")
        body = client._request(f"/api/jobs/{job_id}/stream",
                               timeout=180).decode("utf-8")
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert lines, "stream produced no events"
        final = lines[-1]
        assert final["job"]["state"] == JOB_DONE
        progress = lines[:-1]
        assert len(progress) == SMOKE_CELLS
        assert {event["index"] for event in progress} == set(
            range(SMOKE_CELLS))

    def test_live_book_served(self, served):
        client, _ = served
        client.wait(client.submit("smoke"), max_wait=120)
        html = client.book("html")
        assert b"<html" in html.lower()
        assert b'http-equiv="refresh"' in html
        assert b"smoke" in html
        markdown = client.book("md")
        assert b"smoke" in markdown
        assert b"http-equiv" not in markdown
