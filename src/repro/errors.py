"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures without masking
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A protocol, adversary, or experiment was configured inconsistently."""


class CorruptionBudgetExceeded(ReproError):
    """The adversary attempted to corrupt more than its budget ``f`` allows."""


class CapabilityError(ReproError):
    """The adversary attempted an action its model does not permit.

    The canonical example is attempting after-the-fact removal (erasing a
    message already sent this round) under a merely *adaptive* — not
    strongly adaptive — model (Section 1 / Section 2 of the paper).
    """


class SignatureError(ReproError):
    """A signature failed verification or an illegal signing was attempted."""


class ForgeryAttempt(SignatureError):
    """The adversary asked the ideal signature registry to sign for a node
    it has not corrupted.  In the real world this would be an existential
    forgery; the ideal registry turns it into a loud failure."""


class EligibilityError(ReproError):
    """A mining ticket failed verification or was used inconsistently."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class ProtocolViolation(ReproError):
    """An honest node observed input it can prove malformed.

    Honest nodes normally *discard* invalid messages (as the paper
    prescribes); this error is reserved for harness-level assertions.
    """
