"""The Remark-3.3 attack on round-specific eligibility.

*"Had [eligibility] not been [bit-specific], the adversary could observe
whenever an honest node sends (ACK, r, b), and immediately corrupt the
node in the same round and make it send (ACK, r, 1 - b) too. ... by
corrupting all these nodes that sent the ACKs, the adversary can construct
2λ/3 ACKs for 1 - b, and thus consistency within an epoch does not
hold."*

Implemented literally, plus the routing needed to turn the broken
epoch-consistency into an output split:

1. The attack targets the **final epoch** (so the protocol cannot
   self-heal in later epochs).
2. Every honest ``(ACK, r, b)`` multicast is answered by corrupting the
   ACKer and *reusing its round ticket* (the lottery is bit-blind) to send
   ``(ACK, r, 1-b)`` — but only to half of the honest nodes, so the two
   halves tally different winners.
3. A reserve pool of nodes corrupted at setup mines its own (bit-blind)
   round tickets to tip the count in the targeted half.

Outcome matrix (experiment E6):

- round-specific, no erasure → forged ACKs verify → **consistency broken**;
- round-specific + memory erasure → the per-epoch signing key was erased
  the moment the honest ACK was staged; forgery raises and is counted in
  ``failed_forgeries`` — Chen–Micali's defence holds;
- bit-specific (the paper's protocols, attacked via
  :class:`~repro.adversaries.adaptive_speaker.AdaptiveSpeakerAdversary`)
  → the opposite-bit lottery is fresh; no amplification, no split.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import ConfigurationError, SignatureError
from repro.protocols.base import ProtocolInstance
from repro.protocols.messages import AckMsg
from repro.protocols.round_eligibility import (
    RoundAuth,
    RoundEligibilityAuthenticator,
    signing_slot,
)
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Bit, NodeId, Round, other_bit


class AckEquivocationAdversary(Adversary):
    """Same-round ACK equivocation against round-specific eligibility."""

    name = "ack-equivocation"

    def __init__(self, instance: ProtocolInstance,
                 target_epoch: Optional[int] = None,
                 reserve: int = 0) -> None:
        super().__init__()
        services = instance.services
        authenticator = services.get("authenticator")
        if not isinstance(authenticator, RoundEligibilityAuthenticator):
            raise ConfigurationError(
                "this attack targets round-specific eligibility protocols")
        self.authenticator = authenticator
        config = services["config"]
        # Target the second-to-last epoch: the split beliefs it creates
        # are ACKed (and become the outputs) in the final epoch, leaving
        # the protocol no time to self-heal.
        self.target_epoch = (target_epoch if target_epoch is not None
                             else max(0, config.epochs - 2))
        self.reserve = reserve
        # Keep enough budget in hand to corrupt the ~λ eligible ACKers of
        # the target epoch (the threshold is 2λ/3, so 2·threshold ≥ λ).
        self._spare = 2 * config.threshold
        self.reserve_nodes: List[NodeId] = []
        self.forged = 0
        self.failed_forgeries = 0

    def on_setup(self) -> None:
        api = self.api
        pool = list(range(api.n - self.reserve, api.n))
        usable = max(0, api.corruptions_remaining - self._spare)
        for node_id in pool[:usable]:
            api.corrupt(node_id)
            self.reserve_nodes.append(node_id)

    # -- helpers -----------------------------------------------------------
    def _split_targets(self) -> List[NodeId]:
        """The half of the network that receives the forged ACKs."""
        api = self.api
        return [node for node in range(api.n)
                if node % 2 == 1 and not api.is_corrupt(node)]

    def _deliver_forgery(self, sender: NodeId, msg: AckMsg) -> None:
        for target in self._split_targets():
            self.api.inject(sender, target, msg)

    def _forge_opposite_ack(self, envelope: Envelope) -> None:
        payload: AckMsg = envelope.payload
        node_id = envelope.sender
        flipped = other_bit(payload.bit)
        topic = ("ACK", payload.epoch, flipped)
        # The round ticket is bit-blind: the honest node's ticket for
        # ("ACK", epoch) authenticates the flipped bit just as well.
        ticket = payload.auth.ticket
        capability = self.authenticator.epoch_registry.capability_for(node_id)
        try:
            signature = capability.sign(signing_slot(topic), topic)
        except SignatureError:
            # Memory erasure: the epoch key is gone — Chen–Micali holds.
            self.failed_forgeries += 1
            return
        self._deliver_forgery(node_id, AckMsg(
            epoch=payload.epoch, bit=flipped, sender=node_id,
            auth=RoundAuth(ticket=ticket, signature=signature)))
        self.forged += 1

    def _reserve_ack(self, epoch: int, bit: Bit) -> None:
        """Reserve nodes mine fresh (bit-blind) tickets for extra weight."""
        for node_id in self.reserve_nodes:
            auth = self.authenticator.attempt(node_id, ("ACK", epoch, bit))
            if auth is not None:
                self._deliver_forgery(node_id, AckMsg(
                    epoch=epoch, bit=bit, sender=node_id, auth=auth))

    # -- the rushing step ----------------------------------------------------
    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        api = self.api
        honest_bits: Set[Bit] = set()
        for envelope in staged:
            payload = envelope.payload
            if not envelope.honest_sender or not isinstance(payload, AckMsg):
                continue
            if not isinstance(payload.auth, RoundAuth):
                continue
            if payload.epoch != self.target_epoch:
                continue
            honest_bits.add(payload.bit)
            if api.is_corrupt(envelope.sender):
                continue
            if api.corruptions_remaining <= 0:
                return
            api.corrupt(envelope.sender)
            self._forge_opposite_ack(envelope)
        if len(honest_bits) == 1:
            (honest_bit,) = honest_bits
            self._reserve_ack(self.target_epoch, other_bit(honest_bit))
