"""Actual-faults knob: corrupt exactly ``k`` of the budgeted ``f`` nodes.

The adaptive-BA question is not "how bad is the worst case" but "how
much does each fault that actually *shows up* cost".  This adversary
makes f* a dial: it statically corrupts exactly ``actual`` nodes
(``0 <= actual <= f``) and silences them — crash-style, the mildest
behaviour, so the measured overhead is purely the protocol's
fault-triggered escalation and not an artifact of Byzantine traffic.

Victims are the *first* ``actual`` nodes: for the adaptive family those
are the collectors of epochs ``1..k`` (and for the leader family the
leaders of views ``1..k``), so each corruption silences exactly one
upcoming coordinator and the escalation count tracks f* — the
worst-case placement for an O((f* + 1) · n) protocol, which is the
honest way to measure it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Round


class ActualFaultsAdversary(Adversary):
    """Statically corrupts the first ``actual`` nodes (default: the whole
    budget ``f``) and never sends anything on their behalf."""

    name = "actual-faults"

    def __init__(self, actual: Optional[int] = None) -> None:
        super().__init__()
        if actual is not None and actual < 0:
            raise ConfigurationError(
                f"actual fault count must be non-negative, got {actual}")
        self.actual = actual

    def on_setup(self) -> None:
        api = self.api
        actual = self.actual if self.actual is not None \
            else api.corruption_budget
        if actual > api.corruption_budget:
            raise ConfigurationError(
                f"actual fault count {actual} exceeds the corruption "
                f"budget f={api.corruption_budget}")
        for node_id in range(actual):
            api.corrupt(node_id)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None
