"""View-splitting attack: conflicting messages to different halves.

The subtlest adversary in the zoo.  Where
:class:`~repro.adversaries.static_byzantine.StaticEquivocationAdversary`
multicasts its equivocations (so every honest node sees the same mess),
this one *unicasts* different proposals and votes to different halves of
the network, driving honest nodes into divergent certificate views:

- even-id honest nodes see corrupt proposals/votes for bit 0,
- odd-id honest nodes see corrupt proposals/votes for bit 1,

so equal-rank certificates for opposite bits can arise in the same
iteration — precisely the situation the Vote rule's tie-break clause
("an equal-rank certificate for the other bit does not block", C.1) must
handle.  Safety must survive arbitrarily long view splits via quorum
intersection; liveness recovers at the next iteration with a unique
honest proposer (Lemma 12).

Against the view-based leader family the same split drives the
view-change machinery instead: per-half conflicting NewView
attestations, per-half conflicting proposals whenever a corrupt node
holds the view's leadership (justified by harvested honest attestations
plus corrupt signatures), and per-half conflicting prevotes.  The n−f
prevote quorums intersect in n−2f > f nodes for every admitted n > 3f,
making equal-rank opposite QCs impossible there, so the attack can only
burn views and split locks, never agreement — the property suite pins
exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.protocols import leader_ba
from repro.protocols.aba import PHASE_PROPOSE, PHASE_VOTE, schedule
from repro.protocols.base import ProtocolInstance
from repro.protocols.broadcast import BroadcastNode
from repro.protocols.leader_ba import LeaderBaConfig, NewViewMsg
from repro.protocols.messages import ProposeMsg, VoteMsg
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Bit, NodeId, Round


class ViewSplitAdversary(Adversary):
    """Static corruption; per-half conflicting proposals and votes."""

    name = "view-split"

    def __init__(self, instance: ProtocolInstance,
                 victims: Optional[Sequence[NodeId]] = None) -> None:
        super().__init__()
        services = instance.services
        if "config" not in services:
            raise ConfigurationError(
                "view-split attack needs the protocol config in services")
        self.config = services["config"]
        if not hasattr(self.config, "proposer"):
            raise ConfigurationError(
                "view-split attack targets the iterated-BA family")
        self.round_offset = (
            1 if isinstance(instance.nodes[0], BroadcastNode) else 0)
        self.family = ("leader-ba" if isinstance(self.config, LeaderBaConfig)
                       else "aba")
        self.victims = list(victims) if victims is not None else None
        self.corrupted: List[NodeId] = []
        # iteration -> bit -> proposal usable to justify votes.
        self._proposals: Dict[int, Dict[Bit, ProposeMsg]] = {}
        # Leader family: (view, bit) -> sender -> QC-stripped NewView
        # attestation, harvested from staged honest traffic and corrupt
        # signatures — the justification pool for split proposals.
        self._attestations: Dict[Tuple[int, Bit],
                                 Dict[NodeId, NewViewMsg]] = {}

    def on_setup(self) -> None:
        api = self.api
        victims = (self.victims if self.victims is not None
                   else list(range(api.n - api.corruption_budget, api.n)))
        for node_id in victims[:api.corruption_budget]:
            api.corrupt(node_id)
            self.corrupted.append(node_id)

    def _half(self, bit: Bit) -> List[NodeId]:
        """The half of the (non-corrupt) network that is fed ``bit``."""
        api = self.api
        return [node for node in range(api.n)
                if node % 2 == bit and not api.is_corrupt(node)]

    def _note_honest_proposals(self, staged: List[Envelope]) -> None:
        for envelope in staged:
            payload = envelope.payload
            if isinstance(payload, ProposeMsg):
                self._proposals.setdefault(
                    payload.iteration, {}).setdefault(payload.bit, payload)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        protocol_round = round_index - self.round_offset
        if protocol_round < 0:
            return
        if self.family == "leader-ba":
            self._react_leader(protocol_round, staged)
            return
        self._note_honest_proposals(staged)
        iteration, phase = schedule(protocol_round)
        if phase == PHASE_PROPOSE:
            self._split_proposals(iteration)
        elif phase == PHASE_VOTE:
            self._split_votes(iteration)

    # -- leader-family branch ------------------------------------------------
    def _react_leader(self, protocol_round: Round,
                      staged: List[Envelope]) -> None:
        view, phase = leader_ba.schedule(protocol_round)
        if phase == leader_ba.PHASE_NEW_VIEW:
            self._note_honest_attestations(staged)
            self._split_attestations(view)
        elif phase == leader_ba.PHASE_PROPOSE:
            self._split_leader_proposals(view)
        elif phase == leader_ba.PHASE_PREVOTE:
            self._split_prevotes(view)

    def _note_honest_attestations(self, staged: List[Envelope]) -> None:
        for envelope in staged:
            payload = envelope.payload
            if isinstance(payload, NewViewMsg):
                # Strip the carried QC: the attestation auth covers only
                # ("NewView", view, bit), so the bare message stays valid
                # as fresh-value justification material.
                self._attestations.setdefault(
                    (payload.view, payload.bit), {}).setdefault(
                        payload.sender,
                        NewViewMsg(view=payload.view, bit=payload.bit,
                                   qc=None, sender=payload.sender,
                                   auth=payload.auth))

    def _split_attestations(self, view: int) -> None:
        authenticator = self.config.authenticator
        for node_id in self.corrupted:
            for bit in (0, 1):
                auth = authenticator.attempt(node_id,
                                             ("NewView", view, bit))
                if auth is None:
                    continue
                attestation = NewViewMsg(view=view, bit=bit, qc=None,
                                         sender=node_id, auth=auth)
                self._attestations.setdefault(
                    (view, bit), {}).setdefault(node_id, attestation)
                for target in self._half(bit):
                    self.api.inject(node_id, target, attestation)

    def _split_leader_proposals(self, view: int) -> None:
        quorum = self.config.fallback_quorum
        for node_id in self.corrupted:
            for bit in (0, 1):
                pool = self._attestations.get((view, bit), {})
                if len(pool) < quorum:
                    continue  # cannot justify: validity holds regardless
                auth = self.config.proposer.attempt(node_id, view, bit)
                if auth is None:
                    continue  # not this view's leader
                chosen = tuple(attestation for _, attestation
                               in sorted(pool.items())[:quorum])
                proposal = leader_ba.LeaderProposeMsg(
                    view=view, bit=bit, qc=None, attestations=chosen,
                    sender=node_id, auth=auth)
                for target in self._half(bit):
                    self.api.inject(node_id, target, proposal)

    def _split_prevotes(self, view: int) -> None:
        authenticator = self.config.authenticator
        for node_id in self.corrupted:
            for bit in (0, 1):
                auth = authenticator.attempt(node_id, ("Vote", view, bit))
                if auth is None:
                    continue
                prevote = leader_ba.PrevoteMsg(view=view, bit=bit,
                                               sender=node_id, auth=auth)
                for target in self._half(bit):
                    self.api.inject(node_id, target, prevote)

    def _split_proposals(self, iteration: int) -> None:
        for node_id in self.corrupted:
            for bit in (0, 1):
                auth = self.config.proposer.attempt(node_id, iteration, bit)
                if auth is None:
                    continue
                proposal = ProposeMsg(iteration=iteration, bit=bit,
                                      certificate=None, sender=node_id,
                                      auth=auth)
                self._proposals.setdefault(
                    iteration, {}).setdefault(bit, proposal)
                for target in self._half(bit):
                    self.api.inject(node_id, target, proposal)

    def _split_votes(self, iteration: int) -> None:
        authenticator = self.config.authenticator
        for node_id in self.corrupted:
            for bit in (0, 1):
                proposal = self._proposals.get(iteration, {}).get(bit)
                if iteration > 1 and proposal is None:
                    continue
                auth = authenticator.attempt(node_id,
                                             ("Vote", iteration, bit))
                if auth is None:
                    continue
                vote = VoteMsg(iteration=iteration, bit=bit,
                               sender=node_id, auth=auth,
                               proposal=proposal if iteration > 1 else None)
                for target in self._half(bit):
                    self.api.inject(node_id, target, vote)
