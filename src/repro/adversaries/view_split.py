"""View-splitting attack: conflicting messages to different halves.

The subtlest adversary in the zoo.  Where
:class:`~repro.adversaries.static_byzantine.StaticEquivocationAdversary`
multicasts its equivocations (so every honest node sees the same mess),
this one *unicasts* different proposals and votes to different halves of
the network, driving honest nodes into divergent certificate views:

- even-id honest nodes see corrupt proposals/votes for bit 0,
- odd-id honest nodes see corrupt proposals/votes for bit 1,

so equal-rank certificates for opposite bits can arise in the same
iteration — precisely the situation the Vote rule's tie-break clause
("an equal-rank certificate for the other bit does not block", C.1) must
handle.  Safety must survive arbitrarily long view splits via quorum
intersection; liveness recovers at the next iteration with a unique
honest proposer (Lemma 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.protocols.aba import PHASE_PROPOSE, PHASE_VOTE, schedule
from repro.protocols.base import ProtocolInstance
from repro.protocols.broadcast import BroadcastNode
from repro.protocols.messages import ProposeMsg, VoteMsg
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Bit, NodeId, Round


class ViewSplitAdversary(Adversary):
    """Static corruption; per-half conflicting proposals and votes."""

    name = "view-split"

    def __init__(self, instance: ProtocolInstance,
                 victims: Optional[Sequence[NodeId]] = None) -> None:
        super().__init__()
        services = instance.services
        if "config" not in services:
            raise ConfigurationError(
                "view-split attack needs the protocol config in services")
        self.config = services["config"]
        if not hasattr(self.config, "proposer"):
            raise ConfigurationError(
                "view-split attack targets the iterated-BA family")
        self.round_offset = (
            1 if isinstance(instance.nodes[0], BroadcastNode) else 0)
        self.victims = list(victims) if victims is not None else None
        self.corrupted: List[NodeId] = []
        # iteration -> bit -> proposal usable to justify votes.
        self._proposals: Dict[int, Dict[Bit, ProposeMsg]] = {}

    def on_setup(self) -> None:
        api = self.api
        victims = (self.victims if self.victims is not None
                   else list(range(api.n - api.corruption_budget, api.n)))
        for node_id in victims[:api.corruption_budget]:
            api.corrupt(node_id)
            self.corrupted.append(node_id)

    def _half(self, bit: Bit) -> List[NodeId]:
        """The half of the (non-corrupt) network that is fed ``bit``."""
        api = self.api
        return [node for node in range(api.n)
                if node % 2 == bit and not api.is_corrupt(node)]

    def _note_honest_proposals(self, staged: List[Envelope]) -> None:
        for envelope in staged:
            payload = envelope.payload
            if isinstance(payload, ProposeMsg):
                self._proposals.setdefault(
                    payload.iteration, {}).setdefault(payload.bit, payload)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        protocol_round = round_index - self.round_offset
        if protocol_round < 0:
            return
        self._note_honest_proposals(staged)
        iteration, phase = schedule(protocol_round)
        if phase == PHASE_PROPOSE:
            self._split_proposals(iteration)
        elif phase == PHASE_VOTE:
            self._split_votes(iteration)

    def _split_proposals(self, iteration: int) -> None:
        for node_id in self.corrupted:
            for bit in (0, 1):
                auth = self.config.proposer.attempt(node_id, iteration, bit)
                if auth is None:
                    continue
                proposal = ProposeMsg(iteration=iteration, bit=bit,
                                      certificate=None, sender=node_id,
                                      auth=auth)
                self._proposals.setdefault(
                    iteration, {}).setdefault(bit, proposal)
                for target in self._half(bit):
                    self.api.inject(node_id, target, proposal)

    def _split_votes(self, iteration: int) -> None:
        authenticator = self.config.authenticator
        for node_id in self.corrupted:
            for bit in (0, 1):
                proposal = self._proposals.get(iteration, {}).get(bit)
                if iteration > 1 and proposal is None:
                    continue
                auth = authenticator.attempt(node_id,
                                             ("Vote", iteration, bit))
                if auth is None:
                    continue
                vote = VoteMsg(iteration=iteration, bit=bit,
                               sender=node_id, auth=auth,
                               proposal=proposal if iteration > 1 else None)
                for target in self._half(bit):
                    self.api.inject(node_id, target, vote)
