"""The Theorem 4 adversary: after-the-fact removal isolates a victim.

Section 2's ``A'`` specialised to multicast protocols: pick a victim ``p``
(not the designated sender); whenever any node stages a message that would
reach ``p``, corrupt the sender (budget permitting) and **remove the copy
addressed to p** in that very round; the corrupted sender keeps running
the honest protocol towards everyone else (two-thread behaviour, as in
the Appendix B attack).  The victim hears *nothing*, times out, and falls
back to its default output while everyone else decides the real value —
a consistency violation.

The attack's cost is one corruption per distinct speaker.  Against the
subquadratic protocol only ``O(λ²)`` nodes ever speak, so the attack
succeeds with ``≪ f`` corruptions — the executable content of Theorem 1:
subquadratic communication *cannot* survive a strongly adaptive
adversary.  Against the quadratic protocol every node speaks, the budget
``f`` runs out, and the attack fails (experiment E1's second row).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.adversaries.sandbox import SandboxRunner
from repro.sim.adversary import Adversary
from repro.sim.network import Delivery, Envelope
from repro.types import NodeId, Round


class IsolationAdversary(Adversary):
    """Silences every channel into one victim via after-the-fact removal."""

    name = "isolation"

    def __init__(self, victim: NodeId) -> None:
        super().__init__()
        self.victim = victim
        self.sandbox: Optional[SandboxRunner] = None
        #: True once the corruption budget could not cover a new speaker.
        self.budget_exhausted = False
        self.removed_copies = 0

    def bind(self, api) -> None:
        # The sandbox must exist before on_setup() runs inside bind().
        self.sandbox = SandboxRunner(api)
        super().bind(api)

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        # Corrupted senders keep following the protocol ("behaves correctly
        # otherwise") — except that nothing they send reaches the victim.
        injected = self.sandbox.step(
            inboxes,
            send_filter=lambda node_id, recipient, payload:
                recipient is None or recipient != self.victim,
        )
        for envelope in injected:
            if envelope.is_multicast:
                self.api.remove(envelope, self.victim)
                self.removed_copies += 1

    def _reaches_victim(self, envelope: Envelope) -> bool:
        if envelope.sender == self.victim:
            return False
        return envelope.is_multicast or envelope.recipient == self.victim

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        api = self.api
        for envelope in staged:
            if not envelope.honest_sender or not self._reaches_victim(envelope):
                continue
            if api.is_corrupt(envelope.sender):
                # Sender fell earlier this round; its remaining staged
                # copies to the victim still need removing (idempotent).
                api.remove(envelope, self.victim)
                self.removed_copies += 1
                continue
            if api.corruptions_remaining <= 0:
                self.budget_exhausted = True
                return
            grant = api.corrupt(envelope.sender)
            self.sandbox.adopt(grant)
            api.remove(envelope, self.victim)
            self.removed_copies += 1
