"""Corrupt every announced leader before it proposes.

The oracle-based warmups announce the epoch leader publicly, so an
adaptive adversary can assassinate each leader at the start of its
iteration, stalling progress until the corruption budget runs dry —
expected round complexity degrades from O(1) to Θ(f) while safety is
untouched.  The VRF-compiled protocols are immune: nobody knows who the
proposers are until their proposals are already multicast.  Experiment E4
reports both columns.

Against the view-based leader family (``leader-ba`` / ``leader-chain``)
the same strike is the classic round-robin worst case: each view's
leader is known from the view number alone, so the adversary silences
it at the view's Propose round.  Rotation drains the budget in at most
``f`` consecutive views (round-robin leaders of consecutive views are
distinct), after which every post-GST view has a live honest leader and
the protocol decides — the regression tests pin exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.protocols.aba import AbaConfig, PHASE_PROPOSE, schedule
from repro.protocols.base import ProtocolInstance
from repro.protocols.leader_ba import LeaderBaConfig, proposing_view
from repro.protocols.phase_king import PhaseKingConfig
from repro.sim.adversary import Adversary
from repro.sim.leader import LeaderOracle
from repro.sim.network import Delivery, Envelope
from repro.types import NodeId, Round

#: Protocol families with a public leader schedule this adversary can
#: strike, keyed by the shared-config class their builders install.
_FAMILIES = {
    "aba": AbaConfig,
    "phase-king": PhaseKingConfig,
    "leader-ba": LeaderBaConfig,
}


class LeaderKillerAdversary(Adversary):
    """Corrupts (and silences) each oracle-announced leader."""

    name = "leader-killer"

    def __init__(self, instance: ProtocolInstance,
                 family: Optional[str] = None) -> None:
        super().__init__()
        oracle = instance.services.get("oracle")
        if not isinstance(oracle, LeaderOracle):
            raise ConfigurationError(
                "leader-killer needs an announced leader oracle")
        self.oracle = oracle
        config = instance.services.get("config")
        if family is None:
            # Sniff the family from the instance's shared config, so the
            # registry entry works unparameterized across every target.
            for name, config_cls in _FAMILIES.items():
                if isinstance(config, config_cls):
                    family = name
                    break
            else:
                raise ConfigurationError(
                    f"leader-killer cannot target {instance.name!r}: not an "
                    f"oracle-led protocol family (one of "
                    f"{', '.join(sorted(_FAMILIES))})")
        elif family not in _FAMILIES:
            raise ConfigurationError(f"unknown family {family!r}")
        self.family = family
        self.killed: List[NodeId] = []

    def _epoch_starting_at(self, round_index: Round) -> Optional[int]:
        """The epoch whose proposal happens in this round, if any (an
        iteration for the paper protocols, a view for the leader family —
        either way the oracle's epoch key)."""
        if self.family == "phase-king":
            epoch, is_ack_round = divmod(round_index, 2)
            return epoch if not is_ack_round else None
        if self.family == "leader-ba":
            return proposing_view(round_index)
        iteration, phase = schedule(round_index)
        return iteration if phase == PHASE_PROPOSE else None

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        # Strike before the honest step: the leader of an iteration whose
        # proposal round begins now is corrupted before it can speak.
        epoch = self._epoch_starting_at(round_index)
        if epoch is None:
            return
        api = self.api
        leader = self.oracle.leader(epoch)
        if api.is_corrupt(leader) or api.corruptions_remaining <= 0:
            return
        api.corrupt(leader)
        self.killed.append(leader)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None
