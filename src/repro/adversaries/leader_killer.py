"""Corrupt every announced leader before it proposes.

The oracle-based warmups announce the epoch leader publicly, so an
adaptive adversary can assassinate each leader at the start of its
iteration, stalling progress until the corruption budget runs dry —
expected round complexity degrades from O(1) to Θ(f) while safety is
untouched.  The VRF-compiled protocols are immune: nobody knows who the
proposers are until their proposals are already multicast.  Experiment E4
reports both columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.protocols.aba import PHASE_PROPOSE, schedule
from repro.protocols.base import ProtocolInstance
from repro.sim.adversary import Adversary
from repro.sim.leader import LeaderOracle
from repro.sim.network import Delivery, Envelope
from repro.types import NodeId, Round


class LeaderKillerAdversary(Adversary):
    """Corrupts (and silences) each oracle-announced leader."""

    name = "leader-killer"

    def __init__(self, instance: ProtocolInstance,
                 family: str = "aba") -> None:
        super().__init__()
        oracle = instance.services.get("oracle")
        if not isinstance(oracle, LeaderOracle):
            raise ConfigurationError(
                "leader-killer needs an announced leader oracle")
        self.oracle = oracle
        if family not in ("aba", "phase-king"):
            raise ConfigurationError(f"unknown family {family!r}")
        self.family = family
        self.killed: List[NodeId] = []

    def _epoch_starting_at(self, round_index: Round) -> Optional[int]:
        """The iteration whose proposal happens in this round, if any."""
        if self.family == "phase-king":
            epoch, is_ack_round = divmod(round_index, 2)
            return epoch if not is_ack_round else None
        iteration, phase = schedule(round_index)
        return iteration if phase == PHASE_PROPOSE else None

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        # Strike before the honest step: the leader of an iteration whose
        # proposal round begins now is corrupted before it can speak.
        epoch = self._epoch_starting_at(round_index)
        if epoch is None:
            return
        api = self.api
        leader = self.oracle.leader(epoch)
        if api.is_corrupt(leader) or api.corruptions_remaining <= 0:
            return
        api.corrupt(leader)
        self.killed.append(leader)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None
