"""The attack that motivates the paper (Section 1):

*"Such an attacker can simply observe what nodes are on the committee,
then corrupt them, and thereby control the whole committee!"*

Against :mod:`repro.protocols.static_committee` the CRS-elected committee
is public from setup, so an adaptive adversary corrupts it wholesale and
splits the network: half the listeners are told the output is 0, the
other half that it is 1.  Every listener sees a majority of (validly
signed) committee announcements, so consistency is violated with
certainty — with only ``|committee| = O(polylog n)`` corruptions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolInstance
from repro.protocols.static_committee import CommitteeOutputMsg
from repro.sim.adversary import Adversary
from repro.sim.corruption import CorruptionGrant
from repro.sim.network import Envelope
from repro.types import NodeId, Round


class CommitteeTakeoverAdversary(Adversary):
    """Corrupts the announced committee and equivocates its output."""

    name = "committee-takeover"

    def __init__(self, instance: ProtocolInstance) -> None:
        super().__init__()
        services = instance.services
        if "committee" not in services or "registry" not in services:
            raise ConfigurationError(
                "committee takeover needs committee + registry in services")
        self.committee: List[NodeId] = list(services["committee"])
        self.registry = services["registry"]
        self.grants: Dict[NodeId, CorruptionGrant] = {}
        self._attacked = False

    def on_setup(self) -> None:
        api = self.api
        if len(self.committee) > api.corruption_budget:
            raise ConfigurationError(
                f"budget {api.corruption_budget} cannot cover committee of "
                f"size {len(self.committee)}")
        for member in self.committee:
            self.grants[member] = api.corrupt(member)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        if self._attacked:
            return
        self._attacked = True
        committee_set = set(self.committee)
        listeners = [node for node in range(self.api.n)
                     if node not in committee_set]
        half = len(listeners) // 2
        split = {node: 0 for node in listeners[:half]}
        split.update({node: 1 for node in listeners[half:]})
        for member in self.committee:
            capability = self.grants[member].signing_capability
            for listener, bit in split.items():
                signature = capability.sign(("committee-output", bit))
                self.api.inject(member, listener, CommitteeOutputMsg(
                    bit=bit, sender=member, auth=signature))
