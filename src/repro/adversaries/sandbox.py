"""Sandboxed execution of corrupted nodes' own logic.

Several of the paper's adversaries corrupt nodes but keep them running the
*honest* protocol with surgical deviations:

- Dolev–Reischuk's ``A``: the corrupt set V behaves honestly except it
  ignores the first f/2 messages and stays silent towards other V members;
- Dolev–Reischuk's ``A'`` / Theorem 4's isolation: corrupted senders
  "behave correctly" except they never talk to the victim ``p``.

:class:`SandboxRunner` provides exactly that: it adopts corruption grants
and, each round, steps every adopted node with an adversary-filtered inbox,
then re-injects the node's staged messages through an adversary-controlled
send filter.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.adversary import AdversaryApi
from repro.sim.corruption import CorruptionGrant
from repro.sim.network import Delivery, Envelope
from repro.types import NodeId

#: Keep-this-delivery predicate: (node_id, delivery) -> bool.
InboxFilter = Callable[[NodeId, Delivery], bool]
#: Allow-this-send predicate: (node_id, recipient_or_None, payload) -> bool.
SendFilter = Callable[[NodeId, Optional[NodeId], object], bool]


class SandboxRunner:
    """Runs adopted (corrupted) nodes as filtered honest parties."""

    def __init__(self, api: AdversaryApi) -> None:
        self.api = api
        self.grants: Dict[NodeId, CorruptionGrant] = {}

    def adopt(self, grant: CorruptionGrant) -> None:
        self.grants[grant.node_id] = grant

    @property
    def members(self) -> List[NodeId]:
        return sorted(self.grants)

    def step(
        self,
        inboxes: Dict[NodeId, List[Delivery]],
        inbox_filter: Optional[InboxFilter] = None,
        send_filter: Optional[SendFilter] = None,
    ) -> List[Envelope]:
        """Run one round of every adopted node; returns injected envelopes.

        Nodes adopted during the current round's reaction step must not be
        re-run this round (their honest step already happened); callers
        should invoke :meth:`step` from ``observe_deliveries``, i.e. at the
        start of the *next* round, which achieves exactly that.
        """
        injected: List[Envelope] = []
        for node_id in self.members:
            node = self.grants[node_id].node
            if node.halted:
                continue
            inbox = [
                delivery for delivery in inboxes.get(node_id, [])
                if inbox_filter is None or inbox_filter(node_id, delivery)
            ]
            ctx = self.api.make_context(node_id, inbox)
            node.on_round(ctx)
            for recipient, payload in ctx.staged:
                if send_filter is None or send_filter(node_id, recipient, payload):
                    injected.append(self.api.inject(node_id, recipient, payload))
        return injected
