"""Corrupt whoever speaks — the canonical adaptive strategy.

The rushing adversary watches the staged messages of every round and
corrupts each (not-yet-corrupt) multicaster until its budget runs out;
from the next voting opportunity on, each corrupted node attempts to
authenticate the *opposite* bit of whatever it was seen sending.

Against **round-specific** eligibility this is devastating (see
:mod:`repro.adversaries.equivocation` for the sharpened same-round
version).  Against the paper's **bit-specific** eligibility the corrupted
node's lottery for the opposite bit is fresh and independent — "corrupting
i is no more useful to the adversary than corrupting any other node"
(Section 3.2) — which is precisely what experiment E6 measures.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolInstance
from repro.protocols.messages import AckMsg, VoteMsg
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import NodeId, Round, other_bit


class AdaptiveSpeakerAdversary(Adversary):
    """Corrupts observed speakers and equivocates their votes/ACKs."""

    name = "adaptive-speaker"

    def __init__(self, instance: ProtocolInstance,
                 spare_budget: int = 0) -> None:
        super().__init__()
        self.instance = instance
        services = instance.services
        if "authenticator" not in services:
            raise ConfigurationError(
                "adaptive speaker attack needs the authenticator in services")
        self.authenticator = services["authenticator"]
        #: Number of corruptions to hold in reserve (never spent).
        self.spare_budget = spare_budget
        self.corrupted: List[NodeId] = []

    def _try_corrupt(self, node_id: NodeId) -> bool:
        api = self.api
        if api.is_corrupt(node_id):
            return True
        if api.corruptions_remaining <= self.spare_budget:
            return False
        api.corrupt(node_id)
        self.corrupted.append(node_id)
        return True

    def _equivocate(self, envelope: Envelope) -> None:
        """Same-round opposite-bit attempt with the freshly corrupted node."""
        payload = envelope.payload
        node_id = envelope.sender
        if isinstance(payload, VoteMsg):
            flipped = other_bit(payload.bit)
            topic = ("Vote", payload.iteration, flipped)
            auth = self.authenticator.attempt(node_id, topic)
            if auth is not None:
                self.api.inject(node_id, None, VoteMsg(
                    iteration=payload.iteration, bit=flipped,
                    sender=node_id, auth=auth, proposal=payload.proposal))
        elif isinstance(payload, AckMsg):
            flipped = other_bit(payload.bit)
            auth = self.authenticator.attempt(
                node_id, ("ACK", payload.epoch, flipped))
            if auth is not None:
                self.api.inject(node_id, None, AckMsg(
                    epoch=payload.epoch, bit=flipped,
                    sender=node_id, auth=auth))

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        for envelope in staged:
            if not envelope.honest_sender or not envelope.is_multicast:
                continue
            if not isinstance(envelope.payload, (VoteMsg, AckMsg)):
                continue
            if self._try_corrupt(envelope.sender):
                self._equivocate(envelope)
