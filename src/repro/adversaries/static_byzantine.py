"""Static equivocation: corrupt nodes push both bits every round.

This is the stress test behind the Lemma 11 counting argument: *"each
[corrupt node] might try to mine for 2 ACKs (one for each bit) in some
fixed epoch r"*.  Corrupt nodes attempt, every voting opportunity, to
authenticate **both** bits — votes, ACKs, and proposals — and multicast
whatever the authenticator (signatures or the bit-specific lottery)
grants them.  Against the quadratic protocol this blocks early commits;
against the subquadratic protocols it exercises the quorum-intersection
bound at its worst case.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.protocols.aba import (
    AbaNode,
    PHASE_PROPOSE,
    PHASE_VOTE,
    schedule,
)
from repro.protocols.base import ProtocolInstance
from repro.protocols.broadcast import BroadcastNode
from repro.protocols.messages import (
    AckMsg,
    PhaseKingProposeMsg,
    ProposeMsg,
    VoteMsg,
)
from repro.protocols.phase_king import PhaseKingNode
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Bit, NodeId, Round


def _unwrap(node):
    return node.inner if isinstance(node, BroadcastNode) else node


class StaticEquivocationAdversary(Adversary):
    """Corrupts a fixed set at setup and equivocates relentlessly."""

    name = "static-equivocation"

    def __init__(self, instance: ProtocolInstance,
                 victims: Optional[Sequence[NodeId]] = None) -> None:
        super().__init__()
        self.instance = instance
        self.victims = list(victims) if victims is not None else None
        services = instance.services
        if "config" not in services:
            raise ConfigurationError(
                "equivocation attack needs the protocol config in services")
        self.config = services["config"]
        sample = _unwrap(instance.nodes[0])
        if isinstance(sample, PhaseKingNode):
            self.family = "phase-king"
        elif isinstance(sample, AbaNode):
            self.family = "aba"
        else:
            raise ConfigurationError(
                f"unsupported protocol family: {type(sample).__name__}")
        self.round_offset = 1 if isinstance(instance.nodes[0], BroadcastNode) else 0
        self.corrupted: List[NodeId] = []
        # iteration -> bit -> a valid proposal usable to justify votes.
        self._proposals: Dict[int, Dict[Bit, ProposeMsg]] = {}

    # -- setup ------------------------------------------------------------
    def on_setup(self) -> None:
        api = self.api
        victims = (self.victims if self.victims is not None
                   else list(range(api.n - api.corruption_budget, api.n)))
        for node_id in victims[:api.corruption_budget]:
            api.corrupt(node_id)
            self.corrupted.append(node_id)

    # -- helpers -------------------------------------------------------------
    def _protocol_round(self, round_index: Round) -> Round:
        return round_index - self.round_offset

    def _note_proposals(self, staged: List[Envelope]) -> None:
        for envelope in staged:
            payload = envelope.payload
            if isinstance(payload, ProposeMsg):
                self._proposals.setdefault(
                    payload.iteration, {}).setdefault(payload.bit, payload)

    # -- attack ------------------------------------------------------------------
    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        protocol_round = self._protocol_round(round_index)
        if protocol_round < 0:
            return
        self._note_proposals(staged)
        if self.family == "aba":
            self._attack_aba(protocol_round)
        else:
            self._attack_phase_king(protocol_round)

    def _attack_aba(self, protocol_round: Round) -> None:
        iteration, phase = schedule(protocol_round)
        authenticator = self.config.authenticator
        if phase == PHASE_PROPOSE:
            for node_id in self.corrupted:
                for bit in (0, 1):
                    auth = self.config.proposer.attempt(node_id, iteration, bit)
                    if auth is None:
                        continue
                    proposal = ProposeMsg(iteration=iteration, bit=bit,
                                          certificate=None,
                                          sender=node_id, auth=auth)
                    self.api.inject(node_id, None, proposal)
                    self._proposals.setdefault(
                        iteration, {}).setdefault(bit, proposal)
        elif phase == PHASE_VOTE:
            for node_id in self.corrupted:
                for bit in (0, 1):
                    proposal = self._proposals.get(iteration, {}).get(bit)
                    if iteration > 1 and proposal is None:
                        continue  # no justification available for this bit
                    auth = authenticator.attempt(
                        node_id, ("Vote", iteration, bit))
                    if auth is None:
                        continue
                    self.api.inject(node_id, None, VoteMsg(
                        iteration=iteration, bit=bit, sender=node_id,
                        auth=auth,
                        proposal=proposal if iteration > 1 else None))

    def _attack_phase_king(self, protocol_round: Round) -> None:
        epoch, is_ack_round = divmod(protocol_round, 2)
        if epoch >= self.config.epochs:
            return
        if not is_ack_round:
            for node_id in self.corrupted:
                for bit in (0, 1):
                    auth = self.config.proposer.attempt(node_id, epoch, bit)
                    if auth is not None:
                        self.api.inject(node_id, None, PhaseKingProposeMsg(
                            epoch=epoch, bit=bit, sender=node_id, auth=auth))
        else:
            for node_id in self.corrupted:
                for bit in (0, 1):
                    auth = self.config.authenticator.attempt(
                        node_id, ("ACK", epoch, bit))
                    if auth is not None:
                        self.api.inject(node_id, None, AckMsg(
                            epoch=epoch, bit=bit, sender=node_id, auth=auth))
