"""Crash-style adversary: corrupt a fixed set and silence it forever.

The mildest Byzantine behaviour — useful as a liveness floor: Lemma 11's
"(ii)" clause is exactly about enough honest committee members surviving
when up to ``(1/2 - ε) n`` nodes contribute nothing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import NodeId, Round


class CrashAdversary(Adversary):
    """Statically corrupts ``victims`` (default: the last ``f`` nodes) and
    never sends anything on their behalf."""

    name = "crash"

    def __init__(self, victims: Optional[Sequence[NodeId]] = None) -> None:
        super().__init__()
        self.victims = list(victims) if victims is not None else None

    def on_setup(self) -> None:
        api = self.api
        victims: List[NodeId] = (
            self.victims if self.victims is not None
            else list(range(api.n - api.corruption_budget, api.n)))
        for node_id in victims[:api.corruption_budget]:
            api.corrupt(node_id)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None
