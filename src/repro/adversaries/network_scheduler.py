"""The partial-synchrony scheduler: delay and reorder honest traffic.

Under partial synchrony the adversary's cheapest lever is not corruption
but *timing*: it may hold any message back — honest senders included —
as long as post-GST delivery still happens within Δ rounds of sending
(the network clamp in :class:`~repro.sim.conditions.ConditionedNetwork`
enforces the bound, so no strategy expressed through this hook can
exceed the model).  This adversary pushes that lever as hard as the
model allows: every targeted copy is shoved to the Δ deadline, which
maximally reorders traffic across the window without costing a single
corruption.

The Δ-bounded property suite runs protocols against this adversary to
check the synchronizer argument end-to-end: with protocol steps dilated
by Δ, even a worst-case Δ-bounded schedule cannot break agreement or
validity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rng import Seed, derive_rng
from repro.sim.adversary import Adversary
from repro.sim.network import Envelope
from repro.types import Round


class DelayAdversary(Adversary):
    """Delays (a fraction of) honest in-flight copies up to the Δ bound.

    ``rounds=None`` requests the maximum (Δ; the network clamps there
    post-GST anyway).  ``fraction < 1`` delays a seeded-random subset of
    copies instead of all of them, which *reorders* traffic: delayed and
    undelayed copies from the same multicast arrive rounds apart.  A
    no-op under perfect synchrony, so the same scenario grid can sweep
    the ``network`` axis across ``perfect`` and conditioned cells.
    """

    name = "delay"

    def __init__(self, rounds: Optional[int] = None, fraction: float = 1.0,
                 seed: Seed = 0) -> None:
        super().__init__()
        if rounds is not None and rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.rounds = rounds
        self.fraction = fraction
        self._rng = derive_rng(seed, "delay-adversary")
        self.delayed_envelopes = 0

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        api = self.api
        if not api.can_delay:
            return
        rounds = self.rounds if self.rounds is not None else api.delta
        for envelope in staged:
            if not envelope.honest_sender:
                continue
            if self.fraction < 1.0 and self._rng.random() >= self.fraction:
                continue
            api.delay(envelope, rounds=rounds)
            self.delayed_envelopes += 1
