"""Attack strategies.

Every lower bound and every security claim in the paper corresponds to an
executable adversary here:

- :mod:`repro.adversaries.crash` — corrupt-and-silence (liveness floor).
- :mod:`repro.adversaries.static_byzantine` — static equivocation: corrupt
  nodes vote/ACK both bits every round (the Lemma 11 stress test).
- :mod:`repro.adversaries.adaptive_speaker` — corrupts nodes the moment
  they are observed multicasting (the "corrupt whoever speaks" strategy
  that bit-specific eligibility is designed to survive).
- :mod:`repro.adversaries.adaptive_committee` — corrupts the publicly
  announced CRS committee and splits its output (breaks the Section 1
  static-committee construction).
- :mod:`repro.adversaries.equivocation` — the Remark-3.3 attack on
  round-specific eligibility: corrupt an ACKer, reuse its round ticket to
  ACK the opposite bit in the same round.
- :mod:`repro.adversaries.strongly_adaptive` — the Theorem 4 adversary:
  after-the-fact removal used to isolate a victim from all traffic while
  the corrupted senders keep behaving honestly towards everyone else.
- :mod:`repro.adversaries.leader_killer` — corrupts each announced oracle
  leader before it proposes (round-complexity degradation, not safety).
- :mod:`repro.adversaries.network_scheduler` — the partial-synchrony
  scheduler: delays honest traffic to the Δ deadline (maximal reordering
  at zero corruption cost; only exists under network conditions).
- :mod:`repro.adversaries.actual_faults` — the adaptive-BA dial: crash
  exactly ``k <= f`` nodes (the first ``k``, i.e. the upcoming
  collectors/leaders), so measured words track the *actual* fault count.
"""

from repro.adversaries.sandbox import SandboxRunner
from repro.adversaries.crash import CrashAdversary
from repro.adversaries.static_byzantine import StaticEquivocationAdversary
from repro.adversaries.adaptive_speaker import AdaptiveSpeakerAdversary
from repro.adversaries.adaptive_committee import CommitteeTakeoverAdversary
from repro.adversaries.equivocation import AckEquivocationAdversary
from repro.adversaries.strongly_adaptive import IsolationAdversary
from repro.adversaries.leader_killer import LeaderKillerAdversary
from repro.adversaries.network_scheduler import DelayAdversary
from repro.adversaries.view_split import ViewSplitAdversary
from repro.adversaries.actual_faults import ActualFaultsAdversary

__all__ = [
    "SandboxRunner",
    "ActualFaultsAdversary",
    "CrashAdversary",
    "StaticEquivocationAdversary",
    "AdaptiveSpeakerAdversary",
    "CommitteeTakeoverAdversary",
    "AckEquivocationAdversary",
    "IsolationAdversary",
    "LeaderKillerAdversary",
    "DelayAdversary",
    "ViewSplitAdversary",
]
