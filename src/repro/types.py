"""Shared primitive types and small value objects used across the library.

The paper (Appendix A.1) models a protocol execution with ``n`` parties
numbered ``0 .. n-1`` proceeding in synchronous rounds.  These aliases keep
signatures readable without introducing heavyweight wrapper classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# A node identifier.  Nodes are numbered 0 .. n-1 as in Appendix A.1.
NodeId = int

# A single agreement bit.  The paper studies binary BA; inputs and outputs
# are always 0 or 1.
Bit = int

# A synchronous round index, starting at 0.
Round = int

#: Conventional designated sender for Byzantine Broadcast (Appendix A.2.1
#: uses node 0 as the sender).
BROADCAST_SENDER: NodeId = 0


def other_bit(b: Bit) -> Bit:
    """Return ``1 - b``, validating that ``b`` is a bit."""
    if b not in (0, 1):
        raise ValueError(f"not a bit: {b!r}")
    return 1 - b


def validate_bit(b: Bit) -> Bit:
    """Return ``b`` unchanged after checking it is 0 or 1."""
    if b not in (0, 1):
        raise ValueError(f"not a bit: {b!r}")
    return b


class AdversaryModel(enum.Enum):
    """How adaptive the adversary is allowed to be (Section 1 / Section 2).

    The distinction is the paper's central modelling axis:

    - ``STATIC``: the corrupt set is fixed before the execution starts.
    - ``ADAPTIVE``: nodes may be corrupted at any time, *during* a round,
      after observing the messages honest nodes are about to send; but a
      message already sent cannot be erased ("no after-the-fact removal").
    - ``STRONGLY_ADAPTIVE``: like ``ADAPTIVE`` but additionally capable of
      *after-the-fact removal* — erasing, per recipient, messages that a
      just-corrupted node sent in the current round.
    """

    STATIC = "static"
    ADAPTIVE = "adaptive"
    STRONGLY_ADAPTIVE = "strongly_adaptive"

    @property
    def can_remove_after_the_fact(self) -> bool:
        return self is AdversaryModel.STRONGLY_ADAPTIVE

    @property
    def can_corrupt_adaptively(self) -> bool:
        return self is not AdversaryModel.STATIC


@dataclass(frozen=True)
class SecurityParameters:
    """Concrete stand-ins for the paper's asymptotic parameters.

    ``kappa`` is the statistical security parameter; ``lam`` is the expected
    committee size ``λ = ω(log κ)`` used by the subquadratic protocols
    (Section 3.2 / Appendix C.2).  ``epsilon`` is the resilience slack: the
    adversary corrupts at most ``(1/2 - epsilon) * n`` nodes for the
    honest-majority protocols (``(1/3 - epsilon) * n`` for the phase-king
    family).
    """

    kappa: int = 32
    lam: int = 40
    epsilon: float = 0.1

    def __post_init__(self) -> None:
        if self.kappa < 1:
            raise ValueError("kappa must be positive")
        if self.lam < 1:
            raise ValueError("lam must be positive")
        if not 0 < self.epsilon < 0.5:
            raise ValueError("epsilon must lie in (0, 1/2)")

    def committee_probability(self, n: int) -> float:
        """Per-node success probability λ/n for committee messages.

        Section C.2 sets the difficulty ``D`` so that each Status / Vote /
        Commit / Terminate multicast is eligible with probability ``λ/n``.
        When ``n <= λ`` the paper prescribes falling back to the quadratic
        protocol; we cap the probability at 1 so small-n smoke tests work.
        """
        if n < 1:
            raise ValueError("n must be positive")
        return min(1.0, self.lam / n)

    def leader_probability(self, n: int) -> float:
        """Per-(node, bit) leader-election probability 1/(2n).

        Section C.2 sets ``D0`` so that each proposal attempt succeeds with
        probability ``1/2n``, i.e. one expected leader every two iterations.
        """
        if n < 1:
            raise ValueError("n must be positive")
        return 1.0 / (2 * n)
