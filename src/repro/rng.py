"""Deterministic randomness derivation.

Every random choice in a simulation must be reproducible from a single
experiment seed.  :func:`derive_rng` derives independent, labelled
``random.Random`` streams from the master seed so that, e.g., node 7's
protocol coins, the adversary's choices, and ``Fmine``'s Bernoulli coins
never share or perturb each other's streams.
"""

from __future__ import annotations

import random
from typing import Union

Seed = Union[int, str]


def derive_seed(seed: Seed, *labels: object) -> str:
    """A string seed combining the master seed and a label path."""
    parts = [str(seed)] + [repr(label) for label in labels]
    return "\x1f".join(parts)


def derive_rng(seed: Seed, *labels: object) -> random.Random:
    """An independent ``random.Random`` stream for the given label path."""
    return random.Random(derive_seed(seed, *labels))
