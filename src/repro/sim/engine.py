"""The synchronous execution engine (Appendix A.1).

One :class:`Simulation` owns the nodes, the network, the corruption
controller, the metrics, and the adversary, and drives the round loop:

1. **Deliver** the previous round's surviving messages to every node.
2. **Honest step**: each so-far-honest, non-halted node processes its
   inbox and stages its outgoing messages (which immediately count as
   sent — they cannot be un-sent except by after-the-fact removal).
3. **Adversary step (rushing)**: the adversary observes everything staged
   this round, may adaptively corrupt nodes (receiving their revealed
   state and capabilities), may inject same-round messages from corrupt
   nodes, and — under the strongly adaptive model only — may remove staged
   messages of newly corrupted senders.

The loop ends when every so-far-honest node has halted or the round limit
is reached, after which outputs are finalized (undecided nodes fall back
to their protocol's default, as in the Theorem 4 termination convention).

Conditioned executions (``conditions=``) are driven by an **event
scheduler** by default: instead of ticking the network once per Δ
network round, the engine pops the conditioned network's
timestamp-ordered delivery queue and jumps the clock straight to the
next tick that has any work — a staging window to drain, a due
delivery, or a protocol step.  Idle Δ-ticks in between are skipped
outright (``NetworkStats.skipped_ticks`` counts them), which is where
sparse-latency WAN topologies win their wall clock.  The historical
Δ-lockstep synchronizer is retained as :func:`legacy_synchronize`
(selectable via ``scheduler="lockstep"`` or ``REPRO_SCHEDULER``), and
the differential conformance suite asserts the two produce *identical*
executions — same decisions, rounds, transcripts, NetworkStats, and RNG
draw order.  See ``docs/NETWORK.md`` ("Event engine").
"""

from __future__ import annotations

import os
import random
from typing import Dict, Optional, Sequence

from repro.errors import SimulationError
from repro.serialization import clear_size_cache
from repro.rng import Seed, derive_rng
from repro.sim.adversary import Adversary, AdversaryApi, PassiveAdversary
from repro.sim.conditions import ConditionedNetwork, NetworkConditions
from repro.sim.corruption import CorruptionController, CorruptionGrant
from repro.sim.metrics import CommunicationMetrics
from repro.sim.network import Envelope, SynchronousNetwork
from repro.sim.node import Node, RoundContext
from repro.sim.result import ExecutionResult
from repro.types import AdversaryModel, Bit, NodeId, Round

#: Keep every envelope ever staged (replay / invariant checking).
TRANSCRIPT_FULL = "full"
#: Keep no transcript; only the aggregate communication metrics.  Long
#: executions stop accumulating unbounded envelope lists.
TRANSCRIPT_METRICS_ONLY = "metrics-only"

_RETENTION_POLICIES = (TRANSCRIPT_FULL, TRANSCRIPT_METRICS_ONLY)

#: Conditioned executions pop the delivery event queue and skip idle
#: Δ-ticks (the default).
SCHEDULER_EVENT = "event"
#: Conditioned executions tick the network once per Δ network round —
#: the historical synchronizer, kept as the conformance reference.
SCHEDULER_LOCKSTEP = "lockstep"

_SCHEDULERS = (SCHEDULER_EVENT, SCHEDULER_LOCKSTEP)

#: Environment override for the default scheduler; lets whole sweeps
#: (worker processes inherit the environment) run under the lock-step
#: reference for artifact-level A/B comparison, as the CI
#: event-engine-smoke job does.
SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"


def default_scheduler() -> str:
    """The scheduler conditioned executions use when none is passed."""
    choice = os.environ.get(SCHEDULER_ENV_VAR, SCHEDULER_EVENT)
    if choice not in _SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {choice!r} in ${SCHEDULER_ENV_VAR}; "
            f"expected one of {_SCHEDULERS}")
    return choice


class Simulation:
    """A single protocol execution against one adversary."""

    def __init__(
        self,
        nodes: Sequence[Node],
        corruption_budget: int,
        model: AdversaryModel = AdversaryModel.ADAPTIVE,
        adversary: Optional[Adversary] = None,
        max_rounds: int = 1000,
        seed: Seed = 0,
        inputs: Optional[Dict[NodeId, Bit]] = None,
        signing_capabilities: Optional[Sequence] = None,
        mining_capabilities: Optional[Sequence] = None,
        transcript_retention: str = TRANSCRIPT_FULL,
        conditions: Optional[NetworkConditions] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        if not nodes:
            raise SimulationError("need at least one node")
        if transcript_retention not in _RETENTION_POLICIES:
            raise SimulationError(
                f"unknown transcript retention {transcript_retention!r}; "
                f"expected one of {_RETENTION_POLICIES}")
        if scheduler is None:
            scheduler = default_scheduler()
        elif scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; "
                f"expected one of {_SCHEDULERS}")
        self.scheduler = scheduler
        self.nodes = list(nodes)
        self.n = len(nodes)
        self.transcript_retention = transcript_retention
        # Perfect conditions ARE the lock-step model: normalize them to
        # None so the unconditioned fast path below stays byte-identical
        # (same network class, same loop, same RNG consumption).
        if conditions is not None and conditions.is_perfect:
            conditions = None
        self.conditions = conditions
        retain = transcript_retention == TRANSCRIPT_FULL
        if conditions is None:
            self.network = SynchronousNetwork(self.n, retain_transcript=retain)
        else:
            self.network = ConditionedNetwork(
                self.n, conditions, seed=seed, retain_transcript=retain)
        self.controller = CorruptionController(self.n, corruption_budget, model)
        self.metrics = CommunicationMetrics(n=self.n)
        self.adversary = adversary if adversary is not None else PassiveAdversary()
        self.max_rounds = max_rounds
        self.seed = seed
        self.inputs = dict(inputs or {})
        self.current_round: Round = -1
        self._signing_capabilities = list(signing_capabilities or [])
        self._mining_capabilities = list(mining_capabilities or [])
        self._node_rngs: Dict[NodeId, random.Random] = {}
        self._api = AdversaryApi(self)
        self._ran = False

    # -- services used by the adversary API ---------------------------------
    def rng_for_node(self, node_id: NodeId) -> random.Random:
        if node_id not in self._node_rngs:
            self._node_rngs[node_id] = derive_rng(self.seed, "node", node_id)
        return self._node_rngs[node_id]

    def perform_corruption(self, node_id: NodeId) -> CorruptionGrant:
        controller = self.controller
        if controller.is_corrupt(node_id):
            raise SimulationError(f"node {node_id} is already corrupt")
        controller.authorize(node_id, self.current_round)
        controller.mark_corrupt(node_id, self.current_round)
        node = self.nodes[node_id]
        signing = (self._signing_capabilities[node_id]
                   if node_id < len(self._signing_capabilities) else None)
        mining = (self._mining_capabilities[node_id]
                  if node_id < len(self._mining_capabilities) else None)
        return CorruptionGrant(
            node_id=node_id,
            round=self.current_round,
            node=node,
            revealed_state=node.reveal_state(),
            signing_capability=signing,
            mining_capability=mining,
        )

    def stage_adversarial(self, sender: NodeId, recipient: Optional[NodeId],
                          payload) -> Envelope:
        envelope = self.network.stage(
            sender, recipient, payload,
            round_sent=max(self.current_round, 0), honest_sender=False)
        self.metrics.record(envelope)
        return envelope

    # -- the round loop ------------------------------------------------------
    def _honest_step(self, round_index: Round, inboxes) -> None:
        for node in self.nodes:
            node_id = node.node_id
            if self.controller.is_corrupt(node_id) or node.halted:
                continue
            ctx = RoundContext(node_id, round_index, inboxes[node_id],
                               self.rng_for_node(node_id))
            node.on_round(ctx)
            for recipient, payload in ctx.staged:
                envelope = self.network.stage(
                    node_id, recipient, payload, round_index,
                    honest_sender=True)
                self.metrics.record(envelope)

    def _all_honest_halted(self) -> bool:
        return all(node.halted or self.controller.is_corrupt(node.node_id)
                   for node in self.nodes)

    def _run_event(self) -> int:
        """The event-driven partial-synchrony loop.

        Same synchronizer argument as :func:`legacy_synchronize` — one
        protocol step per Δ network rounds, so every Δ-bounded delivery
        lands before the step that needs it — but the clock only visits
        ticks that have work: the tick after a step (its staging window
        must drain into the event queue, in staging order, so the RNG
        stream is untouched), every tick with a due delivery event
        (popped from the queue in ``(time, seq, recipient)`` order), and
        every step tick.  Idle ticks in between are jumped over; the
        conditioned network accounts them in ``stats.skipped_ticks``
        exactly as the lock-step path counts its no-op rounds, keeping
        NetworkStats engine-invariant.
        """
        network = self.network
        stretch = self.conditions.delta
        limit = self.max_rounds * stretch
        n = self.n
        buffered: Dict[NodeId, list] = {node: [] for node in range(n)}
        rounds_executed = 0
        network_round = 0
        while network_round < limit:
            for copy in network.advance_to(network_round):
                buffered[copy.recipient].append(copy.delivery)
            if network_round % stretch == 0:
                round_index = network_round // stretch
                self.current_round = round_index
                self.adversary.observe_deliveries(round_index, buffered)
                self._honest_step(round_index, buffered)
                buffered = {node: [] for node in range(n)}
                self.adversary.react(round_index, network.in_flight())
                rounds_executed = round_index + 1
                if self._all_honest_halted():
                    break
            # The next tick with work.  A non-empty staging window forces
            # the very next tick (its coins must be drawn at the same
            # clock the synchronizer would draw them); otherwise jump to
            # the earlier of the next due event and the next step.
            if network.has_staged():
                network_round += 1
                continue
            upcoming = network_round - network_round % stretch + stretch
            due = network.next_due_round()
            if due is not None and due < upcoming:
                upcoming = due
            network_round = upcoming
        else:
            # Round budget exhausted without a halt: the lock-step loop
            # would have ticked its clock all the way out.
            network.finish_clock(limit)
        return rounds_executed

    def run(self) -> ExecutionResult:
        if self._ran:
            raise SimulationError("a Simulation instance runs exactly once")
        self._ran = True

        # Setup phase (round -1): static adversaries corrupt here.
        self.adversary.bind(self._api)

        rounds_executed = 0
        if self.conditions is not None:
            if self.scheduler == SCHEDULER_LOCKSTEP:
                rounds_executed = legacy_synchronize(self)
            else:
                rounds_executed = self._run_event()
        else:
            for round_index in range(self.max_rounds):
                self.current_round = round_index
                inboxes = self.network.deliver()
                self.adversary.observe_deliveries(round_index, inboxes)
                self._honest_step(round_index, inboxes)
                self.adversary.react(round_index, self.network.in_flight())
                rounds_executed = round_index + 1
                if self._all_honest_halted():
                    break

        # The size memo pins message objects; this execution's messages
        # never recur in a later one, so release them now.
        clear_size_cache()

        outputs: Dict[NodeId, Bit] = {}
        decided_rounds: Dict[NodeId, Optional[Round]] = {}
        for node in self.nodes:
            if self.controller.is_corrupt(node.node_id):
                continue
            outputs[node.node_id] = node.finalize()
            decided_rounds[node.node_id] = node.decided_round
        return ExecutionResult(
            n=self.n,
            corruption_budget=self.controller.budget,
            corrupt_set=set(self.controller.corrupt_set),
            rounds_executed=rounds_executed,
            outputs=outputs,
            decided_rounds=decided_rounds,
            metrics=self.metrics,
            inputs=dict(self.inputs),
            transcript=list(self.network.transcript),
            transcript_retained=self.network.retain_transcript,
            network_stats=getattr(self.network, "stats", None),
            rounds_budget=self.max_rounds,
        )


def legacy_synchronize(simulation: Simulation) -> int:
    """Reference implementation of the conditioned loop: the Δ-lockstep
    synchronizer, ticking the network once per network round.

    The synchronizer argument: with every copy delivered within Δ
    network rounds of sending (post-GST), stepping the protocol only
    every Δ rounds guarantees each step sees everything the previous
    step sent — so a lock-step protocol runs unchanged under any
    Δ-bounded delivery schedule.  ``current_round`` (and everything
    the adversary and the nodes see) stays in *protocol* rounds; the
    network keeps its own network-round clock for scheduling.
    Deliveries landing between steps accumulate into per-node
    buffers handed over at the next step.

    Kept — like :func:`~repro.sim.network.legacy_deliver` — as the
    conformance reference for the event scheduler: the differential
    suite (``tests/test_event_engine_differential.py``) runs whole
    executions through both paths and asserts identity of decisions,
    rounds, transcripts, NetworkStats, and RNG draw order.  Selectable
    per execution via ``Simulation(scheduler="lockstep")`` or globally
    via ``REPRO_SCHEDULER=lockstep``.
    """
    stretch = simulation.conditions.delta
    n = simulation.n
    buffered: Dict[NodeId, list] = {node: [] for node in range(n)}
    rounds_executed = 0
    for network_round in range(simulation.max_rounds * stretch):
        inboxes = simulation.network.deliver()
        for node, deliveries in inboxes.items():
            if deliveries:
                buffered[node].extend(deliveries)
        if network_round % stretch:
            continue
        round_index = network_round // stretch
        simulation.current_round = round_index
        simulation.adversary.observe_deliveries(round_index, buffered)
        simulation._honest_step(round_index, buffered)
        buffered = {node: [] for node in range(n)}
        simulation.adversary.react(round_index,
                                   simulation.network.in_flight())
        rounds_executed = round_index + 1
        if simulation._all_honest_halted():
            break
    return rounds_executed
