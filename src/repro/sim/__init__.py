"""Synchronous protocol-execution model (Appendix A.1).

The simulator realises the paper's Interactive-Turing-Machine round model:

- execution proceeds in synchronous rounds; every message multicast by a
  so-far-honest node in round ``r`` reaches every honest node at the
  beginning of round ``r + 1``;
- a *rushing* adaptive adversary observes the messages honest nodes are
  about to send in the current round, may corrupt nodes mid-round
  (budget-checked), may make newly corrupt nodes send additional messages
  in the same round — but may erase already-sent messages only when it is
  granted the **strongly adaptive** capability (after-the-fact removal,
  Section 2);
- on corruption the adversary receives the node's revealed state
  (capabilities, secret keys, protocol state) — minus anything erased
  under the memory-erasure model;
- communication is accounted per Definitions 6 and 7 (classical and
  multicast complexity);
- optionally, the execution runs under declarative partial-synchrony
  :class:`NetworkConditions` (bounded delay Δ with GST, drops,
  duplication, scheduled partitions — see ``docs/NETWORK.md``), with
  the engine dilating protocol rounds by Δ so the lock-step protocols
  stay correct; perfect conditions keep the lock-step fast path.
"""

from repro.sim.adversary import Adversary, AdversaryApi, PassiveAdversary
from repro.sim.conditions import (
    NETWORKS,
    TOPOLOGIES,
    ConditionedNetwork,
    LinkTopology,
    NetworkConditions,
    NetworkStats,
    Partition,
)
from repro.sim.corruption import CorruptionController, CorruptionGrant
from repro.sim.engine import (
    Simulation,
    TRANSCRIPT_FULL,
    TRANSCRIPT_METRICS_ONLY,
)
from repro.sim.leader import LeaderOracle, RandomLeaderOracle, RoundRobinLeaderOracle
from repro.sim.metrics import CommunicationMetrics
from repro.sim.network import Delivery, Envelope, SynchronousNetwork
from repro.sim.node import Node, RoundContext
from repro.sim.result import ExecutionResult
from repro.sim.trace import TraceSummary, committee_per_topic, summarize_transcript

__all__ = [
    "Adversary",
    "AdversaryApi",
    "PassiveAdversary",
    "NETWORKS",
    "TOPOLOGIES",
    "ConditionedNetwork",
    "LinkTopology",
    "NetworkConditions",
    "NetworkStats",
    "Partition",
    "CorruptionController",
    "CorruptionGrant",
    "Simulation",
    "TRANSCRIPT_FULL",
    "TRANSCRIPT_METRICS_ONLY",
    "LeaderOracle",
    "RandomLeaderOracle",
    "RoundRobinLeaderOracle",
    "CommunicationMetrics",
    "Delivery",
    "Envelope",
    "SynchronousNetwork",
    "Node",
    "RoundContext",
    "ExecutionResult",
    "TraceSummary",
    "committee_per_topic",
    "summarize_transcript",
]
