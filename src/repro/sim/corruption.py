"""Corruption bookkeeping: budgets, timing, and revealed state.

Implements the corruption semantics of Appendix A.1:

- at most ``f`` corruptions over the whole execution (``(n, α)``-respecting
  environments, Definition 5);
- a *static* adversary must fix its corrupt set before round 0;
- an *adaptive* adversary corrupts at any point, including mid-round after
  observing staged messages;
- upon corruption the adversary receives the node's revealed state and its
  capabilities (signing, mining) — the simulation analogue of learning all
  its secrets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.errors import CapabilityError, CorruptionBudgetExceeded
from repro.types import AdversaryModel, NodeId, Round


@dataclass
class CorruptionGrant:
    """Everything the adversary obtains by corrupting one node."""

    node_id: NodeId
    round: Round
    node: Any
    revealed_state: Dict[str, Any]
    signing_capability: Optional[Any] = None
    mining_capability: Optional[Any] = None


class CorruptionController:
    """Tracks who is corrupt, when they fell, and enforces the budget."""

    def __init__(self, n: int, budget: int, model: AdversaryModel) -> None:
        if not 0 <= budget < n:
            raise CorruptionBudgetExceeded(
                f"budget f={budget} must satisfy 0 <= f < n={n}")
        self.n = n
        self.budget = budget
        self.model = model
        self.corrupt_set: Set[NodeId] = set()
        self.corruption_round: Dict[NodeId, Round] = {}

    @property
    def corruptions_used(self) -> int:
        return len(self.corrupt_set)

    @property
    def corruptions_remaining(self) -> int:
        return self.budget - len(self.corrupt_set)

    def is_corrupt(self, node_id: NodeId) -> bool:
        return node_id in self.corrupt_set

    def is_so_far_honest(self, node_id: NodeId) -> bool:
        return node_id not in self.corrupt_set

    def honest_nodes(self) -> list[NodeId]:
        return [node for node in range(self.n) if node not in self.corrupt_set]

    def was_honest_in_round(self, node_id: NodeId, round_index: Round) -> bool:
        """Whether the node stayed honest for the whole of ``round_index``.

        A node corrupted *during* round r counts as no-longer-honest for
        r here; note the engine attributes messages by honesty at the
        moment of sending, so a message sent just before the mid-round
        corruption still counts as honest (the paper's "honest mining
        attempt" convention).
        """
        fell = self.corruption_round.get(node_id)
        return fell is None or fell > round_index

    def authorize(self, node_id: NodeId, round_index: Round) -> None:
        """Validate a corruption request before the engine executes it."""
        if not 0 <= node_id < self.n:
            raise CapabilityError(f"node {node_id} does not exist")
        if node_id in self.corrupt_set:
            return  # idempotent
        if len(self.corrupt_set) >= self.budget:
            raise CorruptionBudgetExceeded(
                f"corruption budget f={self.budget} exhausted")
        if self.model is AdversaryModel.STATIC and round_index >= 0:
            raise CapabilityError(
                "a static adversary must corrupt before the execution starts")

    def mark_corrupt(self, node_id: NodeId, round_index: Round) -> None:
        if node_id not in self.corrupt_set:
            self.corrupt_set.add(node_id)
            self.corruption_round[node_id] = round_index
