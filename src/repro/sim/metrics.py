"""Communication accounting (Definitions 6 and 7).

- *Classical communication complexity* (Definition 6): total bits
  exchanged between pairs of honest nodes.  A multicast counts as ``n - 1``
  pairwise messages of the same length.
- *Multicast complexity* (Definition 7): total bits **multicast by honest
  nodes**.  This is the headline metric of Theorem 2: the subquadratic
  protocol multicasts ``O(λ²)`` messages of ``O(λ(log κ + log n))`` bits
  regardless of ``n``.

A message is attributed to the honest side iff its sender was so-far-honest
at the moment of sending; subsequent corruption (or after-the-fact removal
of the message) does not retroactively un-count it, matching the paper's
"honest mining attempt" convention (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.serialization import encoded_size_bits
from repro.sim.network import Envelope
from repro.types import Round

try:  # vectorized per-round aggregation; pure-python fallback without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    _np = None


@dataclass
class CommunicationMetrics:
    n: int
    honest_multicast_count: int = 0
    honest_multicast_bits: int = 0
    honest_unicast_count: int = 0
    honest_unicast_bits: int = 0
    corrupt_multicast_count: int = 0
    corrupt_unicast_count: int = 0
    max_message_bits: int = 0
    per_round_honest_multicasts: Dict[Round, int] = field(default_factory=dict)
    #: Raw (round, bits) event log of honest multicasts, aggregated
    #: lazily (and vectorized) by :meth:`per_round_multicast_bits`.
    #: Excluded from equality/repr: it is derived bookkeeping — two
    #: metric states with equal counters are equal regardless of how the
    #: event log happens to be chunked.
    _multicast_bit_events: List[Tuple[Round, int]] = field(
        default_factory=list, compare=False, repr=False)

    def record(self, envelope: Envelope) -> None:
        bits = encoded_size_bits(envelope.payload)
        if envelope.honest_sender:
            self.max_message_bits = max(self.max_message_bits, bits)
            if envelope.is_multicast:
                self.honest_multicast_count += 1
                self.honest_multicast_bits += bits
                per_round = self.per_round_honest_multicasts
                per_round[envelope.round_sent] = (
                    per_round.get(envelope.round_sent, 0) + 1)
                self._multicast_bit_events.append(
                    (envelope.round_sent, bits))
            else:
                self.honest_unicast_count += 1
                self.honest_unicast_bits += bits
        else:
            if envelope.is_multicast:
                self.corrupt_multicast_count += 1
            else:
                self.corrupt_unicast_count += 1

    def per_round_multicast_bits(self) -> Dict[Round, int]:
        """Bits multicast by honest nodes, per round sent.

        Aggregated from the raw event log on demand — one numpy
        ``bincount`` over the whole execution instead of a per-envelope
        dict update on the staging hot path (the pure-python fallback
        only runs where numpy is unavailable).
        """
        events = self._multicast_bit_events
        if not events:
            return {}
        if _np is not None:
            arr = _np.asarray(events, dtype=_np.int64)
            totals = _np.bincount(arr[:, 0], weights=arr[:, 1])
            return {round_index: int(total)
                    for round_index, total in enumerate(totals) if total}
        totals_by_round: Dict[Round, int] = {}
        for round_index, bits in events:
            totals_by_round[round_index] = (
                totals_by_round.get(round_index, 0) + bits)
        return totals_by_round

    # -- Definition 7 ----------------------------------------------------
    @property
    def multicast_complexity_bits(self) -> int:
        """Total bits multicast by honest nodes."""
        return self.honest_multicast_bits

    @property
    def multicast_complexity_messages(self) -> int:
        """Total number of honest multicasts."""
        return self.honest_multicast_count

    # -- Definition 6 ----------------------------------------------------
    @property
    def classical_message_count(self) -> int:
        """Honest sends counted as pairwise messages."""
        return (self.honest_multicast_count * (self.n - 1)
                + self.honest_unicast_count)

    @property
    def classical_bits(self) -> int:
        return (self.honest_multicast_bits * (self.n - 1)
                + self.honest_unicast_bits)
