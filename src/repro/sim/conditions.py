"""Partial-synchrony network conditions: delays, drops, partitions, GST.

The paper's protocols are stated for lock-step synchrony (every message
staged in round ``r`` arrives at the beginning of round ``r + 1``).  Their
practical interest, though, is how communication and round counts behave
when delivery is delayed, lossy, or partitioned — the partial-synchrony
regime of Dwork–Lynch–Stockmeyer that follow-up work (Momose–Ren's
"Optimal Communication Complexity of Byzantine Agreement, Revisited",
Cohen–Keidar–Spiegelman's "Make Every Word Count") targets directly.

This module makes that regime a declarative, picklable value:

- :class:`NetworkConditions` describes one network environment: the
  bounded-delay parameter ``Δ``, a global stabilization time (GST),
  a per-copy latency distribution, pre-GST drop/duplication rates,
  scheduled :class:`Partition` windows, and an optional per-link
  :class:`LinkTopology` (clustered / star / ring / explicit matrix)
  consulted per ``(sender, receiver)`` pair.
- :class:`ConditionedNetwork` realises those conditions on top of the
  :class:`~repro.sim.network.SynchronousNetwork` staging/suppression
  contract, scheduling each message *copy* for a future delivery round
  with coins drawn deterministically from the trial seed.
- :class:`NetworkStats` accounts the new axis: effective per-copy
  delivery latency, peak messages-in-flight, drops, duplicates,
  partition deferrals, and adversarial delays.

Semantics (see ``docs/NETWORK.md`` for the full model):

- Time is measured in *network rounds*.  Under conditions with ``Δ > 1``
  the engine runs a synchronizer: honest nodes take one protocol step
  every ``Δ`` network rounds, so every copy delayed at most ``Δ`` rounds
  arrives before the step that needs it — the classical clock-dilation
  argument for running a lock-step protocol under bounded delay.
- A copy sent at network round ``s ≥ gst`` is delivered at some round in
  ``(s, s + Δ]``: the latency draw (and any adversarial delay) is clamped
  to ``Δ``.  Copies sent before GST may be delayed up to ``pre_gst_cap``
  rounds, dropped, or duplicated.
- A :class:`Partition` defers copies that would cross it (in either
  direction) to its heal round; partitions model outages, so a crossing
  copy may exceed the ``Δ`` bound.  Conditions used by the Δ-bounded
  property tests therefore schedule no partitions.
- The default conditions, :meth:`NetworkConditions.perfect`, are exactly
  the lock-step model; the engine detects them and keeps using the plain
  :class:`SynchronousNetwork` fast path, byte-identical to before.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.rng import Seed, derive_rng
from repro.sim.network import Delivery, Envelope, SynchronousNetwork
from repro.types import NodeId, Round

#: Supported latency-distribution spec heads (first element of the
#: ``latency`` tuple).  Specs are plain tuples so conditions stay
#: hashable and picklable (worker processes receive them by pickle).
LATENCY_SPECS = ("fixed", "uniform", "geometric")

#: Supported :class:`LinkTopology` kinds.
TOPOLOGY_KINDS = ("uniform", "clustered", "star", "ring", "matrix")


@dataclass(frozen=True)
class LinkTopology:
    """Per-link latency shaping: a deterministic extra delay per
    ``(sender, receiver)`` pair (hashable, picklable).

    The per-copy base latency draw models *jitter*; the topology models
    *where the slow links are*.  :class:`ConditionedNetwork` consults the
    topology once per pair — the same pair always pays the same surcharge
    — before the Δ clamp, so a topology shapes latency **within** the
    Δ bound rather than extending it.

    Kinds (use the classmethod constructors):

    ``uniform``
        No shaping; every link is identical (the implicit default).
    ``clustered``
        Nodes split into ``clusters`` contiguous blocks (datacenter
        pods); cross-cluster copies pay ``extra`` rounds.
    ``star``
        Links touching the ``hub`` node are fast; spoke-to-spoke copies
        pay ``extra`` rounds (hub-and-spoke routing).
    ``ring``
        Copies pay ``extra`` rounds per ring hop beyond the first, for
        the shorter direction around the ring.
    ``matrix``
        An explicit ``n × n`` surcharge matrix (rows = senders); the
        only n-dependent kind, validated against the network size.
    """

    kind: str
    clusters: int = 2
    extra: int = 1
    hub: NodeId = 0
    matrix: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ConfigurationError(
                f"unknown topology kind {self.kind!r} "
                f"(have {TOPOLOGY_KINDS})")
        if self.kind == "clustered" and self.clusters < 2:
            raise ConfigurationError(
                f"clustered topology needs >= 2 clusters, "
                f"got {self.clusters}")
        if self.kind != "matrix" and self.extra < 0:
            raise ConfigurationError(
                f"topology extra delay must be >= 0, got {self.extra}")
        if self.kind == "matrix":
            if not self.matrix:
                raise ConfigurationError("matrix topology needs a matrix")
            for row in self.matrix:
                if len(row) != len(self.matrix):
                    raise ConfigurationError(
                        "topology matrix must be square")
                if any(not isinstance(cell, int) or cell < 0 for cell in row):
                    raise ConfigurationError(
                        "topology matrix entries must be ints >= 0")

    # -- constructors --------------------------------------------------------
    @classmethod
    def uniform(cls) -> "LinkTopology":
        return cls(kind="uniform", extra=0)

    @classmethod
    def clustered(cls, clusters: int = 4, extra: int = 2) -> "LinkTopology":
        return cls(kind="clustered", clusters=clusters, extra=extra)

    @classmethod
    def star(cls, hub: NodeId = 0, extra: int = 2) -> "LinkTopology":
        return cls(kind="star", hub=hub, extra=extra)

    @classmethod
    def ring(cls, extra: int = 1) -> "LinkTopology":
        return cls(kind="ring", extra=extra)

    @classmethod
    def from_matrix(cls, rows) -> "LinkTopology":
        return cls(kind="matrix",
                   matrix=tuple(tuple(row) for row in rows))

    # -- predicates ----------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True iff no link ever pays a surcharge (so conditions carrying
        this topology can still normalize to the lock-step fast path)."""
        if self.kind == "matrix":
            return all(cell == 0 for row in self.matrix for cell in row)
        return self.kind == "uniform" or self.extra == 0

    def check_n(self, n: int) -> None:
        """Validate the topology against a concrete network size."""
        if self.kind == "matrix" and len(self.matrix) != n:
            raise ConfigurationError(
                f"matrix topology is {len(self.matrix)}x"
                f"{len(self.matrix)} but the network has {n} nodes")
        if self.kind == "star" and not 0 <= self.hub < n:
            raise ConfigurationError(
                f"star hub {self.hub} out of range for n={n}")

    def link_extra(self, sender: NodeId, receiver: NodeId, n: int) -> int:
        """The deterministic surcharge for one directed link."""
        if self.kind == "uniform":
            return 0
        if self.kind == "clustered":
            if sender * self.clusters // n == receiver * self.clusters // n:
                return 0
            return self.extra
        if self.kind == "star":
            if sender == self.hub or receiver == self.hub:
                return 0
            return self.extra
        if self.kind == "ring":
            distance = min((sender - receiver) % n, (receiver - sender) % n)
            return self.extra * max(0, distance - 1)
        return self.matrix[sender][receiver]

    def describe(self) -> str:
        """A short scalar label for tables and artifact rows."""
        if self.kind == "uniform":
            return "uniform"
        if self.kind == "clustered":
            return f"clustered({self.clusters},+{self.extra})"
        if self.kind == "star":
            return f"star(hub={self.hub},+{self.extra})"
        if self.kind == "ring":
            return f"ring(+{self.extra}/hop)"
        return f"matrix({len(self.matrix)}x{len(self.matrix)})"


#: Named, n-independent topology presets usable as ``topology`` bindings
#: in scenario sweeps and as ``--topology`` CLI values (the ``matrix``
#: kind is inline-only: it pins n).
TOPOLOGIES: Dict[str, LinkTopology] = {
    "uniform": LinkTopology.uniform(),
    # Four datacenter pods; crossing a pod boundary costs two rounds.
    "clustered": LinkTopology.clustered(clusters=4, extra=2),
    # Hub-and-spoke: node 0 is the well-connected relay.
    "star": LinkTopology.star(hub=0, extra=2),
    # A ring where each extra hop around the shorter arc costs a round.
    "ring": LinkTopology.ring(extra=1),
}


@dataclass(frozen=True)
class Partition:
    """A scheduled network split over ``[start, end)`` network rounds.

    Either ``split`` (a fraction: nodes ``< split * n`` form one side,
    the rest the other — size-independent, usable across a sweep's
    ``n`` axis) or explicit ``groups`` (blocks of node ids; unlisted
    nodes form one implicit extra block) must be given, not both.
    Copies crossing the partition while it is active are deferred to
    the heal round ``end`` rather than dropped.
    """

    start: Round
    end: Round
    split: Optional[float] = None
    groups: Tuple[Tuple[NodeId, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"partition must heal after it starts "
                f"(start={self.start}, end={self.end})")
        if (self.split is None) == (not self.groups):
            raise ConfigurationError(
                "partition needs exactly one of split= or groups=")
        if self.split is not None and not 0.0 < self.split < 1.0:
            raise ConfigurationError(
                f"partition split must be in (0, 1), got {self.split}")

    def active_at(self, round_index: Round) -> bool:
        return self.start <= round_index < self.end

    def _block_of(self, node: NodeId, n: int) -> int:
        if self.split is not None:
            return 0 if node < self.split * n else 1
        for index, block in enumerate(self.groups):
            if node in block:
                return index
        return len(self.groups)

    def separates(self, sender: NodeId, recipient: NodeId, n: int) -> bool:
        return self._block_of(sender, n) != self._block_of(recipient, n)


@dataclass(frozen=True)
class NetworkConditions:
    """One declarative network environment (hashable, picklable).

    ``delta``
        The bounded-delay parameter Δ (in network rounds).  Post-GST
        every copy is delivered within Δ rounds of sending, and the
        engine dilates protocol rounds by Δ so lock-step protocols stay
        correct under any Δ-bounded schedule.
    ``gst``
        Global stabilization time (network round).  ``0`` means the
        network is Δ-bounded from the start; before GST copies may be
        dropped (``drop_rate``), duplicated (``duplicate_rate``), or
        delayed up to ``pre_gst_cap`` rounds.
    ``latency``
        Per-copy base delay distribution, as a spec tuple:
        ``("fixed", k)``, ``("uniform", lo, hi)``, or
        ``("geometric", p)`` (support ``{1, 2, ...}``, mean ``1/p``).
        Draws are clamped to ``[1, Δ]`` post-GST.
    ``partitions``
        Scheduled :class:`Partition` windows; crossing copies defer to
        the heal round (outages trump the Δ bound — see module docs).
    """

    delta: int = 1
    gst: Round = 0
    latency: Tuple[Any, ...] = ("fixed", 1)
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    partitions: Tuple[Partition, ...] = ()
    #: Hard cap on any pre-GST delay (default ``3 * delta``): keeps
    #: asynchronous periods finite so executions always make progress.
    pre_gst_cap: Optional[int] = None
    #: Per-link latency shaping (None = every link identical); the
    #: surcharge is applied before the Δ clamp, so a topology shapes
    #: latency within the bound rather than extending it.
    topology: Optional[LinkTopology] = None

    def __post_init__(self) -> None:
        if self.delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {self.delta}")
        if self.gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {self.gst}")
        for rate, label in ((self.drop_rate, "drop_rate"),
                            (self.duplicate_rate, "duplicate_rate")):
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(
                    f"{label} must be in [0, 1), got {rate}")
            if rate and self.gst == 0:
                # Drops/duplication only exist before GST; accepting the
                # combination would silently measure a lossless network.
                raise ConfigurationError(
                    f"{label}={rate} has no effect with gst=0 (losses "
                    "are pre-GST only); set gst > 0 for a lossy prelude")
        self._validate_latency()
        if not isinstance(self.partitions, tuple):
            raise ConfigurationError("partitions must be a tuple")
        if self.pre_gst_cap is not None and self.pre_gst_cap < 1:
            raise ConfigurationError(
                f"pre_gst_cap must be >= 1, got {self.pre_gst_cap}")
        if self.topology is not None and not isinstance(
                self.topology, LinkTopology):
            raise ConfigurationError(
                f"topology must be a LinkTopology, got {self.topology!r}")
        if (self.topology is not None and not self.topology.is_trivial
                and self.delta == 1):
            # Every surcharge would be clamped straight back to Δ = 1;
            # accepting the combination would silently measure a uniform
            # network.
            raise ConfigurationError(
                f"topology {self.topology.describe()} has no effect with "
                "delta=1 (link surcharges are clamped to Δ); use delta > 1")

    def _validate_latency(self) -> None:
        """Full spec validation (head, arity, parameter ranges) so a
        malformed spec fails at construction, not mid-sweep in a worker."""
        spec = self.latency
        if (not isinstance(spec, tuple) or not spec
                or spec[0] not in LATENCY_SPECS):
            raise ConfigurationError(
                f"latency spec must be a tuple headed by one of "
                f"{LATENCY_SPECS}, got {spec!r}")
        head, args = spec[0], spec[1:]
        if head == "fixed":
            if len(args) != 1 or not isinstance(args[0], int) or args[0] < 1:
                raise ConfigurationError(
                    f'("fixed", k) needs one int k >= 1, got {spec!r}')
        elif head == "uniform":
            if (len(args) != 2
                    or not all(isinstance(arg, int) for arg in args)
                    or not 1 <= args[0] <= args[1]):
                raise ConfigurationError(
                    f'("uniform", lo, hi) needs ints 1 <= lo <= hi, '
                    f"got {spec!r}")
        else:  # geometric
            if (len(args) != 1 or not isinstance(args[0], (int, float))
                    or not 0.0 < args[0] <= 1.0):
                raise ConfigurationError(
                    f'("geometric", p) needs 0 < p <= 1, got {spec!r}')

    # -- constructors --------------------------------------------------------
    @classmethod
    def perfect(cls) -> "NetworkConditions":
        """Lock-step synchrony: the model everything else defaults to."""
        return cls()

    @classmethod
    def uniform(cls, delta: int, gst: Round = 0,
                **kwargs: Any) -> "NetworkConditions":
        """Δ-bounded delivery with uniform per-copy latency in [1, Δ]."""
        return cls(delta=delta, gst=gst, latency=("uniform", 1, delta),
                   **kwargs)

    # -- predicates ----------------------------------------------------------
    @property
    def is_perfect(self) -> bool:
        """True iff these conditions are exactly the lock-step model (so
        the engine can keep the unconditioned fast path)."""
        return (self.delta == 1 and self.gst == 0
                and self.latency == ("fixed", 1)
                and self.drop_rate == 0.0 and self.duplicate_rate == 0.0
                and not self.partitions
                and (self.topology is None or self.topology.is_trivial))

    @property
    def effective_pre_gst_cap(self) -> int:
        return self.pre_gst_cap if self.pre_gst_cap is not None \
            else 3 * self.delta

    @property
    def trusted_send_round(self) -> Round:
        """First *protocol* round whose sends are guaranteed to reach
        every honest node before its next step.

        A copy sent at protocol round ``p`` leaves at network round
        ``p · Δ``; once that is at or past GST (and past every scheduled
        partition's heal) the Δ clamp delivers it within the dilation
        window, so a lock-step tally at round ``p + 1`` sees the *whole*
        round-``p`` message complement.  GST-aware early-stopping
        protocols (``docs/PROTOCOLS.md``) gate their unanimity detectors
        on this round: an apparently unanimous round observed earlier may
        be an artifact of pre-GST drops or an unhealed partition, and
        acting on it is unsound."""
        stable_from = self.gst
        for partition in self.partitions:
            stable_from = max(stable_from, partition.end)
        if stable_from <= 0:
            return 0
        return -(-stable_from // self.delta)  # ceil division

    def describe(self) -> str:
        """A short scalar label for tables and artifact rows."""
        parts = [f"Δ={self.delta}"]
        if self.gst:
            parts.append(f"gst={self.gst}")
        if self.latency != ("fixed", 1) and self.latency != ("uniform", 1,
                                                             self.delta):
            parts.append("latency=" + ",".join(str(x) for x in self.latency))
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate}")
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.topology is not None and not self.topology.is_trivial:
            parts.append(f"topology={self.topology.describe()}")
        return " ".join(parts)

    def draw_latency(self, rng: random.Random) -> int:
        """One base-delay draw from the (validated) latency spec."""
        head = self.latency[0]
        if head == "fixed":
            return self.latency[1]
        if head == "uniform":
            return rng.randint(self.latency[1], self.latency[2])
        # geometric(p): number of Bernoulli(p) trials up to first success
        # (tail-capped so p close to 0 cannot spin; the GST clamps bound
        # the effective delay anyway).
        p = self.latency[1]
        delay = 1
        while rng.random() >= p and delay < 64:
            delay += 1
        return delay


#: Named, n-independent condition presets usable as ``network`` bindings
#: in scenario sweeps and as ``--network`` CLI values.  Rounds in the
#: presets are *network* rounds (protocol round p starts at p·Δ).
NETWORKS: Dict[str, NetworkConditions] = {
    "perfect": NetworkConditions.perfect(),
    # A fast, mildly jittery datacenter link: Δ-bounded from round 0.
    "lan": NetworkConditions.uniform(delta=2),
    # Wide-area jitter: delays up to 4 network rounds, stable from start.
    "wan": NetworkConditions.uniform(delta=4),
    # An asynchronous prelude: until GST the network drops a tenth of all
    # copies and duplicates some, then stabilizes to Δ = 3.
    "lossy": NetworkConditions(
        delta=3, gst=9, latency=("uniform", 1, 3),
        drop_rate=0.10, duplicate_rate=0.05),
    # A clean half/half split that heals: rounds 2..10 cross-partition
    # copies queue up and flood in at the heal.
    "split-heal": NetworkConditions(
        delta=2, latency=("uniform", 1, 2),
        partitions=(Partition(start=2, end=10, split=0.5),)),
}


@dataclass
class NetworkStats:
    """Aggregate accounting of one conditioned execution's network axis."""

    delivered_copies: int = 0
    dropped_copies: int = 0
    duplicated_copies: int = 0
    deferred_copies: int = 0
    adversary_delayed_copies: int = 0
    #: Sum over delivered copies of (delivery round - send round).
    latency_total: int = 0
    #: Peak number of scheduled-but-undelivered copies.
    max_in_flight: int = 0
    #: Network rounds the conditioned engine executed.
    network_rounds: int = 0
    #: Idle network ticks: rounds in which the network neither drained a
    #: staging window nor popped a due event.  The event engine skips
    #: them outright; the lock-step synchronizer executes them as no-ops
    #: and counts the same rounds — so the field is engine-invariant and
    #: the conformance suite compares it directly.  Its ratio to
    #: ``network_rounds`` is the empty-round density the event engine's
    #: wall-clock win is proportional to.
    skipped_ticks: int = 0
    #: Delivery-queue events processed: one per copy entering the
    #: timestamp-ordered queue (initial schedules, pre-GST duplicates,
    #: and partition re-queues at heal time).  Engine-invariant for the
    #: same reason as ``skipped_ticks``.
    events_processed: int = 0

    @property
    def mean_delivery_latency(self) -> float:
        """Effective round latency: mean copy delay in network rounds."""
        if not self.delivered_copies:
            return 0.0
        return self.latency_total / self.delivered_copies

    def accumulate(self, other: "NetworkStats") -> None:
        """Fold another execution's stats into this aggregate (peak for
        ``max_in_flight``, sums elsewhere) — used by
        :class:`~repro.harness.runner.TrialStats` so multi-trial network
        aggregation reuses these fields instead of mirroring them."""
        self.delivered_copies += other.delivered_copies
        self.dropped_copies += other.dropped_copies
        self.duplicated_copies += other.duplicated_copies
        self.deferred_copies += other.deferred_copies
        self.adversary_delayed_copies += other.adversary_delayed_copies
        self.latency_total += other.latency_total
        self.max_in_flight = max(self.max_in_flight, other.max_in_flight)
        self.network_rounds += other.network_rounds
        self.skipped_ticks += other.skipped_ticks
        self.events_processed += other.events_processed


@dataclass
class _PendingCopy:
    """One scheduled message copy awaiting its delivery round."""

    envelope: Envelope
    recipient: NodeId
    sent_round: Round
    due_round: Round
    delivery: Delivery


class ConditionedNetwork(SynchronousNetwork):
    """Delay/drop/duplicate/partition semantics over the staging contract.

    Keeps the base class's staging, suppression, and transcript behavior
    (so adversary code and the engine's rushing window are unchanged) and
    replaces same-round delivery with a per-copy schedule: each copy gets
    a delivery round drawn deterministically from the trial seed, subject
    to the GST/Δ clamps, pre-GST drops and duplication, scheduled
    partitions, and any adversarial delays registered this round.

    Scheduled copies live in one timestamp-ordered priority queue whose
    entries sort by ``(due_round, seq, recipient)`` — ``seq`` is a
    monotone insertion counter, so ties at the same round pop in exactly
    the order copies entered the queue (staging order with recipients
    ascending, partition re-queues after them).  That is precisely the
    per-round list order the historical dict-of-rounds kept, which is
    what makes the event engine's executions result-identical to the
    Δ-lockstep synchronizer's.  Deferred copies carry their heal round
    as their new timestamp and re-enter the queue in O(log n); nothing
    re-scans the schedule per tick, and :meth:`next_due_round` exposes
    the queue head so the event engine can skip idle ticks entirely.
    """

    def __init__(self, n: int, conditions: NetworkConditions,
                 seed: Seed = 0, retain_transcript: bool = True) -> None:
        super().__init__(n, retain_transcript=retain_transcript)
        if conditions.topology is not None:
            conditions.topology.check_n(n)
        self.conditions = conditions
        self.stats = NetworkStats()
        self._rng = derive_rng(seed, "network-conditions")
        #: The delivery event queue: a heap of
        #: ``(due_round, seq, recipient, copy)`` entries.
        self._queue: List[Tuple[Round, int, NodeId, _PendingCopy]] = []
        self._seq = 0
        #: Extra rounds requested by the adversary for in-flight copies,
        #: keyed by (envelope_id, recipient) — recipient None = all.
        self._extra_delay: Dict[Tuple[int, Optional[NodeId]], int] = {}

    # -- the adversarial scheduler hook -------------------------------------
    def delay(self, envelope: Envelope, recipient: Optional[NodeId] = None,
              rounds: int = 1) -> None:
        """Register extra delay for an in-flight copy (cumulative).

        Same window as :meth:`suppress`: only messages staged this round
        can be touched.  The extra delay is applied when the copy is
        scheduled; post-GST the total is still clamped to Δ, so the
        adversary can push a copy to the Δ deadline but never past it.
        """
        if envelope.envelope_id not in self._staged_ids:
            raise SimulationError(
                "cannot delay a message that is not in flight")
        if rounds < 1:
            raise SimulationError(f"delay must be >= 1 round, got {rounds}")
        key = (envelope.envelope_id, recipient)
        self._extra_delay[key] = self._extra_delay.get(key, 0) + rounds

    # -- scheduling ----------------------------------------------------------
    def _copy_delay(self, envelope: Envelope, recipient: NodeId,
                    sent_round: Round) -> int:
        conditions = self.conditions
        cap = (conditions.delta if sent_round >= conditions.gst
               else conditions.effective_pre_gst_cap)
        base = conditions.draw_latency(self._rng)
        if conditions.topology is not None:
            # The per-link surcharge is a pure function of the pair (no
            # coins), so the RNG stream — and with it every drop and
            # jitter draw — is identical with and without a topology.
            base += conditions.topology.link_extra(
                envelope.sender, recipient, self.n)
        base = min(base, cap)
        extra = (self._extra_delay.get((envelope.envelope_id, recipient), 0)
                 + self._extra_delay.get((envelope.envelope_id, None), 0))
        if not extra:
            return base
        total = min(base + extra, cap)
        if total > base:
            # Count only *effective* delays: a request the Δ (or pre-GST)
            # clamp nullified never changed this copy's delivery round.
            self.stats.adversary_delayed_copies += 1
        return total

    def _schedule_copy(self, envelope: Envelope, recipient: NodeId,
                       sent_round: Round, delivery: Delivery) -> None:
        conditions = self.conditions
        stats = self.stats
        pre_gst = sent_round < conditions.gst
        if pre_gst and conditions.drop_rate \
                and self._rng.random() < conditions.drop_rate:
            stats.dropped_copies += 1
            return
        copies = 1
        if pre_gst and conditions.duplicate_rate \
                and self._rng.random() < conditions.duplicate_rate:
            copies = 2
            stats.duplicated_copies += 1
        for _ in range(copies):
            due = sent_round + self._copy_delay(envelope, recipient,
                                                sent_round)
            self._enqueue(due, _PendingCopy(
                envelope=envelope, recipient=recipient,
                sent_round=sent_round, due_round=due, delivery=delivery))

    def _enqueue(self, due_round: Round, copy: _PendingCopy) -> None:
        heappush(self._queue, (due_round, self._seq, copy.recipient, copy))
        self._seq += 1
        self.stats.events_processed += 1

    def _defer(self, copy: _PendingCopy, heal_round: Round) -> None:
        # The deferred copy carries its heal round as its timestamp and
        # re-enters the queue behind everything already due then.
        copy.due_round = heal_round
        self._enqueue(heal_round, copy)
        self.stats.deferred_copies += 1

    def _blocking_partition(self, copy: _PendingCopy,
                            round_index: Round) -> Optional[Partition]:
        for partition in self.conditions.partitions:
            if partition.active_at(round_index) and partition.separates(
                    copy.envelope.sender, copy.recipient, self.n):
                return partition
        return None

    def has_pending(self) -> bool:
        """Whether any scheduled copy is still awaiting delivery."""
        return bool(self._queue)

    def next_due_round(self) -> Optional[Round]:
        """Timestamp of the earliest queued delivery event (``None`` when
        the queue is empty) — the event engine's skip-ahead horizon."""
        return self._queue[0][0] if self._queue else None

    def advance_to(self, round_index: Round) -> List[_PendingCopy]:
        """Jump the network clock straight to ``round_index`` and execute
        that round: drain the staging window into the event queue, then
        pop every copy due now, returning the surviving ones in queue
        order (partition-blocked copies re-enter at their heal round).

        The skipped ticks are exactly the rounds the Δ-lockstep
        synchronizer would have executed as no-ops — no staged window to
        drain, no due event to pop, no coin to draw — so jumping over
        them leaves the RNG stream, the schedule, and every
        :class:`NetworkStats` field identical; they are accounted in
        ``stats.skipped_ticks`` just as the lock-step path counts its
        idle rounds.
        """
        jumped = round_index - self._delivered_round - 1
        if jumped < 0:
            raise SimulationError(
                f"network clock cannot move backwards "
                f"(at {self._delivered_round}, asked for {round_index})")
        stats = self.stats
        stats.skipped_ticks += jumped

        sent_round = max(self._delivered_round, 0)  # senders' round
        worked = bool(self._staged)

        def schedule(envelope: Envelope, recipient: NodeId,
                     delivery: Delivery) -> None:
            self._schedule_copy(envelope, recipient, sent_round, delivery)

        self._drain_staged(schedule)
        self._extra_delay = {}
        self._delivered_round = round_index

        stats.network_rounds = round_index + 1
        stats.max_in_flight = max(stats.max_in_flight, len(self._queue))

        queue = self._queue
        delivered: List[_PendingCopy] = []
        while queue and queue[0][0] <= round_index:
            copy = heappop(queue)[3]
            worked = True
            partition = self._blocking_partition(copy, round_index)
            if partition is not None:
                self._defer(copy, partition.end)
                continue
            delivered.append(copy)
            stats.delivered_copies += 1
            stats.latency_total += round_index - copy.sent_round
        if not worked:
            stats.skipped_ticks += 1
        return delivered

    def finish_clock(self, network_rounds: Round) -> None:
        """Account the idle tail between the last executed tick and the
        round limit — the lock-step loop runs its clock all the way out,
        so an event-engine execution that exhausts its round budget must
        do the same for ``network_rounds``/``skipped_ticks`` to agree."""
        tail = network_rounds - self._delivered_round - 1
        if tail > 0:
            self.stats.skipped_ticks += tail
            self.stats.network_rounds = network_rounds
            self._delivered_round = network_rounds - 1

    def deliver(self) -> Dict[NodeId, List[Delivery]]:
        """Advance one network round: schedule this round's staged
        envelopes, then deliver every copy due now.

        Determinism: envelopes are scheduled in staging (= id) order with
        recipients ascending, all coins come from one labelled RNG stream
        derived from the trial seed, and due copies are delivered in
        queue order — so identical seeds and conditions replay
        byte-identically.  This is the Δ-lockstep synchronizer's per-tick
        entry point; the event engine calls :meth:`advance_to` directly
        and skips the idle ticks this method would spend returning empty
        inboxes.
        """
        inboxes: Dict[NodeId, List[Delivery]] = {
            node: [] for node in range(self.n)}
        for copy in self.advance_to(self._delivered_round + 1):
            inboxes[copy.recipient].append(copy.delivery)
        return inboxes
