"""Idealized leader-election oracles.

The warmup protocols (Section 3.1 and Appendix C.1) assume "a random
leader election oracle that elects and announces a random leader at the
beginning of every epoch".  The subquadratic protocols *remove* this
oracle, replacing it with VRF-based self-election; these classes exist so
the warmups can be run and compared exactly as the paper describes them.

The oracle's announcement is public: the adaptive adversary learns the
leader at the start of the epoch (and may immediately corrupt it), which
is precisely the weakness the VRF construction fixes.
"""

from __future__ import annotations

import abc

from repro.rng import Seed, derive_rng
from repro.types import NodeId


class LeaderOracle(abc.ABC):
    """Announces one leader per epoch/iteration."""

    @abc.abstractmethod
    def leader(self, epoch: int) -> NodeId:
        """The (publicly known) leader of the given epoch."""


class RoundRobinLeaderOracle(LeaderOracle):
    """Leader of epoch r is node ``r mod n`` (Section 3.1's "node r")."""

    def __init__(self, n: int) -> None:
        self.n = n

    def leader(self, epoch: int) -> NodeId:
        return epoch % self.n


class RandomLeaderOracle(LeaderOracle):
    """A uniformly random leader each epoch, deterministic per seed.

    Memoized so that every node (and the adversary) sees the same
    announcement for a given epoch.
    """

    def __init__(self, n: int, seed: Seed) -> None:
        self.n = n
        self._seed = seed
        self._announced: dict[int, NodeId] = {}

    def leader(self, epoch: int) -> NodeId:
        if epoch not in self._announced:
            rng = derive_rng(self._seed, "leader-oracle", epoch)
            self._announced[epoch] = rng.randrange(self.n)
        return self._announced[epoch]
