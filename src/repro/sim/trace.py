"""Execution-trace analysis.

The network records every envelope ever staged; this module turns that
transcript into the quantities the paper's arguments are about:

- the **speaker set** — how many distinct nodes ever multicast.  Theorem 2
  implies it is sublinear for the compiled protocols, and the Theorem 4
  adversary's corruption bill is exactly this number;
- per-round and per-kind message counts (which phase of which iteration
  dominates the communication);
- per-topic committees (who won which lottery), for validating the
  Lemma 11 counting against a live execution rather than an isolated
  Monte-Carlo draw.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Sequence, Set, Tuple

from repro.sim.network import Envelope
from repro.types import NodeId, Round


@dataclass
class TraceSummary:
    """Aggregate statistics of one execution's transcript."""

    honest_speakers: Set[NodeId] = field(default_factory=set)
    corrupt_speakers: Set[NodeId] = field(default_factory=set)
    multicasts_per_round: Dict[Round, int] = field(default_factory=dict)
    messages_by_kind: Counter = field(default_factory=Counter)
    total_envelopes: int = 0

    @property
    def speaker_count(self) -> int:
        """Distinct honest multicasters — the Theorem 4 corruption bill."""
        return len(self.honest_speakers)


def _payload_kind(payload) -> str:
    kind = getattr(payload, "__class__", type(payload)).__name__
    return kind


def summarize_transcript(transcript: Sequence[Envelope]) -> TraceSummary:
    """Fold a transcript into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for envelope in transcript:
        summary.total_envelopes += 1
        if envelope.is_multicast:
            if envelope.honest_sender:
                summary.honest_speakers.add(envelope.sender)
            else:
                summary.corrupt_speakers.add(envelope.sender)
            per_round = summary.multicasts_per_round
            per_round[envelope.round_sent] = (
                per_round.get(envelope.round_sent, 0) + 1)
        summary.messages_by_kind[_payload_kind(envelope.payload)] += 1
    return summary


def committee_per_topic(transcript: Sequence[Envelope]
                        ) -> Dict[Tuple, Set[NodeId]]:
    """Who spoke for each eligibility topic, from the live transcript.

    Reads the ``auth`` attribute of protocol messages (tickets expose
    their topic); signature-authenticated messages are skipped.
    """
    committees: Dict[Tuple, Set[NodeId]] = {}
    for envelope in transcript:
        auth = getattr(envelope.payload, "auth", None)
        topic = getattr(auth, "topic", None)
        node = getattr(auth, "node_id", None)
        if topic is not None and node is not None:
            committees.setdefault(topic, set()).add(node)
    return committees


def peak_round_multicasts(summary: TraceSummary) -> int:
    """The busiest round's honest+corrupt multicast count."""
    if not summary.multicasts_per_round:
        return 0
    return max(summary.multicasts_per_round.values())
