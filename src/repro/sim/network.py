"""Synchronous message transport with per-recipient suppression.

Messages staged in round ``r`` are delivered at the beginning of round
``r + 1`` (``∆ = 1``, the model of Appendix B "Model for our lower
bound").  The network supports the one non-standard operation the paper's
strongly adaptive adversary needs: *after-the-fact removal*, i.e. erasing
a staged message for some or all recipients before it is delivered.  The
engine only exposes that operation when the adversary model permits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.types import NodeId, Round


@dataclass(frozen=True)
class Envelope:
    """One send operation: a unicast (``recipient`` set) or a multicast."""

    envelope_id: int
    sender: NodeId
    recipient: Optional[NodeId]
    payload: Any
    round_sent: Round
    honest_sender: bool

    @property
    def is_multicast(self) -> bool:
        return self.recipient is None


@dataclass(frozen=True)
class Delivery:
    """A message as seen by its recipient (channel-authenticated sender)."""

    sender: NodeId
    payload: Any


class SynchronousNetwork:
    """Stages envelopes during a round and delivers them the next round."""

    def __init__(self, n: int, retain_transcript: bool = True) -> None:
        if n < 1:
            raise SimulationError("network needs at least one node")
        self.n = n
        self._next_envelope_id = 0
        self._staged: List[Envelope] = []
        self._staged_ids: Set[int] = set()
        self._suppressed: Set[Tuple[int, NodeId]] = set()
        self._delivered_round: Round = -1
        #: Whether to keep the full transcript (the engine's
        #: ``metrics-only`` retention turns this off so long executions
        #: stop accumulating unbounded envelope lists).
        self.retain_transcript = retain_transcript
        #: Full transcript of every envelope ever staged, for analysis
        #: (empty when ``retain_transcript`` is False).
        self.transcript: List[Envelope] = []

    def stage(self, sender: NodeId, recipient: Optional[NodeId], payload: Any,
              round_sent: Round, honest_sender: bool) -> Envelope:
        """Record a send; the message leaves the sender immediately."""
        if recipient is not None and not 0 <= recipient < self.n:
            raise SimulationError(f"recipient {recipient} out of range")
        envelope = Envelope(
            envelope_id=self._next_envelope_id,
            sender=sender,
            recipient=recipient,
            payload=payload,
            round_sent=round_sent,
            honest_sender=honest_sender,
        )
        self._next_envelope_id += 1
        self._staged.append(envelope)
        self._staged_ids.add(envelope.envelope_id)
        if self.retain_transcript:
            self.transcript.append(envelope)
        return envelope

    def suppress(self, envelope: Envelope, recipient: Optional[NodeId] = None) -> None:
        """After-the-fact removal of a staged message.

        ``recipient=None`` removes every copy of the envelope; otherwise
        only the copy addressed to ``recipient`` is erased.  Only envelopes
        still in flight (staged this round, not yet delivered) can be
        suppressed — one cannot rewrite history.
        """
        if envelope.envelope_id not in self._staged_ids:
            raise SimulationError(
                "cannot suppress a message that is not in flight")
        if recipient is None:
            for node in range(self.n):
                self._suppressed.add((envelope.envelope_id, node))
        else:
            self._suppressed.add((envelope.envelope_id, recipient))

    def in_flight(self) -> List[Envelope]:
        """Envelopes staged this round (the rushing adversary's view)."""
        return list(self._staged)

    def _drain_staged(self, per_copy) -> None:
        """Expand the staging window into surviving per-recipient copies.

        Calls ``per_copy(envelope, recipient, delivery)`` for every copy
        that survives the contract — multicast fan-out to everyone but
        the sender, sender self-skip on unicasts, per-``(envelope,
        recipient)`` suppression — then resets the window.  This is the
        canonical implementation of the contract for ``deliver()``
        overrides (the conditioned network schedules each copy for a
        future round); the base :meth:`deliver` keeps its own hand-tuned
        inline expansion for the same-round hot path, so any change to
        the contract must touch both.
        """
        suppressed = self._suppressed
        for envelope in self._staged:
            delivery = Delivery(sender=envelope.sender,
                                payload=envelope.payload)
            if envelope.is_multicast:
                envelope_id = envelope.envelope_id
                for recipient in range(self.n):
                    if recipient == envelope.sender:
                        continue
                    if suppressed and (envelope_id, recipient) in suppressed:
                        continue
                    per_copy(envelope, recipient, delivery)
            else:
                recipient = envelope.recipient
                if recipient != envelope.sender and not (
                        suppressed
                        and (envelope.envelope_id, recipient) in suppressed):
                    per_copy(envelope, recipient, delivery)
        self._staged = []
        self._staged_ids = set()
        self._suppressed = set()

    def is_suppressed(self, envelope: Envelope, recipient: NodeId) -> bool:
        return (envelope.envelope_id, recipient) in self._suppressed

    def deliver(self) -> Dict[NodeId, List[Delivery]]:
        """Deliver all staged messages and start a new staging window.

        Delivery order is deterministic: envelopes are staged in id
        (= send) order and delivered in that order, so repeated runs
        replay exactly.  A multicast shares one frozen :class:`Delivery`
        across all recipients instead of materializing ``n`` copies, and
        the per-copy suppression lookup is skipped entirely when nothing
        was suppressed this round (the common case).  The inline
        expansion below is the hot-path twin of :meth:`_drain_staged`;
        keep the two in sync.
        """
        inboxes: Dict[NodeId, List[Delivery]] = {node: [] for node in range(self.n)}
        suppressed = self._suppressed
        for envelope in self._staged:
            sender = envelope.sender
            delivery = Delivery(sender=sender, payload=envelope.payload)
            if envelope.is_multicast:
                if suppressed:
                    envelope_id = envelope.envelope_id
                    for recipient in range(self.n):
                        if (recipient == sender
                                or (envelope_id, recipient) in suppressed):
                            continue
                        inboxes[recipient].append(delivery)
                else:
                    for recipient in range(self.n):
                        if recipient != sender:
                            inboxes[recipient].append(delivery)
            else:
                recipient = envelope.recipient
                if recipient != sender and not (
                        suppressed
                        and (envelope.envelope_id, recipient) in suppressed):
                    inboxes[recipient].append(delivery)
        self._staged = []
        self._staged_ids = set()
        self._suppressed = set()
        self._delivered_round += 1
        return inboxes
