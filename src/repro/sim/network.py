"""Synchronous message transport with per-recipient suppression.

Messages staged in round ``r`` are delivered at the beginning of round
``r + 1`` (``∆ = 1``, the model of Appendix B "Model for our lower
bound").  The network supports the one non-standard operation the paper's
strongly adaptive adversary needs: *after-the-fact removal*, i.e. erasing
a staged message for some or all recipients before it is delivered.  The
engine only exposes that operation when the adversary model permits it.

Batched delivery
----------------
A multicast round at size ``n`` used to cost O(n²) per-recipient list
appends inside :meth:`SynchronousNetwork.deliver` (every envelope pushed
into every inbox eagerly).  Delivery now returns a :class:`RoundInboxes`
mapping over one *shared* per-round entry list: each surviving envelope
contributes a single ``(sender, recipient, delivery, blocked)`` record,
and a node's inbox materializes lazily — as one C-speed comprehension
over the shared list — only when that node's inbox is actually read.
Inboxes that nothing reads (halted nodes, corrupt nodes whose adversary
ignores them) cost nothing.  Delivery order within an inbox is still
send order, and repeated runs still replay exactly.

The recipient-set contract (multicast fan-out to everyone but the
sender, sender self-skip on unicasts, per-``(envelope, recipient)``
suppression) lives in exactly one place, :meth:`_surviving_entries`;
both :meth:`deliver` and :meth:`_drain_staged` (the per-copy expansion
the conditioned network schedules from) consume it.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.types import NodeId, Round

#: Shared "no recipients suppressed" marker for entry records.
_NONE_BLOCKED: FrozenSet[NodeId] = frozenset()


@dataclass(frozen=True)
class Envelope:
    """One send operation: a unicast (``recipient`` set) or a multicast."""

    envelope_id: int
    sender: NodeId
    recipient: Optional[NodeId]
    payload: Any
    round_sent: Round
    honest_sender: bool

    @property
    def is_multicast(self) -> bool:
        return self.recipient is None


@dataclass(frozen=True)
class Delivery:
    """A message as seen by its recipient (channel-authenticated sender)."""

    sender: NodeId
    payload: Any


class RoundInboxes(Mapping):
    """Lazy per-node inbox views over one round's shared entry list.

    Behaves like the eager ``Dict[NodeId, List[Delivery]]`` it replaced
    (keys ``0..n-1``, each value a list in send order; ``Mapping`` supplies
    ``get``/``items``/``values``/``==``), but a node's list is built on
    first access and memoized.  Entries are
    ``(sender, recipient, delivery, blocked)`` tuples — ``recipient`` is
    ``None`` for a multicast, ``blocked`` the (usually empty, shared)
    frozenset of suppressed recipients for that envelope.
    """

    __slots__ = ("_n", "_entries", "_views")

    def __init__(self, n: int,
                 entries: List[Tuple[NodeId, Optional[NodeId],
                                     Delivery, FrozenSet[NodeId]]]) -> None:
        self._n = n
        self._entries = entries
        self._views: Dict[NodeId, List[Delivery]] = {}

    def __getitem__(self, node: NodeId) -> List[Delivery]:
        view = self._views.get(node)
        if view is None:
            if not (isinstance(node, int) and 0 <= node < self._n):
                raise KeyError(node)
            view = [
                delivery
                for sender, recipient, delivery, blocked in self._entries
                if (recipient == node or (recipient is None and sender != node))
                and node not in blocked
            ]
            self._views[node] = view
        return view

    def __iter__(self) -> Iterator[NodeId]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"RoundInboxes(n={self._n}, entries={len(self._entries)})"


class SynchronousNetwork:
    """Stages envelopes during a round and delivers them the next round."""

    def __init__(self, n: int, retain_transcript: bool = True) -> None:
        if n < 1:
            raise SimulationError("network needs at least one node")
        self.n = n
        self._next_envelope_id = 0
        self._staged: List[Envelope] = []
        self._staged_ids: Set[int] = set()
        #: envelope_id -> suppressed recipients; ``None`` means every copy
        #: of the envelope is suppressed (O(1) instead of n set entries).
        self._suppressed: Dict[int, Optional[Set[NodeId]]] = {}
        self._delivered_round: Round = -1
        #: Whether to keep the full transcript (the engine's
        #: ``metrics-only`` retention turns this off so long executions
        #: stop accumulating unbounded envelope lists).
        self.retain_transcript = retain_transcript
        #: Full transcript of every envelope ever staged, for analysis
        #: (empty when ``retain_transcript`` is False).
        self.transcript: List[Envelope] = []

    def stage(self, sender: NodeId, recipient: Optional[NodeId], payload: Any,
              round_sent: Round, honest_sender: bool) -> Envelope:
        """Record a send; the message leaves the sender immediately."""
        if recipient is not None and not 0 <= recipient < self.n:
            raise SimulationError(f"recipient {recipient} out of range")
        envelope = Envelope(
            envelope_id=self._next_envelope_id,
            sender=sender,
            recipient=recipient,
            payload=payload,
            round_sent=round_sent,
            honest_sender=honest_sender,
        )
        self._next_envelope_id += 1
        self._staged.append(envelope)
        self._staged_ids.add(envelope.envelope_id)
        if self.retain_transcript:
            self.transcript.append(envelope)
        return envelope

    def suppress(self, envelope: Envelope, recipient: Optional[NodeId] = None) -> None:
        """After-the-fact removal of a staged message.

        ``recipient=None`` removes every copy of the envelope; otherwise
        only the copy addressed to ``recipient`` is erased.  Only envelopes
        still in flight (staged this round, not yet delivered) can be
        suppressed — one cannot rewrite history.

        Full suppression stores one ``None`` marker rather than a set
        entry per node; in particular it no longer records a
        ``(envelope_id, sender)`` entry for the sender's own copy, which
        does not exist (a sender never receives its own message).
        """
        if envelope.envelope_id not in self._staged_ids:
            raise SimulationError(
                "cannot suppress a message that is not in flight")
        if recipient is None:
            self._suppressed[envelope.envelope_id] = None
        else:
            blocked = self._suppressed.get(envelope.envelope_id, _NONE_BLOCKED)
            if blocked is None:
                return  # already fully suppressed
            if blocked is _NONE_BLOCKED:
                self._suppressed[envelope.envelope_id] = {recipient}
            else:
                blocked.add(recipient)

    def in_flight(self) -> List[Envelope]:
        """Envelopes staged this round (the rushing adversary's view)."""
        return list(self._staged)

    def has_staged(self) -> bool:
        """Whether the current staging window holds any envelope (the
        event engine must execute the very next tick when it does)."""
        return bool(self._staged)

    def is_suppressed(self, envelope: Envelope, recipient: NodeId) -> bool:
        blocked = self._suppressed.get(envelope.envelope_id, _NONE_BLOCKED)
        return True if blocked is None else recipient in blocked

    def _surviving_entries(self):
        """Yield one ``(envelope, delivery, blocked)`` record per envelope
        that still has at least one deliverable copy.

        This is the single canonical statement of the delivery contract:
        fully-suppressed envelopes are dropped, a unicast to self or to a
        suppressed recipient is dropped, and ``blocked`` carries the
        per-envelope suppressed-recipient set (empty frozenset when
        nothing was suppressed) for the multicast fan-out to honor.
        """
        suppressed = self._suppressed
        for envelope in self._staged:
            if suppressed:
                blocked = suppressed.get(envelope.envelope_id, _NONE_BLOCKED)
                if blocked is None:
                    continue  # every copy suppressed
            else:
                blocked = _NONE_BLOCKED
            recipient = envelope.recipient
            if recipient is not None and (
                    recipient == envelope.sender or recipient in blocked):
                continue
            yield (envelope,
                   Delivery(sender=envelope.sender, payload=envelope.payload),
                   blocked)

    def _reset_window(self) -> None:
        self._staged = []
        self._staged_ids = set()
        self._suppressed = {}

    def _drain_staged(self, per_copy) -> None:
        """Expand the staging window into surviving per-recipient copies.

        Calls ``per_copy(envelope, recipient, delivery)`` for every copy
        that survives the contract (multicast recipients in ascending
        order — the conditioned network's RNG draws depend on that), then
        resets the window.  Used by ``deliver()`` overrides that schedule
        each copy individually; the base :meth:`deliver` consumes the
        same :meth:`_surviving_entries` records without per-copy fan-out.
        """
        n = self.n
        for envelope, delivery, blocked in self._surviving_entries():
            if envelope.recipient is not None:
                per_copy(envelope, envelope.recipient, delivery)
            elif blocked:
                sender = envelope.sender
                for recipient in range(n):
                    if recipient != sender and recipient not in blocked:
                        per_copy(envelope, recipient, delivery)
            else:
                sender = envelope.sender
                for recipient in range(n):
                    if recipient != sender:
                        per_copy(envelope, recipient, delivery)
        self._reset_window()

    def deliver(self) -> RoundInboxes:
        """Deliver all staged messages and start a new staging window.

        Delivery order is deterministic: envelopes are staged in id
        (= send) order and delivered in that order, so repeated runs
        replay exactly.  A multicast contributes one shared entry (and
        one frozen :class:`Delivery`) to the returned
        :class:`RoundInboxes` instead of ``n`` eager appends; recipients
        see it when their lazy inbox view materializes.
        """
        entries = [
            (envelope.sender, envelope.recipient, delivery, blocked)
            for envelope, delivery, blocked in self._surviving_entries()
        ]
        self._reset_window()
        self._delivered_round += 1
        return RoundInboxes(self.n, entries)


def legacy_deliver(network: SynchronousNetwork) -> Dict[NodeId, List[Delivery]]:
    """Reference implementation of delivery: eager per-recipient expansion.

    Kept (as a test helper, not production code) so differential tests
    can assert the batched :meth:`SynchronousNetwork.deliver` produces
    exactly what the historical O(n²) eager path produced.  Consumes the
    staging window through the same :meth:`~SynchronousNetwork._drain_staged`
    per-copy contract the conditioned network uses.
    """
    inboxes: Dict[NodeId, List[Delivery]] = {
        node: [] for node in range(network.n)}
    network._drain_staged(
        lambda envelope, recipient, delivery: inboxes[recipient].append(delivery))
    network._delivered_round += 1
    return inboxes
