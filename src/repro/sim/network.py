"""Synchronous message transport with per-recipient suppression.

Messages staged in round ``r`` are delivered at the beginning of round
``r + 1`` (``∆ = 1``, the model of Appendix B "Model for our lower
bound").  The network supports the one non-standard operation the paper's
strongly adaptive adversary needs: *after-the-fact removal*, i.e. erasing
a staged message for some or all recipients before it is delivered.  The
engine only exposes that operation when the adversary model permits it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.types import NodeId, Round


@dataclass(frozen=True)
class Envelope:
    """One send operation: a unicast (``recipient`` set) or a multicast."""

    envelope_id: int
    sender: NodeId
    recipient: Optional[NodeId]
    payload: Any
    round_sent: Round
    honest_sender: bool

    @property
    def is_multicast(self) -> bool:
        return self.recipient is None


@dataclass(frozen=True)
class Delivery:
    """A message as seen by its recipient (channel-authenticated sender)."""

    sender: NodeId
    payload: Any


class SynchronousNetwork:
    """Stages envelopes during a round and delivers them the next round."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise SimulationError("network needs at least one node")
        self.n = n
        self._next_envelope_id = 0
        self._staged: List[Envelope] = []
        self._suppressed: Set[Tuple[int, NodeId]] = set()
        self._delivered_round: Round = -1
        #: Full transcript of every envelope ever staged, for analysis.
        self.transcript: List[Envelope] = []

    def stage(self, sender: NodeId, recipient: Optional[NodeId], payload: Any,
              round_sent: Round, honest_sender: bool) -> Envelope:
        """Record a send; the message leaves the sender immediately."""
        if recipient is not None and not 0 <= recipient < self.n:
            raise SimulationError(f"recipient {recipient} out of range")
        envelope = Envelope(
            envelope_id=self._next_envelope_id,
            sender=sender,
            recipient=recipient,
            payload=payload,
            round_sent=round_sent,
            honest_sender=honest_sender,
        )
        self._next_envelope_id += 1
        self._staged.append(envelope)
        self.transcript.append(envelope)
        return envelope

    def suppress(self, envelope: Envelope, recipient: Optional[NodeId] = None) -> None:
        """After-the-fact removal of a staged message.

        ``recipient=None`` removes every copy of the envelope; otherwise
        only the copy addressed to ``recipient`` is erased.  Only envelopes
        still in flight (staged this round, not yet delivered) can be
        suppressed — one cannot rewrite history.
        """
        if envelope not in self._staged:
            raise SimulationError(
                "cannot suppress a message that is not in flight")
        if recipient is None:
            for node in range(self.n):
                self._suppressed.add((envelope.envelope_id, node))
        else:
            self._suppressed.add((envelope.envelope_id, recipient))

    def in_flight(self) -> List[Envelope]:
        """Envelopes staged this round (the rushing adversary's view)."""
        return list(self._staged)

    def is_suppressed(self, envelope: Envelope, recipient: NodeId) -> bool:
        return (envelope.envelope_id, recipient) in self._suppressed

    def deliver(self) -> Dict[NodeId, List[Delivery]]:
        """Deliver all staged messages and start a new staging window.

        Delivery order is deterministic: envelopes sorted by id (send
        order), so repeated runs replay exactly.
        """
        inboxes: Dict[NodeId, List[Delivery]] = {node: [] for node in range(self.n)}
        for envelope in sorted(self._staged, key=lambda e: e.envelope_id):
            recipients = (range(self.n) if envelope.is_multicast
                          else [envelope.recipient])
            for recipient in recipients:
                if recipient == envelope.sender:
                    continue
                if self.is_suppressed(envelope, recipient):
                    continue
                inboxes[recipient].append(
                    Delivery(sender=envelope.sender, payload=envelope.payload))
        self._staged = []
        self._suppressed = set()
        self._delivered_round += 1
        return inboxes
