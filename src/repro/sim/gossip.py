"""Push-gossip diffusion: the substrate beneath the multicast model.

Section 1 motivates the multicast model by large-scale peer-to-peer
networks (Bitcoin, Ethereum) where "multicast" is really epidemic gossip:
a node hands the message to a few random peers per hop, and it reaches
everyone in O(log n) hops with overwhelming probability.  The paper then
*abstracts* gossip as one synchronous multicast round.

This module makes the abstraction checkable:

- :func:`simulate_push_gossip` runs the epidemic process (fanout-``k``
  push over uniformly random peers, optional crashed nodes) and reports
  hops-to-full-coverage;
- :func:`gossip_cost_of_execution` translates a protocol execution's
  multicast complexity into the underlying gossip message count
  (#multicasts × expected relays), the quantity a deployment would pay.

Together they justify Definition 7: charging a protocol per *multicast*
matches the real per-message network cost up to the (protocol-independent)
O(n) relay factor, while pairwise unicasts would be charged n times more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Set

from repro.rng import Seed, derive_rng
from repro.sim.result import ExecutionResult
from repro.types import NodeId


@dataclass(frozen=True)
class GossipOutcome:
    """Result of one epidemic diffusion."""

    n: int
    fanout: int
    hops: int
    reached: int
    relays: int  # total point-to-point transmissions

    @property
    def full_coverage(self) -> bool:
        return self.reached == self.n


def simulate_push_gossip(
    n: int,
    fanout: int = 4,
    origin: NodeId = 0,
    seed: Seed = 0,
    crashed: Optional[Sequence[NodeId]] = None,
    max_hops: Optional[int] = None,
    loss_rate: float = 0.0,
) -> GossipOutcome:
    """Run fanout-``k`` push gossip from ``origin`` until no new node is
    infected (or ``max_hops``).  Crashed nodes receive but never relay.

    ``loss_rate`` drops each push independently (the lossy-link regime of
    the pre-GST network conditions model, ``docs/NETWORK.md``): a lost
    push still counts as a relay — the sender paid for it — but infects
    nobody.  ``loss_rate=0`` draws no loss coins, so existing seeds
    replay byte-identically.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if fanout < 1:
        raise ValueError("fanout must be positive")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
    rng = derive_rng(seed, "gossip", n, fanout, origin)
    crashed_set: Set[NodeId] = set(crashed or ())
    infected: Set[NodeId] = {origin}
    hops = 0
    relays = 0
    limit = max_hops if max_hops is not None else 4 * max(
        1, math.ceil(math.log2(max(n, 2)))) + 16
    while len(infected) < n and hops < limit:
        # Classic push: EVERY informed, non-crashed node pushes each hop.
        active = [node for node in infected if node not in crashed_set]
        if not active:
            break
        for _node in active:
            for _ in range(fanout):
                peer = rng.randrange(n)
                relays += 1
                if loss_rate and rng.random() < loss_rate:
                    continue
                infected.add(peer)
        hops += 1
    return GossipOutcome(n=n, fanout=fanout, hops=hops,
                         reached=len(infected), relays=relays)


def expected_hops(n: int) -> float:
    """The classical epidemic bound: coverage in ~log2(n) + ln(n) hops."""
    if n < 2:
        return 0.0
    return math.log2(n) + math.log(n)


def gossip_cost_of_execution(result: ExecutionResult,
                             relays_per_multicast: Optional[float] = None
                             ) -> float:
    """Total point-to-point transmissions a gossip deployment would pay.

    Every honest multicast costs ~``c·n`` relays (each node forwards a
    new message ``fanout`` times; with the default we charge ``1.5 n``,
    the asymptotic cost of fanout-needed-for-coverage gossip).  This is
    protocol-independent, so rankings under Definition 7 are preserved.
    """
    if relays_per_multicast is None:
        relays_per_multicast = 1.5 * result.n
    return result.metrics.multicast_complexity_messages * relays_per_multicast
