"""Adversary interface: the attacker's view and levers.

The engine drives the adversary at two points each round:

1. :meth:`Adversary.observe_deliveries` — right after delivery, with every
   node's inbox (the adversary sees all traffic; corrupt nodes' inboxes
   are literally its own).
2. :meth:`Adversary.react` — after honest nodes have staged their round-r
   messages.  This is the *rushing* step of Appendix A.1: the adversary
   observes what honest nodes are about to send, may corrupt them
   mid-round, may inject messages from corrupt nodes for the same round —
   and, in the strongly adaptive model only, may perform after-the-fact
   removal of messages just sent by newly corrupted nodes (Section 2).

All of the adversary's powers flow through :class:`AdversaryApi`, which
enforces budgets and capability rules so that no attack implementation can
accidentally exceed the model it claims to work in.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import CapabilityError
from repro.sim.corruption import CorruptionGrant
from repro.sim.network import Delivery, Envelope
from repro.sim.node import RoundContext
from repro.types import AdversaryModel, NodeId, Round

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


class AdversaryApi:
    """Budget- and capability-checked access to the execution."""

    def __init__(self, simulation: "Simulation") -> None:
        self._sim = simulation

    # -- read-only view ---------------------------------------------------
    @property
    def n(self) -> int:
        return self._sim.n

    @property
    def model(self) -> AdversaryModel:
        return self._sim.controller.model

    @property
    def round(self) -> Round:
        return self._sim.current_round

    @property
    def corruption_budget(self) -> int:
        return self._sim.controller.budget

    @property
    def corruptions_remaining(self) -> int:
        return self._sim.controller.corruptions_remaining

    @property
    def corrupt_nodes(self) -> frozenset:
        return frozenset(self._sim.controller.corrupt_set)

    def is_corrupt(self, node_id: NodeId) -> bool:
        return self._sim.controller.is_corrupt(node_id)

    def in_flight(self) -> List[Envelope]:
        """Messages staged this round (the rushing adversary's view)."""
        return self._sim.network.in_flight()

    @property
    def delta(self) -> int:
        """The network's bounded-delay parameter Δ (1 under lock-step)."""
        conditions = self._sim.conditions
        return conditions.delta if conditions is not None else 1

    @property
    def can_delay(self) -> bool:
        """Whether the execution runs under nontrivial network conditions
        (message delaying only exists in the partial-synchrony model)."""
        return self._sim.conditions is not None

    # -- powers ------------------------------------------------------------
    def corrupt(self, node_id: NodeId) -> CorruptionGrant:
        """Adaptively corrupt a node; returns its secrets and capabilities."""
        return self._sim.perform_corruption(node_id)

    def remove(self, envelope: Envelope, recipient: Optional[NodeId] = None) -> None:
        """After-the-fact removal (strongly adaptive adversaries only).

        Per Section 2, removal applies to messages sent this round by a
        node the adversary has (now) corrupted; honest nodes' messages
        cannot be touched without corrupting the sender first.
        """
        if not self.model.can_remove_after_the_fact:
            raise CapabilityError(
                f"after-the-fact removal requires the strongly adaptive "
                f"model, not {self.model.value}")
        if not self.is_corrupt(envelope.sender):
            raise CapabilityError(
                "must corrupt the sender before removing its message")
        self._sim.network.suppress(envelope, recipient)

    def delay(self, envelope: Envelope, recipient: Optional[NodeId] = None,
              rounds: int = 1) -> None:
        """Delay an in-flight copy by extra network rounds (Δ-capped).

        The partial-synchrony adversary controls message *timing* without
        spending corruptions: any staged copy — honest senders included —
        can be held back, but post-GST the network still delivers within
        Δ rounds of sending, so the total delay is clamped there.  Only
        available when the execution runs under nontrivial
        :class:`~repro.sim.conditions.NetworkConditions`.
        """
        if not self.can_delay:
            raise CapabilityError(
                "message delaying requires nontrivial network conditions; "
                "the lock-step model delivers every message next round")
        self._sim.network.delay(envelope, recipient, rounds)

    def inject(self, sender: NodeId, recipient: Optional[NodeId],
               payload: Any) -> Envelope:
        """Send a message from a corrupt node (``recipient=None`` = multicast)."""
        if not self.is_corrupt(sender):
            raise CapabilityError(
                f"cannot send from node {sender}: it is not corrupt")
        return self._sim.stage_adversarial(sender, recipient, payload)

    def make_context(self, node_id: NodeId, inbox: List[Delivery]) -> RoundContext:
        """A sandbox context for running a corrupt node's own logic.

        Lets attacks execute "honest behaviour with deviations" (e.g. the
        Dolev–Reischuk corrupt set behaves honestly but ignores messages):
        run ``grant.node.on_round(sandbox)`` and selectively
        :meth:`inject` the messages it staged.
        """
        return RoundContext(node_id, self.round, inbox,
                            self._sim.rng_for_node(node_id))


class Adversary(abc.ABC):
    """Base class for attack strategies."""

    name = "adversary"

    def __init__(self) -> None:
        self.api: Optional[AdversaryApi] = None

    def bind(self, api: AdversaryApi) -> None:
        self.api = api
        self.on_setup()

    def on_setup(self) -> None:
        """Called before round 0; static adversaries corrupt here."""

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        """Called after delivery, before honest nodes act."""

    @abc.abstractmethod
    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        """The rushing step: observe staged honest messages and act."""


class PassiveAdversary(Adversary):
    """Corrupts nobody and does nothing (honest executions)."""

    name = "passive"

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None
