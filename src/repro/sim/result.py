"""Execution results and the security predicates checked on them.

The paper's security definitions (Appendix A.2) are predicates over a
*view* of the execution; :class:`ExecutionResult` is our view object, and
its methods implement consistency and validity for both problem variants:

- **Consistency** — all forever-honest nodes output the same bit.
- **Agreement validity** — if all forever-honest nodes received the same
  input bit ``b``, they all output ``b``.
- **Broadcast validity** — if the designated sender is forever-honest with
  input ``b``, every forever-honest node outputs ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.conditions import NetworkStats
from repro.sim.metrics import CommunicationMetrics
from repro.sim.network import Envelope
from repro.types import Bit, NodeId, Round


@dataclass
class ExecutionResult:
    n: int
    corruption_budget: int
    corrupt_set: Set[NodeId]
    rounds_executed: int
    outputs: Dict[NodeId, Bit]
    decided_rounds: Dict[NodeId, Optional[Round]]
    metrics: CommunicationMetrics
    inputs: Dict[NodeId, Bit] = field(default_factory=dict)
    #: Every envelope ever staged, for trace analysis (repro.sim.trace).
    transcript: List[Envelope] = field(default_factory=list)
    #: False when the execution ran under ``metrics-only`` retention:
    #: ``transcript`` is then empty because it was *discarded*, not
    #: because nothing was sent — transcript-based analyses must refuse
    #: rather than vacuously pass.
    transcript_retained: bool = True
    #: Delivery-latency / drop / in-flight accounting when the execution
    #: ran under nontrivial :class:`~repro.sim.conditions.NetworkConditions`
    #: (None under perfect synchrony — the fast path records nothing).
    network_stats: Optional[NetworkStats] = None
    #: The engine's round budget (``max_rounds``, in protocol rounds).
    #: ``rounds_saved`` compares ``rounds_executed`` against it — the
    #: measurable payoff of early-stopping protocol variants.
    rounds_budget: Optional[Round] = None

    @property
    def rounds_saved(self) -> int:
        """Protocol rounds the execution finished under its budget.

        Zero for executions that ran the full budget (fixed-budget
        protocols such as phase-king always do, unless an early-stopping
        variant detects a certified round first) and for results recorded
        before the budget was tracked."""
        if self.rounds_budget is None:
            return 0
        return max(0, self.rounds_budget - self.rounds_executed)

    def require_transcript(self) -> List[Envelope]:
        """The transcript, refusing to hand back a discarded one.

        Transcript-based analyses (invariants, replay, trace summaries)
        must call this rather than read ``transcript`` directly: an
        execution run under ``metrics-only`` retention has an *empty*
        transcript that would make every scan vacuously report "nothing
        was sent"."""
        if not self.transcript_retained:
            raise ValueError(
                "execution ran with metrics-only transcript retention; "
                "transcript analyses need transcript_retention='full'")
        return self.transcript

    @property
    def forever_honest(self) -> List[NodeId]:
        return [node for node in range(self.n) if node not in self.corrupt_set]

    @property
    def honest_outputs(self) -> List[Bit]:
        return [self.outputs[node] for node in self.forever_honest]

    @property
    def corruptions_used(self) -> int:
        return len(self.corrupt_set)

    # -- security predicates -----------------------------------------------
    def consistent(self) -> bool:
        """All forever-honest nodes output the same bit."""
        outputs = self.honest_outputs
        return len(set(outputs)) <= 1

    def agreement_valid(self) -> bool:
        """Agreement validity w.r.t. the recorded inputs."""
        honest_inputs = {self.inputs[node] for node in self.forever_honest
                         if node in self.inputs}
        if len(honest_inputs) != 1:
            return True  # vacuously valid: inputs disagreed
        (expected,) = honest_inputs
        return all(output == expected for output in self.honest_outputs)

    def broadcast_valid(self, sender: NodeId, sender_input: Bit) -> bool:
        """Broadcast validity: only binding if the sender stayed honest."""
        if sender in self.corrupt_set:
            return True  # vacuously valid: sender was corrupted
        return all(output == sender_input for output in self.honest_outputs)

    def all_decided(self) -> bool:
        """Every forever-honest node decided before the round limit."""
        return all(self.decided_rounds.get(node) is not None
                   for node in self.forever_honest)

    def decision_rounds(self) -> List[Round]:
        return [self.decided_rounds[node] for node in self.forever_honest
                if self.decided_rounds.get(node) is not None]

    def summary(self) -> str:
        return (
            f"n={self.n} corrupt={self.corruptions_used}/{self.corruption_budget} "
            f"rounds={self.rounds_executed} "
            f"consistent={self.consistent()} "
            f"multicasts={self.metrics.multicast_complexity_messages} "
            f"({self.metrics.multicast_complexity_bits} bits)"
        )
