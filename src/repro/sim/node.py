"""Protocol node base class and the per-round execution context.

A node's entire interaction with the world happens through its
:class:`RoundContext`: it reads the messages delivered at the beginning of
the round and stages multicasts/unicasts that will be delivered next
round.  Nodes never touch the network or other nodes directly, which is
what lets the corruption controller hand a *corrupted node's own logic* to
the adversary (e.g. the Dolev–Reischuk adversary runs corrupt nodes
honestly but filters their inboxes).
"""

from __future__ import annotations

import abc
import random
from typing import Any, List, Optional

from repro.sim.network import Delivery
from repro.types import Bit, NodeId, Round


class RoundContext:
    """What a node sees and can do during one round."""

    def __init__(self, node_id: NodeId, round_index: Round,
                 inbox: List[Delivery], rng: random.Random) -> None:
        self.node_id = node_id
        self.round = round_index
        self.inbox = inbox
        self.rng = rng
        #: Messages staged this round: (recipient | None, payload).
        self.staged: List[tuple[Optional[NodeId], Any]] = []

    def multicast(self, payload: Any) -> None:
        """Stage a multicast to all other nodes (the paper's only
        communication primitive for its own protocols)."""
        self.staged.append((None, payload))

    def send(self, recipient: NodeId, payload: Any) -> None:
        """Stage a point-to-point message (used by baselines and attacks)."""
        self.staged.append((recipient, payload))


class Node(abc.ABC):
    """Base class for all protocol nodes.

    Subclasses implement :meth:`on_round`; the engine calls it exactly once
    per round while the node is honest and not halted.  ``halted`` nodes
    stop participating (used by protocols with early termination).
    """

    def __init__(self, node_id: NodeId, n: int) -> None:
        self.node_id = node_id
        self.n = n
        self.halted = False
        self.decided_round: Optional[Round] = None

    @abc.abstractmethod
    def on_round(self, ctx: RoundContext) -> None:
        """Process this round's inbox and stage outgoing messages."""

    @abc.abstractmethod
    def output(self) -> Optional[Bit]:
        """The node's current output to the environment, if decided."""

    def finalize(self) -> Bit:
        """Output forced at the end of the execution.

        The paper's Theorem 4 proof WLOG converts non-termination into
        outputting a default; protocols override this with their natural
        fallback (e.g. the currently preferred bit).
        """
        decided = self.output()
        return decided if decided is not None else 0

    def decide(self, value: Bit, round_index: Round) -> None:
        """Record a decision (subclasses call this exactly once)."""
        if self.decided_round is None:
            self.decided_round = round_index
        self._decision = value

    def reveal_state(self) -> dict:
        """What the adversary learns upon corrupting this node.

        Default: the full instance dictionary (all secrets).  Protocols in
        the memory-erasure model override this to exclude erased keys.
        """
        return dict(vars(self))
