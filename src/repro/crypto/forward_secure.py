"""Forward-secure signatures (the "ephemeral keys" of Chen–Micali).

Footnote 5 of the paper: *"in a forward secure signing scheme, in the
beginning the node has a key that can sign any slot numbered 0 or higher;
after signing a message for slot t, the node can update its key to one that
can henceforth sign only slots t + 1 or higher, and the old key is
erased."*  The round-specific-eligibility baseline
(:mod:`repro.protocols.round_eligibility`) uses this scheme to model the
**memory-erasure** defence: an adversary corrupting a node immediately
after it votes learns only the *evolved* key and cannot cast a second vote
for the same round.

Construction: one Schnorr keypair per epoch, authenticated by a Merkle tree
whose root is the long-term public key.  ``evolve(t)`` deletes every secret
key for epochs ``< t``; deletion is what makes the scheme forward secure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import hash_bytes, hash_objects
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, sign as schnorr_sign
from repro.crypto.schnorr import verify as schnorr_verify
from repro.errors import SignatureError


def _merkle_parent(left: bytes, right: bytes) -> bytes:
    return hash_bytes("fs-merkle", left, right)


def _build_merkle_layers(leaves: list[bytes]) -> list[list[bytes]]:
    """All layers bottom-up; the final layer is the single root."""
    layers = [list(leaves)]
    while len(layers[-1]) > 1:
        level = layers[-1]
        if len(level) % 2 == 1:
            level = level + [level[-1]]
        layers.append([
            _merkle_parent(level[i], level[i + 1])
            for i in range(0, len(level), 2)
        ])
    return layers


@dataclass(frozen=True)
class ForwardSecureSignature:
    """A per-epoch signature plus the Merkle authentication of its key."""

    epoch: int
    epoch_public: int
    merkle_path: tuple[bytes, ...]
    signature: SchnorrSignature


class ForwardSecureKeyPair:
    """Holder of the evolving secret state; ``public_root`` is the PK."""

    def __init__(self, group: SchnorrGroup, max_epochs: int,
                 rng: random.Random) -> None:
        if max_epochs < 1:
            raise ValueError("max_epochs must be positive")
        self.group = group
        self.max_epochs = max_epochs
        self._epoch_keys: dict[int, SchnorrKeyPair] = {
            epoch: SchnorrKeyPair.generate(group, rng)
            for epoch in range(max_epochs)
        }
        leaves = [
            hash_objects("fs-leaf", epoch, self._epoch_keys[epoch].public)
            for epoch in range(max_epochs)
        ]
        self._layers = _build_merkle_layers(leaves)
        self.public_root: bytes = self._layers[-1][0]
        self.current_epoch = 0

    def _merkle_path(self, index: int) -> tuple[bytes, ...]:
        path = []
        for layer in self._layers[:-1]:
            padded = layer if len(layer) % 2 == 0 else layer + [layer[-1]]
            sibling = index ^ 1
            path.append(padded[sibling])
            index //= 2
        return tuple(path)

    def sign(self, epoch: int, message: Any,
             rng: random.Random) -> ForwardSecureSignature:
        """Sign for ``epoch``; fails if that epoch's key was erased."""
        if not 0 <= epoch < self.max_epochs:
            raise SignatureError(f"epoch {epoch} out of range")
        if epoch < self.current_epoch:
            raise SignatureError(
                f"key for epoch {epoch} was erased (current epoch "
                f"{self.current_epoch})")
        keypair = self._epoch_keys[epoch]
        signature = schnorr_sign(keypair, ("fs", epoch, message), rng)
        return ForwardSecureSignature(
            epoch=epoch,
            epoch_public=keypair.public,
            merkle_path=self._merkle_path(epoch),
            signature=signature,
        )

    def evolve(self, to_epoch: int) -> None:
        """Erase every secret key for epochs below ``to_epoch``.

        This is the *memory erasure* step: after evolving past epoch t, not
        even the key holder (nor an adversary corrupting it) can sign for
        epoch t again.
        """
        if to_epoch < self.current_epoch:
            raise ValueError("cannot evolve backwards")
        for epoch in range(self.current_epoch, min(to_epoch, self.max_epochs)):
            self._epoch_keys.pop(epoch, None)
        self.current_epoch = to_epoch

    def reveal_state(self) -> dict[int, SchnorrKeyPair]:
        """What an adversary learns upon corruption: the surviving keys."""
        return dict(self._epoch_keys)

    def can_sign(self, epoch: int) -> bool:
        return epoch in self._epoch_keys


def verify_forward_secure(group: SchnorrGroup, public_root: bytes,
                          max_epochs: int, message: Any,
                          signature: ForwardSecureSignature) -> bool:
    """Verify a forward-secure signature; never raises."""
    if not 0 <= signature.epoch < max_epochs:
        return False
    node = hash_objects("fs-leaf", signature.epoch, signature.epoch_public)
    index = signature.epoch
    for sibling in signature.merkle_path:
        if index % 2 == 0:
            node = _merkle_parent(node, sibling)
        else:
            node = _merkle_parent(sibling, node)
        index //= 2
    if node != public_root:
        return False
    return schnorr_verify(group, signature.epoch_public,
                          ("fs", signature.epoch, message),
                          signature.signature)
