"""Non-interactive zero-knowledge proofs (sigma protocols, Fiat–Shamir).

Appendix D compiles the ``Fmine``-hybrid protocols into the real world with
a NIZK for the language L (Appendix D.3):

    (stmt, w) ∈ L  iff  stmt = (ρ, c, crs, m), w = (sk, s),
                        c = com(crs, sk, s)  and  PRF_sk(m) = ρ.

With PRF := the DDH PRF and com := the ElGamal commitment, this language
becomes a conjunction of three discrete-log relations, provable with a
standard two-witness sigma protocol (:func:`prove_committed_key`,
:func:`verify_committed_key`).  The classic single-witness Chaum–Pedersen
DLEQ proof is also provided.

Both proofs are Fiat–Shamir compiled (random-oracle model); DESIGN.md §2
documents this substitution for the paper's bilinear-group NIZK.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.commitment import ElGamalCommitment
from repro.crypto.groups import SchnorrGroup


@dataclass(frozen=True)
class DleqProof:
    """Chaum–Pedersen proof that ``log_g(X) = log_base(Y)``."""

    challenge: int
    response: int


def prove_dleq(group: SchnorrGroup, secret: int, base: int,
               rng: random.Random, context: Any = None) -> DleqProof:
    """Prove knowledge of ``x`` with ``X = g^x`` and ``Y = base^x``."""
    x_public = group.exp(group.g, secret)
    y_public = group.exp(base, secret)
    nonce = group.random_scalar(rng)
    t1 = group.exp(group.g, nonce)
    t2 = group.exp(base, nonce)
    challenge = group.challenge_scalar(
        "dleq", x_public, y_public, base, t1, t2, context)
    response = (nonce + challenge * secret) % group.q
    return DleqProof(challenge=challenge, response=response)


def verify_dleq(group: SchnorrGroup, x_public: int, y_public: int, base: int,
                proof: DleqProof, context: Any = None) -> bool:
    """Verify a Chaum–Pedersen DLEQ proof; never raises."""
    for element in (x_public, y_public, base):
        if not group.is_element(element):
            return False
    if not (0 <= proof.challenge < group.q and 0 <= proof.response < group.q):
        return False
    t1 = group.mul(group.exp(group.g, proof.response),
                   group.inv(group.exp(x_public, proof.challenge)))
    t2 = group.mul(group.exp(base, proof.response),
                   group.inv(group.exp(y_public, proof.challenge)))
    expected = group.challenge_scalar(
        "dleq", x_public, y_public, base, t1, t2, context)
    return expected == proof.challenge


@dataclass(frozen=True)
class CommittedKeyProof:
    """Proof for the VRF language: the evaluation matches the committed key.

    Statement: public key ``(U, V) = (g^s, h^s · g^k)`` (perfectly binding
    ElGamal commitment to the PRF key ``k``) and evaluation ``rho = base^k``.
    Witness: ``(k, s)``.
    """

    challenge: int
    response_key: int
    response_rand: int


def prove_committed_key(group: SchnorrGroup, key: int, randomness: int,
                        base: int, rng: random.Random,
                        context: Any = None) -> CommittedKeyProof:
    """Prove that ``rho = base^key`` for the key inside the commitment."""
    commitment = ElGamalCommitment(
        u=group.exp(group.g, randomness),
        v=group.mul(group.exp(group.h, randomness), group.exp(group.g, key)),
    )
    rho = group.exp(base, key)
    mask_key = group.random_scalar(rng)
    mask_rand = group.random_scalar(rng)
    t_u = group.exp(group.g, mask_rand)
    t_v = group.mul(group.exp(group.h, mask_rand), group.exp(group.g, mask_key))
    t_rho = group.exp(base, mask_key)
    challenge = group.challenge_scalar(
        "committed-key-vrf", commitment.u, commitment.v, base, rho,
        t_u, t_v, t_rho, context)
    return CommittedKeyProof(
        challenge=challenge,
        response_key=(mask_key + challenge * key) % group.q,
        response_rand=(mask_rand + challenge * randomness) % group.q,
    )


def verify_committed_key(group: SchnorrGroup, commitment: ElGamalCommitment,
                         base: int, rho: int, proof: CommittedKeyProof,
                         context: Any = None) -> bool:
    """Verify a committed-key VRF proof; never raises."""
    for element in (commitment.u, commitment.v, base, rho):
        if not group.is_element(element):
            return False
    scalars = (proof.challenge, proof.response_key, proof.response_rand)
    if not all(0 <= value < group.q for value in scalars):
        return False
    c = proof.challenge
    t_u = group.mul(group.exp(group.g, proof.response_rand),
                    group.inv(group.exp(commitment.u, c)))
    t_v = group.mul(
        group.mul(group.exp(group.h, proof.response_rand),
                  group.exp(group.g, proof.response_key)),
        group.inv(group.exp(commitment.v, c)),
    )
    t_rho = group.mul(group.exp(base, proof.response_key),
                      group.inv(group.exp(rho, c)))
    expected = group.challenge_scalar(
        "committed-key-vrf", commitment.u, commitment.v, base, rho,
        t_u, t_v, t_rho, context)
    return expected == c
