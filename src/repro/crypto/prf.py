"""Pseudorandom functions.

Two PRFs are provided:

- :class:`HmacPrf` — HMAC-SHA256.  Used wherever the library needs generic
  keyed pseudorandomness (e.g. deriving per-node seeds).
- :class:`DdhPrf` — the "exponentiation" PRF ``PRF_k(m) = H1(m)^k`` over a
  DDH-hard group (Naor–Pinkas–Reingold style).  This is the PRF the
  Appendix D compiler commits to and proves statements about: the VRF of
  :mod:`repro.crypto.vrf` publishes a perfectly-binding commitment to ``k``
  and proves, per message, that the evaluation is consistent with the
  committed key — exactly the paper's NP language L (Appendix D.3) with
  PRF := DdhPrf.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any

from repro.crypto.groups import SchnorrGroup
from repro.serialization import canonical_bytes


class HmacPrf:
    """HMAC-SHA256 as a PRF keyed by arbitrary bytes."""

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ValueError("PRF key must be non-empty")
        self._key = key

    def evaluate(self, message: bytes) -> bytes:
        return hmac.new(self._key, message, hashlib.sha256).digest()

    def evaluate_object(self, obj: Any) -> bytes:
        return self.evaluate(canonical_bytes(obj))

    def evaluate_int(self, obj: Any) -> int:
        """Evaluation interpreted as an integer in ``[0, 2^256)``.

        This is the form the eligibility check uses: success iff the
        value is below the difficulty threshold ``D_p`` (Appendix D.4).
        """
        return int.from_bytes(self.evaluate_object(obj), "big")


class DdhPrf:
    """The DDH PRF ``PRF_k(m) = H1(m)^k`` over a Schnorr group.

    Security relies on DDH in the group and on ``H1`` hashing to elements
    of unknown discrete log (see :meth:`SchnorrGroup.hash_to_group`).
    """

    def __init__(self, group: SchnorrGroup, key: int) -> None:
        if not 0 < key < group.q:
            raise ValueError("PRF key must be a nonzero scalar")
        self.group = group
        self._key = key

    @property
    def key(self) -> int:
        return self._key

    def base_point(self, message: Any) -> int:
        """``H1(m)``: the per-message base element."""
        return self.group.hash_to_group_from_object(message)

    def evaluate(self, message: Any) -> int:
        """``H1(m)^k`` as a group element."""
        return self.group.exp(self.base_point(message), self._key)
