"""PKI key registry and ideal signatures.

The warmup protocols sign every message (Section 3.1 / Appendix C.1), and
Theorem 2 assumes a PKI established by trusted setup.  This module provides
that setup in two interchangeable modes:

- **ideal** — signatures are unforgeable by construction: signing requires
  a *capability object* handed to each node at setup, and the registry
  records every issued signature.  The adversary can only sign for a node
  whose capability it obtained by corrupting that node (the corruption
  controller hands capabilities over on corruption).  This is the
  "assuming ideal signatures" mode the Appendix C proofs reason in, and it
  is fast enough for thousands of nodes.
- **real** — Schnorr signatures over a chosen group; capabilities wrap the
  actual secret keys.

Both modes expose the same interface, so protocols are agnostic to which
world they run in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.hashing import hash_objects
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature
from repro.crypto.schnorr import sign as schnorr_sign
from repro.crypto.schnorr import verify as schnorr_verify
from repro.errors import ConfigurationError, ForgeryAttempt
from repro.rng import derive_rng
from repro.serialization import type_tagged
from repro.types import NodeId

IDEAL_MODE = "ideal"
REAL_MODE = "real"


@dataclass(frozen=True)
class IdealSignature:
    """An unforgeable signature token issued by the ideal registry."""

    signer: NodeId
    digest: bytes


Signature = Union[IdealSignature, SchnorrSignature]


class SigningCapability:
    """The right to sign as one node.

    Handed to the node at setup; surrendered to the adversary only on
    corruption.  Holding the capability is the simulation analogue of
    holding the secret key.
    """

    def __init__(self, registry: "KeyRegistry", node_id: NodeId) -> None:
        self._registry = registry
        self.node_id = node_id

    def sign(self, message: Any) -> Signature:
        return self._registry._sign(self, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SigningCapability(node={self.node_id})"


class KeyRegistry:
    """Per-execution PKI: key generation, signing, verification."""

    def __init__(self, n: int, mode: str = IDEAL_MODE,
                 group: SchnorrGroup = TEST_GROUP,
                 seed: int = 0) -> None:
        if n < 1:
            raise ConfigurationError("registry needs at least one node")
        if mode not in (IDEAL_MODE, REAL_MODE):
            raise ConfigurationError(f"unknown registry mode {mode!r}")
        self.n = n
        self.mode = mode
        self.group = group
        rng = derive_rng(seed, "key-registry")
        self._capabilities = [SigningCapability(self, node) for node in range(n)]
        self._issued: set[tuple[NodeId, bytes]] = set()
        # The expected digest of (node, message) is deterministic; caching
        # it makes repeated verifications of the same signed statement
        # (every certificate is re-checked by every recipient) a dict hit.
        self._digest_cache: dict = {}
        # Successful ideal-mode verifications, keyed by
        # (node_id, message, digest).  Only positive results are cached:
        # a True can never become False (digests are deterministic and
        # ``_issued`` only grows), whereas a not-yet-issued signature
        # could legitimately verify later.
        self._verified: set = set()
        self._rng = rng
        if mode == REAL_MODE:
            self._keypairs = [SchnorrKeyPair.generate(group, rng) for _ in range(n)]
            self.public_keys = [kp.public for kp in self._keypairs]
        else:
            self._keypairs = []
            self.public_keys = []

    # -- setup -----------------------------------------------------------
    def capability_for(self, node_id: NodeId) -> SigningCapability:
        """Hand out a node's signing capability (setup / corruption only)."""
        return self._capabilities[node_id]

    # -- signing ----------------------------------------------------------
    def _sign(self, capability: SigningCapability, message: Any) -> Signature:
        if capability is not self._capabilities[capability.node_id]:
            raise ForgeryAttempt(
                f"counterfeit capability for node {capability.node_id}")
        node_id = capability.node_id
        if self.mode == REAL_MODE:
            return schnorr_sign(self._keypairs[node_id], message, self._rng)
        digest = self._expected_digest(node_id, message)
        self._issued.add((node_id, digest))
        return IdealSignature(signer=node_id, digest=digest)

    def _expected_digest(self, node_id: NodeId, message: Any) -> bytes:
        try:
            # type_tagged so the cache is exactly as fine-grained as the
            # canonical encoding being digested (True == 1 as a dict key,
            # but they hash differently).
            key = (type_tagged(node_id), type_tagged(message))
            cached = self._digest_cache.get(key)
        except TypeError:
            # Unhashable message: compute without caching.
            return hash_objects("ideal-sig", node_id, message)
        if cached is None:
            cached = hash_objects("ideal-sig", node_id, message)
            self._digest_cache[key] = cached
        return cached

    # -- verification ------------------------------------------------------
    def verify(self, node_id: NodeId, message: Any, signature: Signature) -> bool:
        """Verify a signature on ``message`` by ``node_id``; never raises."""
        if not 0 <= node_id < self.n:
            return False
        if self.mode == REAL_MODE:
            if not isinstance(signature, SchnorrSignature):
                return False
            return schnorr_verify(self.group, self.public_keys[node_id],
                                  message, signature)
        if not isinstance(signature, IdealSignature):
            return False
        if signature.signer != node_id:
            return False
        try:
            # type_tagged because dict equality is coarser than the
            # canonical encoding the digest is computed over (True == 1,
            # but they hash differently).
            key = (type_tagged(node_id), type_tagged(message),
                   signature.digest)
            if key in self._verified:
                return True
        except TypeError:
            key = None  # unhashable message: verify without memoization
        expected = self._expected_digest(node_id, message)
        valid = (signature.digest == expected
                 and (node_id, signature.digest) in self._issued)
        if valid and key is not None:
            self._verified.add(key)
        return valid

    def signature_bits(self) -> int:
        """Nominal size of one signature for accounting purposes."""
        if self.mode == REAL_MODE:
            return 2 * 8 * ((self.group.q.bit_length() + 7) // 8)
        return 512  # 256-bit digest + signer id, matching a real scheme
