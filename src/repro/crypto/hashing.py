"""Hash utilities shared by all cryptographic modules.

All hashing is SHA-256 with explicit domain separation: every use site
supplies a short ASCII domain tag so that, e.g., Fiat–Shamir challenges can
never collide with VRF output hashes even on identical payloads.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.serialization import canonical_bytes

HASH_BITS = 256


def hash_bytes(domain: str, *parts: bytes) -> bytes:
    """SHA-256 over a domain tag and length-framed byte parts."""
    hasher = hashlib.sha256()
    tag = domain.encode("ascii")
    hasher.update(len(tag).to_bytes(2, "big"))
    hasher.update(tag)
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()


def hash_to_int(domain: str, *parts: bytes) -> int:
    """SHA-256 interpreted as a big-endian integer in ``[0, 2^256)``."""
    return int.from_bytes(hash_bytes(domain, *parts), "big")


def hash_objects(domain: str, *objects: Any) -> bytes:
    """Hash arbitrary structured objects via their canonical encoding."""
    return hash_bytes(domain, *(canonical_bytes(obj) for obj in objects))


def hash_objects_to_int(domain: str, *objects: Any) -> int:
    return int.from_bytes(hash_objects(domain, *objects), "big")
