"""Commitment schemes.

Appendix D.2 requires a commitment scheme that is **perfectly binding** and
computationally hiding (under selective opening): each node's public key is
a commitment to its PRF secret key, and perfect binding is what makes the
knowledge extraction of Lemma 32 exact.  The ElGamal commitment
``com(v; s) = (g^s, h^s · g^v)`` has precisely these properties under DDH.

A hash commitment (computationally binding, hiding in the ROM) is also
provided for places where perfect binding is not needed and speed matters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import hash_bytes


@dataclass(frozen=True)
class HashCommitment:
    """A SHA-256 commitment ``H(tag, value, randomness)``."""

    digest: bytes

    @staticmethod
    def commit(value: bytes, randomness: bytes) -> "HashCommitment":
        if len(randomness) < 16:
            raise ValueError("randomness must be at least 128 bits")
        return HashCommitment(hash_bytes("hash-commit", value, randomness))

    def open(self, value: bytes, randomness: bytes) -> bool:
        try:
            return HashCommitment.commit(value, randomness) == self
        except ValueError:
            return False


@dataclass(frozen=True)
class ElGamalCommitment:
    """A perfectly binding ElGamal commitment ``(u, v) = (g^s, h^s g^m)``.

    ``u`` determines ``s`` uniquely (g generates a prime-order group) and
    then ``v`` determines ``g^m`` uniquely, so no commitment can be opened
    two ways — the *perfectly binding* property Appendix D.2 demands.
    """

    u: int
    v: int


class ElGamalCommitmentScheme:
    """ElGamal commitments to scalars over a Schnorr group."""

    def __init__(self, group: SchnorrGroup) -> None:
        self.group = group

    def commit(self, value: int, randomness: int) -> ElGamalCommitment:
        """Commit to scalar ``value`` with scalar ``randomness``."""
        group = self.group
        if not 0 <= value < group.q:
            raise ValueError("value must be a scalar")
        if not 0 < randomness < group.q:
            raise ValueError("randomness must be a nonzero scalar")
        return ElGamalCommitment(
            u=group.exp(group.g, randomness),
            v=group.mul(group.exp(group.h, randomness), group.exp(group.g, value)),
        )

    def commit_random(self, value: int, rng: random.Random) -> tuple[ElGamalCommitment, int]:
        randomness = self.group.random_scalar(rng)
        return self.commit(value, randomness), randomness

    def open(self, commitment: ElGamalCommitment, value: int, randomness: int) -> bool:
        try:
            return self.commit(value, randomness) == commitment
        except ValueError:
            return False

    def is_well_formed(self, commitment: ElGamalCommitment) -> bool:
        return (self.group.is_element(commitment.u)
                and self.group.is_element(commitment.v))
