"""The adaptively-structured VRF of Appendix D.

The paper's real-world compiler (Appendix D.4) replaces each
``Fmine.mine(m)`` call with:

1. evaluate the node's PRF on ``m``:   ``rho = PRF_sk(m)``;
2. produce a NIZK that ``rho`` is consistent with the node's public key,
   which is a perfectly-binding commitment to ``sk`` published in the PKI;
3. succeed iff ``rho < D_p`` for the difficulty of the message type.

This module implements exactly that pipeline over a DDH group:

- secret key: PRF key ``k`` plus commitment randomness ``s``;
- public key: ElGamal commitment ``(g^s, h^s · g^k)``;
- evaluation on message ``m``: group element ``gamma = H1(m)^k``, hashed to
  the final pseudorandom value ``beta = H2(gamma)`` used for the threshold
  comparison;
- proof: the committed-key sigma proof of :mod:`repro.crypto.dleq`.

Uniqueness — the property the lower-bound-evading protocols lean on — holds
because the commitment is perfectly binding: for a fixed public key and
message there is exactly one ``gamma`` any proof can verify against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.commitment import ElGamalCommitment, ElGamalCommitmentScheme
from repro.crypto.dleq import (
    CommittedKeyProof,
    prove_committed_key,
    verify_committed_key,
)
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import hash_objects_to_int

#: Number of bits of VRF output used for difficulty comparisons.
VRF_OUTPUT_BITS = 256


@dataclass(frozen=True)
class VrfPublicKey:
    """A node's VRF public key: a perfectly-binding commitment to its key."""

    commitment: ElGamalCommitment


@dataclass(frozen=True)
class VrfOutput:
    """The result of one VRF evaluation.

    ``beta`` is the pseudorandom integer in ``[0, 2^256)`` compared against
    the difficulty threshold; ``gamma`` and ``proof`` let anyone verify it
    against the evaluator's public key.
    """

    gamma: int
    beta: int
    proof: CommittedKeyProof


@dataclass(frozen=True)
class VrfKeyPair:
    group: SchnorrGroup
    key: int
    randomness: int
    public: VrfPublicKey

    @classmethod
    def generate(cls, group: SchnorrGroup, rng: random.Random) -> "VrfKeyPair":
        """Trusted-setup key generation (the PKI of Theorem 2)."""
        scheme = ElGamalCommitmentScheme(group)
        key = group.random_scalar(rng)
        commitment, randomness = scheme.commit_random(key, rng)
        return cls(group=group, key=key, randomness=randomness,
                   public=VrfPublicKey(commitment=commitment))

    def evaluate(self, message: Any, rng: random.Random) -> VrfOutput:
        """Evaluate the VRF on ``message`` and prove correctness."""
        group = self.group
        base = group.hash_to_group_from_object(message)
        gamma = group.exp(base, self.key)
        beta = hash_objects_to_int("vrf-output", gamma) % (1 << VRF_OUTPUT_BITS)
        proof = prove_committed_key(
            group, self.key, self.randomness, base, rng, context=message)
        return VrfOutput(gamma=gamma, beta=beta, proof=proof)


def verify_vrf(group: SchnorrGroup, public: VrfPublicKey, message: Any,
               output: VrfOutput) -> bool:
    """Verify a VRF output against a public key; never raises."""
    base = group.hash_to_group_from_object(message)
    if not verify_committed_key(group, public.commitment, base,
                                output.gamma, output.proof, context=message):
        return False
    expected_beta = hash_objects_to_int(
        "vrf-output", output.gamma) % (1 << VRF_OUTPUT_BITS)
    return expected_beta == output.beta
