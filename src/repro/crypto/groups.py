"""Schnorr groups: prime-order subgroups of ``Z_p^*`` for a safe prime p.

Appendix D instantiates the paper's VRF from "standard bilinear group
assumptions" via the Groth–Ostrovsky–Sahai NIZK.  Bilinear pairings are
out of reach offline, so (as documented in DESIGN.md §2) we instantiate the
same compiler over an ordinary DDH-hard group: a prime-order-q subgroup of
``Z_p^*`` with ``p = 2q + 1`` a safe prime.  Everything the protocols
exercise — commitments to PRF keys, per-message evaluation proofs, public
verifiability — carries over unchanged.

Two parameter sets ship with the library:

- :data:`TEST_GROUP` — a 129-bit safe prime.  *Not secure*; fast enough to
  run full protocol executions with real proofs inside the test suite.
- :data:`MODP_2048_GROUP` — the RFC 3526 2048-bit MODP group (a genuine
  safe prime), for realistic sizing/benchmarks.

Group elements are plain ``int`` values in ``[1, p)``; scalars are ``int``
values in ``[0, q)``.  Keeping elements as integers lets the serialization
layer size them correctly with no wrapper classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import hash_bytes, hash_to_int
from repro.serialization import canonical_bytes


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test (used to validate group parameters)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    rng = rng or random.Random(0xC0FFEE)
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class SchnorrGroup:
    """A prime-order subgroup of ``Z_p^*`` with two independent generators.

    ``g`` is the primary generator; ``h`` is a second generator with
    unknown discrete log relative to ``g`` (derived by hashing into the
    group), needed by the ElGamal commitment scheme.
    """

    name: str
    p: int
    q: int
    g: int
    h: int = field(default=0)

    def __post_init__(self) -> None:
        if self.p != 2 * self.q + 1:
            raise ValueError("expected a safe prime: p = 2q + 1")
        if not (1 < self.g < self.p) or pow(self.g, self.q, self.p) != 1:
            raise ValueError("g is not an order-q element")
        if self.h == 0:
            object.__setattr__(self, "h", self.hash_to_group(b"second-generator"))
        if not (1 < self.h < self.p) or pow(self.h, self.q, self.p) != 1:
            raise ValueError("h is not an order-q element")

    # -- scalar helpers -------------------------------------------------
    def random_scalar(self, rng: random.Random) -> int:
        """Uniform scalar in ``[1, q)`` (nonzero to avoid degenerate keys)."""
        return rng.randrange(1, self.q)

    def scalar_from_bytes(self, data: bytes) -> int:
        return int.from_bytes(data, "big") % self.q

    # -- group operations ------------------------------------------------
    def exp(self, base: int, exponent: int) -> int:
        return pow(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def is_element(self, a: int) -> bool:
        """Membership test for the order-q subgroup."""
        return 0 < a < self.p and pow(a, self.q, self.p) == 1

    def hash_to_group(self, data: bytes) -> int:
        """Hash into the subgroup by cofactor exponentiation.

        ``x ↦ x^2 mod p`` maps any ``x ∈ Z_p^*`` into the quadratic
        residues, which for a safe prime form exactly the order-q
        subgroup.  Crucially the discrete log of the result relative to
        ``g`` is unknown, which the DDH PRF/VRF requires.  Rejection-walk
        on the rare degenerate output.
        """
        counter = 0
        while True:
            digest = hash_bytes("hash-to-group", self.name.encode("ascii"),
                                counter.to_bytes(4, "big"), data)
            candidate = int.from_bytes(digest, "big") % self.p
            element = candidate * candidate % self.p
            if element not in (0, 1):
                return element
            counter += 1

    def hash_to_group_from_object(self, obj: Any) -> int:
        return self.hash_to_group(canonical_bytes(obj))

    def element_bits(self) -> int:
        """Size of one serialized group element in bits."""
        return 8 * ((self.p.bit_length() + 7) // 8)

    def validate(self, rounds: int = 20) -> None:
        """Probabilistically verify the group parameters (used in tests)."""
        if not is_probable_prime(self.p, rounds):
            raise ValueError("p is not prime")
        if not is_probable_prime(self.q, rounds):
            raise ValueError("q is not prime")

    def challenge_scalar(self, domain: str, *objects: Any) -> int:
        """Fiat–Shamir challenge derived from structured transcript data."""
        return hash_to_int(domain, canonical_bytes(tuple(objects))) % self.q


# 129-bit safe prime generated once and fixed (see DESIGN.md): fast, NOT secure.
_TEST_Q = 0x9DE9EA6670D3DA1FC735DF5EF76986FD
TEST_GROUP = SchnorrGroup(
    name="test-129",
    p=2 * _TEST_Q + 1,
    q=_TEST_Q,
    g=4,
)

# RFC 3526 group 14 (2048-bit MODP).  p is a safe prime; 4 = 2^2 generates
# the order-q subgroup of quadratic residues.
_MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)
MODP_2048_GROUP = SchnorrGroup(
    name="modp-2048",
    p=_MODP_2048_P,
    q=(_MODP_2048_P - 1) // 2,
    g=4,
)
