"""Cryptographic substrate for the Appendix D real-world compiler.

This package implements, from scratch in pure Python, every primitive the
paper's real-world instantiation (Appendix D) relies on:

- :mod:`repro.crypto.groups` — Schnorr (prime-order subgroup) arithmetic
  with hash-to-group, over both small test parameters and a 2048-bit MODP
  group.
- :mod:`repro.crypto.prf` — an HMAC-SHA256 PRF and the DDH ("exponentiation")
  PRF ``PRF_k(m) = H1(m)^k`` the VRF is built from.
- :mod:`repro.crypto.schnorr` — Schnorr signatures (Fiat–Shamir).
- :mod:`repro.crypto.commitment` — hash commitments and perfectly-binding
  ElGamal commitments (the binding flavour Appendix D.2 requires).
- :mod:`repro.crypto.dleq` — Chaum–Pedersen discrete-log-equality NIZK and
  the two-witness "committed-key VRF" sigma proof, Fiat–Shamir compiled.
- :mod:`repro.crypto.vrf` — the adaptively-structured VRF of Appendix D:
  public key = perfectly-binding commitment to the PRF key, evaluation
  proof = NIZK that the evaluation matches the committed key.
- :mod:`repro.crypto.forward_secure` — forward-secure signatures (Merkle
  tree over per-epoch keys) used by the memory-erasure baseline
  (Chen–Micali "ephemeral keys", footnote 5).
- :mod:`repro.crypto.registry` — an ideal signature/PKI registry for fast
  large-scale simulation, enforcing unforgeability by construction.
"""

from repro.crypto.groups import SchnorrGroup, TEST_GROUP, MODP_2048_GROUP
from repro.crypto.prf import HmacPrf, DdhPrf
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, sign, verify
from repro.crypto.commitment import (
    HashCommitment,
    ElGamalCommitmentScheme,
    ElGamalCommitment,
)
from repro.crypto.dleq import DleqProof, prove_dleq, verify_dleq
from repro.crypto.vrf import VrfKeyPair, VrfOutput, VrfPublicKey
from repro.crypto.forward_secure import ForwardSecureKeyPair, ForwardSecureSignature
from repro.crypto.registry import KeyRegistry, IdealSignature

__all__ = [
    "SchnorrGroup",
    "TEST_GROUP",
    "MODP_2048_GROUP",
    "HmacPrf",
    "DdhPrf",
    "SchnorrKeyPair",
    "SchnorrSignature",
    "sign",
    "verify",
    "HashCommitment",
    "ElGamalCommitmentScheme",
    "ElGamalCommitment",
    "DleqProof",
    "prove_dleq",
    "verify_dleq",
    "VrfKeyPair",
    "VrfOutput",
    "VrfPublicKey",
    "ForwardSecureKeyPair",
    "ForwardSecureSignature",
    "KeyRegistry",
    "IdealSignature",
]
