"""Schnorr signatures over a Schnorr group (Fiat–Shamir compiled).

The warmup protocols (Section 3.1, Appendix C.1) require "all messages are
signed".  In the fast simulation mode the ideal registry of
:mod:`repro.crypto.registry` plays this role; this module provides the real
scheme so that the compiled protocols can run end-to-end with genuine
cryptography.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.groups import SchnorrGroup
from repro.errors import SignatureError


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(c, s)`` with ``c`` the Fiat–Shamir challenge."""

    challenge: int
    response: int


@dataclass(frozen=True)
class SchnorrKeyPair:
    group: SchnorrGroup
    secret: int
    public: int

    @classmethod
    def generate(cls, group: SchnorrGroup, rng: random.Random) -> "SchnorrKeyPair":
        secret = group.random_scalar(rng)
        return cls(group=group, secret=secret, public=group.exp(group.g, secret))


def sign(keypair: SchnorrKeyPair, message: Any, rng: random.Random) -> SchnorrSignature:
    """Sign ``message`` (any canonically-encodable object)."""
    group = keypair.group
    nonce = group.random_scalar(rng)
    commitment = group.exp(group.g, nonce)
    challenge = group.challenge_scalar(
        "schnorr-sig", keypair.public, commitment, message)
    response = (nonce + challenge * keypair.secret) % group.q
    return SchnorrSignature(challenge=challenge, response=response)


def verify(group: SchnorrGroup, public: int, message: Any,
           signature: SchnorrSignature) -> bool:
    """Verify a Schnorr signature; returns False rather than raising."""
    if not group.is_element(public):
        return False
    if not (0 <= signature.challenge < group.q and 0 <= signature.response < group.q):
        return False
    # Recompute the commitment: R = g^s * pk^{-c}.
    commitment = group.mul(
        group.exp(group.g, signature.response),
        group.inv(group.exp(public, signature.challenge)),
    )
    expected = group.challenge_scalar("schnorr-sig", public, commitment, message)
    return expected == signature.challenge


def verify_or_raise(group: SchnorrGroup, public: int, message: Any,
                    signature: SchnorrSignature) -> None:
    if not verify(group, public, message, signature):
        raise SignatureError("Schnorr signature verification failed")
