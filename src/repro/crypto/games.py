"""The selective-opening PRF game of Appendix E (Definition 20).

Appendix E reduces the real-world protocol's security to
*pseudorandomness under selective opening*: an adversary may create PRF
instances, query them, adaptively corrupt some (learning their keys), and
must then fail to distinguish un-corrupted instances' outputs from random.

This module implements the experiment ``Expt^A_b`` exactly as Definition
20 writes it — a challenger with the four query types (create / evaluate
/ corrupt / challenge) and compliance tracking — so that:

- the game's *mechanics* are executable and testable (a compliant
  statistical distinguisher gets ~zero advantage against the DDH PRF; a
  non-compliant adversary that corrupts its challenge instance trivially
  wins, which the challenger flags);
- protocol-level tests can reuse the challenger to model exactly what an
  adaptive corruption reveals.

No claim is made that running the game "proves" security — that is the
paper's reduction; this is the faithful experimental apparatus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Set, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.hashing import hash_objects_to_int
from repro.crypto.prf import DdhPrf
from repro.errors import ReproError

REAL_WORLD = 1
RANDOM_WORLD = 0


class ComplianceViolation(ReproError):
    """The adversary broke Definition 20's compliance rules."""


@dataclass
class GameLog:
    """Everything the challenger recorded about one experiment."""

    created: int = 0
    evaluations: List[Tuple[int, Any]] = field(default_factory=list)
    corruptions: Set[int] = field(default_factory=set)
    challenges: List[Tuple[int, Any]] = field(default_factory=list)


class SelectiveOpeningChallenger:
    """The challenger of ``Expt^A_b`` (Definition 20).

    ``b = REAL_WORLD``: challenge queries return true PRF evaluations.
    ``b = RANDOM_WORLD``: challenge queries return fresh random values
    (consistently per (instance, message), as a random function would).
    """

    def __init__(self, b: int, seed: int = 0,
                 group: SchnorrGroup = TEST_GROUP) -> None:
        if b not in (REAL_WORLD, RANDOM_WORLD):
            raise ValueError("b must be 0 or 1")
        self._b = b
        self.group = group
        self._rng = random.Random(("so-game", seed).__repr__())
        self._instances: List[DdhPrf] = []
        self._random_memo: dict = {}
        self.log = GameLog()

    # -- the four query types -------------------------------------------
    def create_instance(self) -> int:
        """Create a fresh PRF instance; returns its index."""
        key = self.group.random_scalar(self._rng)
        self._instances.append(DdhPrf(self.group, key))
        self.log.created += 1
        return len(self._instances) - 1

    def evaluate(self, index: int, message: Any) -> int:
        """An honest evaluation query (always answered truthfully)."""
        prf = self._instance(index)
        self.log.evaluations.append((index, message))
        return prf.evaluate(message)

    def corrupt(self, index: int) -> int:
        """Selective opening: reveal the instance's secret key."""
        prf = self._instance(index)
        self.log.corruptions.add(index)
        return prf.key

    def challenge(self, index: int, message: Any) -> int:
        """The distinguishing query; compliance is checked here and at
        :meth:`assert_compliant`."""
        self._instance(index)
        self.log.challenges.append((index, message))
        if self._b == REAL_WORLD:
            return self._instances[index].evaluate(message)
        memo_key = (index, repr(message))
        if memo_key not in self._random_memo:
            self._random_memo[memo_key] = self.group.exp(
                self.group.g, self.group.random_scalar(self._rng))
        return self._random_memo[memo_key]

    # -- compliance ---------------------------------------------------------
    def assert_compliant(self) -> None:
        """Definition 20: challenge instances were never corrupted, and no
        challenge (i*, m) was also an evaluation query."""
        for index, message in self.log.challenges:
            if index in self.log.corruptions:
                raise ComplianceViolation(
                    f"instance {index} was both challenged and corrupted")
            if (index, message) in self.log.evaluations:
                raise ComplianceViolation(
                    f"challenge {(index, message)} duplicates an "
                    f"evaluation query")

    def _instance(self, index: int) -> DdhPrf:
        if not 0 <= index < len(self._instances):
            raise ReproError(f"no PRF instance {index}")
        return self._instances[index]


def run_distinguisher(adversary, seed: int = 0,
                      group: SchnorrGroup = TEST_GROUP) -> Tuple[int, int]:
    """Run ``adversary(challenger) -> guess`` in both worlds.

    Returns ``(guess_in_real_world, guess_in_random_world)``; an
    adversary with advantage guesses differently across worlds more often
    than not over repeated seeds.  Compliance is enforced.
    """
    guesses = []
    for b in (REAL_WORLD, RANDOM_WORLD):
        challenger = SelectiveOpeningChallenger(b, seed=seed, group=group)
        guess = adversary(challenger)
        challenger.assert_compliant()
        guesses.append(guess)
    return guesses[0], guesses[1]


def statistical_distinguisher(challenger: SelectiveOpeningChallenger) -> int:
    """A simple compliant distinguisher: create instances, corrupt some,
    and guess from crude statistics of the challenge values.

    Against a secure PRF its advantage must be ~0; it exists to exercise
    the game end-to-end.
    """
    instances = [challenger.create_instance() for _ in range(6)]
    for index in instances[:3]:
        challenger.corrupt(index)
    bits = 0
    samples = 0
    for index in instances[3:]:
        for message in range(16):
            value = challenger.challenge(index, ("probe", message))
            bits += hash_objects_to_int("probe-lsb", value) & 1
            samples += 1
    # Guess "real" iff the low bits skew high — pure noise either way.
    return REAL_WORLD if bits * 2 >= samples else RANDOM_WORLD
