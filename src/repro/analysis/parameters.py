"""Concrete parameter selection and closed-form lemma predictions.

Turns the paper's asymptotic statements into checkable numbers:

- Lemma 11(i): fewer than ``λ/2`` already-corrupt nodes are eligible —
  :func:`corrupt_quorum_probability` gives the *exact* probability of the
  bad event for given ``n``, ``f``, ``λ``.
- Lemma 11(ii): at least ``λ/2`` so-far-honest nodes are eligible —
  :func:`honest_quorum_failure_probability`.
- Lemma 10: Terminate propagation — :func:`terminate_propagation_failure`.
- Lemma 12: a unique so-far-honest proposer appears with probability
  ``> 1/(2e)`` — :func:`good_iteration_probability` computes the exact
  per-iteration probability ``C(2n,1)(1/2n)(1-1/2n)^{2n-1} · 1/2``.
- :func:`choose_lambda` inverts the bounds: the smallest committee size
  meeting a target failure probability for a given corrupt fraction.
"""

from __future__ import annotations

import math

from repro.analysis.chernoff import binomial_tail_ge, binomial_tail_le


def corrupt_quorum_probability(n: int, f: int, lam: int) -> float:
    """Exact P[#eligible corrupt >= λ/2] for one topic.

    Each of the ``f`` corrupt nodes is eligible with probability ``λ/n``
    (a corrupt node may try both bits, but per *topic* it gets one coin).
    """
    threshold = math.ceil(lam / 2)
    return binomial_tail_ge(threshold, f, min(1.0, lam / n))


def honest_quorum_failure_probability(n: int, f: int, lam: int) -> float:
    """Exact P[#eligible honest < λ/2] for one topic."""
    threshold = math.ceil(lam / 2)
    honest = n - f
    return binomial_tail_le(threshold - 1, honest, min(1.0, lam / n))


def terminate_propagation_failure(n: int, lam: int, terminated: int) -> float:
    """Lemma 10: P[no terminated honest node may send Terminate].

    ``(1 - λ/n)^terminated < exp(-ελ/2)`` when ``terminated = εn/2``.
    """
    if terminated <= 0:
        return 1.0
    return (1.0 - min(1.0, lam / n)) ** terminated


def good_iteration_probability(n: int, honest_fraction: float = 0.5) -> float:
    """Lemma 12: exact P[exactly one proposal succeeds] × P[it is honest].

    There are ``2n`` mining attempts per iteration (each node, each bit),
    each succeeding with probability ``1/2n``; the unique success must
    come from a so-far-honest node.
    """
    attempts = 2 * n
    p = 1.0 / (2 * n)
    exactly_one = attempts * p * (1.0 - p) ** (attempts - 1)
    return exactly_one * honest_fraction


def expected_iterations(n: int, honest_fraction: float = 0.5) -> float:
    """Expected iterations to termination: geometric in the good-iteration
    probability (an upper-bound model; real executions can finish sooner
    because non-unique-proposer iterations may still succeed)."""
    return 1.0 / good_iteration_probability(n, honest_fraction)


def protocol_failure_probability(n: int, f: int, lam: int,
                                 iterations: int) -> float:
    """Union bound over the per-topic bad events of one execution.

    Per iteration there are ~8 committee topics (Status/Vote/Commit for
    each bit, Terminate for each bit); each can fail by Lemma 11(i) or
    11(ii).  This mirrors the poly(κ)-many-events union bound of
    Appendix C.3.
    """
    per_topic = (corrupt_quorum_probability(n, f, lam)
                 + honest_quorum_failure_probability(n, f, lam))
    return min(1.0, 8 * iterations * per_topic)


def choose_lambda(n: int, corrupt_fraction: float, target_error: float,
                  iterations: int = 40, max_lambda: int = 4096) -> int:
    """Smallest λ whose union-bound failure stays below ``target_error``.

    This is the concrete counterpart of "λ = ω(log κ)": doubling search
    then binary refinement over :func:`protocol_failure_probability`.
    """
    if not 0 <= corrupt_fraction < 0.5:
        raise ValueError("corrupt fraction must lie in [0, 1/2)")
    if not 0 < target_error < 1:
        raise ValueError("target error must lie in (0, 1)")
    f = int(corrupt_fraction * n)

    def failure(lam: int) -> float:
        return protocol_failure_probability(n, f, lam, iterations)

    low, high = 1, 1
    while failure(high) > target_error:
        high *= 2
        if high > max_lambda:
            raise ValueError(
                f"no committee size up to {max_lambda} meets the target; "
                f"n={n} is too small for corrupt fraction {corrupt_fraction}")
    while low < high:
        mid = (low + high) // 2
        if failure(mid) <= target_error:
            high = mid
        else:
            low = mid + 1
    return high
