"""Analytical companions to the protocol lemmas.

- :mod:`repro.analysis.chernoff` — tail bounds and exact binomial tails
  used to predict the Lemma 10/11 failure probabilities.
- :mod:`repro.analysis.parameters` — concrete parameter selection: the
  committee size ``λ`` for a target failure probability, the difficulty
  choices, and closed forms for Lemma 12's good-iteration probability.
- :mod:`repro.analysis.stats` — small summary-statistics helpers.
"""

from repro.analysis.chernoff import (
    binomial_tail_ge,
    binomial_tail_le,
    chernoff_lower_tail,
    chernoff_upper_tail,
)
from repro.analysis.parameters import (
    choose_lambda,
    corrupt_quorum_probability,
    good_iteration_probability,
    honest_quorum_failure_probability,
    terminate_propagation_failure,
)
from repro.analysis.complexity import (
    expected_dolev_strong_multicasts,
    expected_quadratic_multicasts,
    expected_subquadratic_multicasts,
)
from repro.analysis.stats import mean, percentile, stddev

__all__ = [
    "binomial_tail_ge",
    "binomial_tail_le",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "choose_lambda",
    "corrupt_quorum_probability",
    "good_iteration_probability",
    "honest_quorum_failure_probability",
    "terminate_propagation_failure",
    "expected_dolev_strong_multicasts",
    "expected_quadratic_multicasts",
    "expected_subquadratic_multicasts",
    "mean",
    "percentile",
    "stddev",
]
