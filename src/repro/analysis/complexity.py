"""Closed-form communication predictions (Lemma 15 and baselines).

Turns the paper's big-O communication statements into concrete expected
values the measurements can be checked against:

- subquadratic BA: per iteration, the expected number of honest
  multicasts is one committee per phase (≈ λ each for Status, Vote,
  Commit) plus ~1/2 expected proposer; termination adds one Terminate
  committee (≈ λ).  Lemma 15's ``O(nλ²)`` messages = ``O(λ²)``
  multicasts over the expected O(1) iterations.
- quadratic BA: every honest node multicasts once per round.
- Dolev–Strong: each node relays each extracted bit at most once.
"""

from __future__ import annotations

import math

from repro.analysis.parameters import good_iteration_probability


def expected_subquadratic_multicasts(lam: int, iterations: float,
                                     honest_fraction: float = 1.0) -> float:
    """Expected honest multicasts for the C.2 protocol.

    Iteration 1 has two committee phases (Vote, Commit); every later
    iteration has three (Status, Vote, Commit) plus an expected half
    proposer; termination triggers one Terminate committee.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    committee = honest_fraction * lam
    first = 2 * committee
    later = max(0.0, iterations - 1) * (3 * committee + 0.5)
    terminate = committee
    return first + later + terminate


def expected_quadratic_multicasts(n: int, f: int, rounds: float) -> float:
    """Every so-far-honest node multicasts once per round (C.1)."""
    honest = n - f
    return honest * rounds


def expected_dolev_strong_multicasts(n: int, f: int,
                                     extracted_bits: int = 1) -> float:
    """Each honest node relays each extracted bit once (plus the sender)."""
    honest = n - f
    return honest * extracted_bits


def expected_iterations_subquadratic(n: int,
                                     honest_fraction: float = 0.5) -> float:
    """Geometric upper-bound model from Lemma 12's good-iteration rate."""
    return 1.0 / good_iteration_probability(n, honest_fraction)


def message_size_bound_bits(lam: int, n: int, kappa: int,
                            entry_overhead_bits: int = 256) -> float:
    """Lemma 15: each message is O(λ (log κ + log n)) bits.

    ``entry_overhead_bits`` models the per-entry constant (a ticket or
    signature); the λ/2 quorum dominates.
    """
    per_entry = entry_overhead_bits + math.log2(max(n, 2)) + kappa
    return (lam / 2) * per_entry
