"""Small statistics helpers for experiment reporting (no numpy needed)."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise ValueError("stddev of empty sequence")
    center = mean(values)
    return math.sqrt(sum((value - center) ** 2 for value in values)
                     / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100 * len(ordered)))
    return ordered[rank - 1]
