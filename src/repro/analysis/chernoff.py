"""Tail bounds for the committee-sampling analyses (Appendix C.3).

The paper's lemmas bound bad events of the form "too many corrupt nodes
were eligible" / "too few honest nodes were eligible" by Chernoff bounds
on sums of independent Bernoulli(λ/n) coins.  This module provides both
the classical multiplicative Chernoff bounds (the form the lemmas quote)
and exact binomial tails (what the Monte-Carlo experiments are compared
against).
"""

from __future__ import annotations

import math


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """``P[X >= (1+δ)μ] <= exp(-δ²μ / (2+δ))`` for δ > 0."""
    if mu < 0 or delta < 0:
        raise ValueError("mu and delta must be non-negative")
    if mu == 0 or delta == 0:
        return 1.0
    return math.exp(-(delta * delta) * mu / (2 + delta))


def chernoff_lower_tail(mu: float, delta: float) -> float:
    """``P[X <= (1-δ)μ] <= exp(-δ²μ / 2)`` for 0 < δ < 1."""
    if mu < 0:
        raise ValueError("mu must be non-negative")
    if not 0 <= delta <= 1:
        raise ValueError("delta must lie in [0, 1]")
    if mu == 0 or delta == 0:
        return 1.0
    return math.exp(-(delta * delta) * mu / 2)


def _log_binom_pmf(k: int, trials: int, probability: float) -> float:
    return (math.lgamma(trials + 1) - math.lgamma(k + 1)
            - math.lgamma(trials - k + 1)
            + k * math.log(probability)
            + (trials - k) * math.log1p(-probability))


def binomial_tail_ge(k: int, trials: int, probability: float) -> float:
    """Exact ``P[Bin(trials, probability) >= k]``."""
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0 <= probability <= 1:
        raise ValueError("probability must lie in [0, 1]")
    if k <= 0:
        return 1.0
    if k > trials:
        return 0.0
    if probability == 0.0:
        return 0.0
    if probability == 1.0:
        return 1.0
    total = 0.0
    for value in range(k, trials + 1):
        total += math.exp(_log_binom_pmf(value, trials, probability))
    return min(1.0, total)


def binomial_tail_le(k: int, trials: int, probability: float) -> float:
    """Exact ``P[Bin(trials, probability) <= k]``."""
    if k < 0:
        return 0.0
    if k >= trials:
        return 1.0
    return 1.0 - binomial_tail_ge(k + 1, trials, probability)
