"""Executable versions of the paper's three lower-bound arguments.

- :mod:`repro.lowerbounds.dolev_reischuk` — the Section 2 warmup: the
  two-adversary (``A`` / ``A'``) experiment breaking any deterministic
  broadcast that sends fewer than ``(f/2)²`` messages.
- :mod:`repro.lowerbounds.theorem4` — Theorem 1/4: the strongly adaptive
  isolation experiment against randomized (subquadratic) protocols.
- :mod:`repro.lowerbounds.no_pki` — Theorem 3: the hypothetical
  ``Q --- 1 --- Q'`` experiment showing that sublinear multicast BA
  without setup assumptions is impossible.
"""

from repro.lowerbounds.dolev_reischuk import (
    DolevReischukReport,
    run_dolev_reischuk_attack,
)
from repro.lowerbounds.theorem4 import Theorem4Report, run_theorem4_attack
from repro.lowerbounds.no_pki import HypotheticalReport, run_hypothetical_experiment

__all__ = [
    "DolevReischukReport",
    "run_dolev_reischuk_attack",
    "Theorem4Report",
    "run_theorem4_attack",
    "HypotheticalReport",
    "run_hypothetical_experiment",
]
