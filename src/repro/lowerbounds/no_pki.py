"""Theorem 3: the hypothetical experiment ``(input: 0) Q --- 1 --- Q'`` (input: 1).

A custom router runs ``2n - 1`` honest protocol instances:

- the *bridge* node (id 0 here; "node 1" in the paper) participates in
  both executions — whatever it multicasts is delivered to both sides, and
  it receives both sides' messages under the *same* claimed sender ids;
- the left side ``Q`` (ids 1..n-1) runs with the designated sender's
  input 0; the right side ``Q'`` (same ids!) runs with input 1.

Under the **shared random-oracle setup** (one ``Fmine`` lottery keyed only
by node *number*, which is all a setup-free world can offer), both sides'
messages verify everywhere, each side reaches its own validity-mandated
output (0 on the left, 1 on the right) — and the bridge node, one machine,
must disagree with one of the two sides it is "honestly consistent" with.
That is the contradiction: whichever side is real, consistency or validity
fails, and the adversary of the honest-1 interpretation needs only
``#(distinct right-side speakers) ≈ C`` adaptive corruptions to realise it.

Under a **PKI** the same construction collapses: the simulated side's
eligibility proofs verify against *its own* keys, not the published PKI,
so the bridge rejects every right-side message — the experiment can no
longer tear the bridge in two.  This is the executable content of "some
setup assumption is necessary".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.eligibility.difficulty import DifficultySchedule
from repro.eligibility.fmine import FMineEligibility
from repro.eligibility.vrf_eligibility import VrfEligibility
from repro.errors import ConfigurationError
from repro.protocols.broadcast import build_broadcast_from_ba
from repro.protocols.phase_king_subquadratic import build_phase_king_subquadratic
from repro.rng import Seed, derive_rng
from repro.sim.network import Delivery
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId, SecurityParameters

SHARED_RO_SETUP = "shared-ro"
PKI_SETUP = "pki"

#: The designated sender on each side ("node 2" in the paper's numbering).
SIDE_SENDER: NodeId = 1


@dataclass
class HypotheticalReport:
    protocol: str
    n: int
    setup: str
    rounds: int
    left_outputs: Set[Bit]
    right_outputs: Set[Bit]
    bridge_output: Bit
    #: Left validity + right validity + a torn bridge: the Thm 3 clash.
    contradiction: bool
    #: Corruptions the honest-1 interpretation needs: distinct Q' speakers.
    right_speakers: int
    #: Honest multicasts of one side (the protocol's multicast complexity).
    left_multicasts: int
    #: Right-side messages whose eligibility failed at the bridge's PKI.
    bridge_rejections: int


def _build_side(n: int, f: int, sender_input: Bit, seed: Seed,
                params: SecurityParameters, epochs: int, eligibility):
    return build_broadcast_from_ba(
        build_phase_king_subquadratic,
        n=n, f=f, sender_input=sender_input, sender=SIDE_SENDER,
        seed=seed, params=params, epochs=epochs, eligibility=eligibility)


def run_hypothetical_experiment(
    n: int,
    seed: Seed = 0,
    params: SecurityParameters = SecurityParameters(lam=30),
    epochs: int = 8,
    setup: str = SHARED_RO_SETUP,
) -> HypotheticalReport:
    """Run the 2n-1-node experiment and report the (non-)contradiction."""
    if n < 5:
        raise ConfigurationError("the experiment needs n >= 5")
    if setup not in (SHARED_RO_SETUP, PKI_SETUP):
        raise ConfigurationError(f"unknown setup {setup!r}")
    schedule = DifficultySchedule.for_parameters(params, n)
    if setup == SHARED_RO_SETUP:
        # One lottery for both sides: identity is just a number, exactly
        # what a random oracle without keys provides.
        shared = FMineEligibility(n, schedule, seed)
        left_eligibility = right_eligibility = shared
    else:
        # Independent key material per side: the simulated side cannot
        # know the real side's secret keys.
        left_eligibility = VrfEligibility(n, schedule, derive_seed_left(seed))
        right_eligibility = VrfEligibility(n, schedule, derive_seed_right(seed))

    f_unused = max(1, (n - 1) // 4)
    left = _build_side(n, f_unused, 0, seed, params, epochs, left_eligibility)
    right = _build_side(n, f_unused, 1, seed, params, epochs, right_eligibility)

    left_nodes: List[Node] = left.nodes
    right_nodes: List[Node] = right.nodes  # index 0 is never stepped
    bridge = left_nodes[0]

    max_rounds = left.max_rounds
    # Per-destination staging: messages delivered next round.
    pending_left: List[Delivery] = []
    pending_right: List[Delivery] = []
    pending_bridge: List[Delivery] = []

    right_speakers: Set[NodeId] = set()
    left_multicasts = 0
    bridge_rejections = 0

    def bridge_would_reject(payload) -> bool:
        ticket = getattr(payload, "auth", None)
        if ticket is None:
            return False
        inner_ticket = getattr(ticket, "ticket", ticket)
        try:
            return not left_eligibility.verify(inner_ticket)
        except Exception:
            return True

    rounds_run = 0
    for round_index in range(max_rounds):
        inbox_left = list(pending_left)
        inbox_right = list(pending_right)
        inbox_bridge = list(pending_bridge)
        pending_left, pending_right, pending_bridge = [], [], []

        # -- bridge node: one machine in both executions -----------------
        if not bridge.halted:
            ctx = RoundContext(0, round_index, inbox_bridge,
                               derive_rng(seed, "bridge-node"))
            bridge.on_round(ctx)
            for _recipient, payload in ctx.staged:
                pending_left.append(Delivery(sender=0, payload=payload))
                pending_right.append(Delivery(sender=0, payload=payload))

        # -- left side Q ---------------------------------------------------
        for node in left_nodes[1:]:
            if node.halted:
                continue
            ctx = RoundContext(node.node_id, round_index, inbox_left,
                               derive_rng(seed, "L-node", node.node_id))
            node.on_round(ctx)
            for _recipient, payload in ctx.staged:
                left_multicasts += 1
                delivery = Delivery(sender=node.node_id, payload=payload)
                pending_left.append(delivery)
                pending_bridge.append(delivery)

        # -- right side Q' ---------------------------------------------------
        for node in right_nodes[1:]:
            if node.halted:
                continue
            ctx = RoundContext(node.node_id, round_index, inbox_right,
                               derive_rng(seed, "R-node", node.node_id))
            node.on_round(ctx)
            for _recipient, payload in ctx.staged:
                right_speakers.add(node.node_id)
                delivery = Delivery(sender=node.node_id, payload=payload)
                pending_right.append(delivery)
                if bridge_would_reject(payload):
                    bridge_rejections += 1
                pending_bridge.append(delivery)

        rounds_run = round_index + 1
        all_halted = (bridge.halted
                      and all(node.halted for node in left_nodes[1:])
                      and all(node.halted for node in right_nodes[1:]))
        if all_halted:
            break

    left_outputs = {node.finalize() for node in left_nodes[1:]}
    right_outputs = {node.finalize() for node in right_nodes[1:]}
    bridge_output = bridge.finalize()
    # The Theorem 3 clash requires the bridge to be a *verification-clean*
    # member of both executions: each side satisfied validity AND nothing
    # was rejected at the bridge.  With a PKI the rejections break the
    # experiment — no contradiction can be derived.
    contradiction = (left_outputs == {0} and right_outputs == {1}
                     and bridge_rejections == 0)
    return HypotheticalReport(
        protocol=left.name,
        n=n,
        setup=setup,
        rounds=rounds_run,
        left_outputs=left_outputs,
        right_outputs=right_outputs,
        bridge_output=bridge_output,
        contradiction=contradiction,
        right_speakers=len(right_speakers),
        left_multicasts=left_multicasts,
        bridge_rejections=bridge_rejections,
    )


def derive_seed_left(seed: Seed) -> str:
    from repro.rng import derive_seed
    return derive_seed(seed, "left-pki")


def derive_seed_right(seed: Seed) -> str:
    from repro.rng import derive_seed
    return derive_seed(seed, "right-pki")
