"""Theorem 1/4 made executable: strongly adaptive isolation.

The theorem says a randomized BB protocol solving broadcast with good
probability must spend ``(εf/2)²`` messages in expectation against a
strongly adaptive adversary.  Contrapositively: a protocol that *doesn't*
spend that much — our subquadratic protocol spends ``O(λ²)`` multicasts —
must be breakable by such an adversary with noticeable probability.

:func:`run_theorem4_attack` runs the
:class:`~repro.adversaries.strongly_adaptive.IsolationAdversary` against a
broadcast protocol and reports the comparison the theorem predicts: the
attack succeeds, with a corruption count of the order of the protocol's
*speaker count* (≪ f for subquadratic protocols, > f for quadratic ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.adversaries.strongly_adaptive import IsolationAdversary
from repro.harness.runner import run_instance
from repro.protocols.base import ProtocolInstance
from repro.sim.conditions import NetworkConditions
from repro.types import AdversaryModel, Bit, NodeId

__all__ = [
    "Theorem4Report",
    "Theorem4Census",
    "run_theorem4_attack",
    "run_theorem4_census",
]


@dataclass
class Theorem4Report:
    protocol: str
    n: int
    f: int
    trials: int
    message_bound: float  # (eps*f/2)^2 from the theorem statement
    mean_honest_messages: float  # classical count, Definition 6
    mean_corruptions: float
    budget_exhausted_rate: float
    violation_rate: float

    @property
    def subquadratic(self) -> bool:
        """Did the protocol stay under the theorem's message bound?"""
        return self.mean_honest_messages < self.message_bound


@dataclass
class Theorem4Census:
    """Statistics of the events inside the Theorem 4 proof.

    The proof runs adversary ``A`` (corrupt a set V of f/2 nodes that
    behave honestly but deafly) and argues:

    - ``X``: the number ``z`` of messages honest nodes send into V is
      below ``ε(f/2)²`` — by Markov, whenever ``E[z] < (εf/2)²``;
    - ``Y``: a uniformly random ``p ∈ V`` receives at most ``f/2`` of
      them;
    - hence ``Pr[X ∩ Y] > 1 − 2ε`` and the starved ``p`` exists with
      noticeable probability.

    This census measures all three frequencies on a live randomized
    protocol, validating the proof's counting on real executions.
    """

    protocol: str
    n: int
    f: int
    epsilon: float
    trials: int
    mean_z: float            # E[z], messages into V
    markov_budget: float     # ε(f/2)²
    event_x_rate: float      # z < ε(f/2)²
    event_y_rate: float      # random p got <= f/2 messages
    event_xy_rate: float
    theorem_bound: float     # 1 - 2ε


def run_theorem4_census(
    builder: Callable[..., ProtocolInstance],
    n: int,
    f: int,
    sender_input: Bit,
    seeds: Sequence,
    epsilon: float = 0.25,
    conditions: Optional[NetworkConditions] = None,
    **builder_kwargs,
) -> Theorem4Census:
    """Run adversary ``A`` repeatedly and tally the proof's events.

    ``conditions`` runs the executions under partial synchrony (a
    *study*: the proof's counting argument is stated for lock-step, so
    conditioned frequencies are empirical, not the theorem's).
    """
    from repro.lowerbounds.dolev_reischuk import _IgnoringSetAdversary
    from repro.rng import derive_rng

    half_f = f // 2
    budget = epsilon * half_f * half_f
    zs: List[int] = []
    x_hits = 0
    y_hits = 0
    xy_hits = 0
    protocol_name = ""
    for seed in seeds:
        instance = builder(n=n, f=f, sender_input=sender_input, seed=seed,
                           **builder_kwargs)
        protocol_name = instance.name
        corrupt_set = [node for node in range(n) if node != 0][:half_f]
        adversary = _IgnoringSetAdversary(corrupt_set, ignore_first=half_f)
        from repro.harness.runner import run_instance
        run_instance(instance, f, adversary,
                     model=AdversaryModel.ADAPTIVE, seed=seed,
                     conditions=conditions)
        z = sum(adversary.received_by.values())
        zs.append(z)
        x = z < budget
        # The adversary picks p uniformly at random from V (the proof's
        # second coin).
        rng = derive_rng(seed, "theorem4-p")
        p = rng.choice(corrupt_set)
        y = adversary.received_by[p] <= half_f
        x_hits += x
        y_hits += y
        xy_hits += x and y
    trials = len(zs)
    return Theorem4Census(
        protocol=protocol_name,
        n=n,
        f=f,
        epsilon=epsilon,
        trials=trials,
        mean_z=sum(zs) / trials,
        markov_budget=budget,
        event_x_rate=x_hits / trials,
        event_y_rate=y_hits / trials,
        event_xy_rate=xy_hits / trials,
        theorem_bound=1 - 2 * epsilon,
    )


def run_theorem4_attack(
    builder: Callable[..., ProtocolInstance],
    n: int,
    f: int,
    sender_input: Bit,
    seeds: Sequence,
    epsilon: float = 0.5,
    victim: NodeId = 5,
    conditions: Optional[NetworkConditions] = None,
    **builder_kwargs,
) -> Theorem4Report:
    """Run the isolation attack over several seeds and aggregate.

    ``builder(n=, f=, sender_input=, seed=, **kwargs)`` must produce a
    broadcast instance whose designated sender is node 0 (so the victim
    default of node 5 is never the sender).  ``conditions`` runs the
    executions under partial synchrony — a partition *study* of the
    attack (the staging/suppression contract the strongly adaptive
    adversary relies on is unchanged under conditions).
    """
    violations = 0
    exhausted = 0
    corruptions: List[int] = []
    messages: List[int] = []
    protocol_name = ""
    for seed in seeds:
        instance = builder(n=n, f=f, sender_input=sender_input, seed=seed,
                           **builder_kwargs)
        protocol_name = instance.name
        adversary = IsolationAdversary(victim=victim)
        result = run_instance(instance, f, adversary,
                              model=AdversaryModel.STRONGLY_ADAPTIVE,
                              seed=seed, conditions=conditions)
        broken = not (result.consistent()
                      and result.broadcast_valid(0, sender_input))
        violations += broken
        exhausted += adversary.budget_exhausted
        corruptions.append(result.corruptions_used)
        messages.append(result.metrics.classical_message_count)
    trials = len(list(seeds))
    return Theorem4Report(
        protocol=protocol_name,
        n=n,
        f=f,
        trials=trials,
        message_bound=(epsilon * f / 2) ** 2,
        mean_honest_messages=sum(messages) / trials,
        mean_corruptions=sum(corruptions) / trials,
        budget_exhausted_rate=exhausted / trials,
        violation_rate=violations / trials,
    )
