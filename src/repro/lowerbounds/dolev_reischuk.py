"""The Dolev–Reischuk experiment (Section 2 warmup).

For a *deterministic* broadcast protocol the paper's two-step argument is
directly executable:

1. **Run 1 (adversary A)** — corrupt a set ``V`` of ``f/2`` nodes (not the
   sender).  Each member behaves honestly except it (i) ignores the first
   ``f/2`` messages sent to it and (ii) never talks to other members of
   ``V``.  Count the messages honest nodes send into ``V``.
2. If some ``p ∈ V`` received at most ``f/2`` messages, **Run 2
   (adversary A')** — don't corrupt ``p``; instead corrupt exactly the
   senders ``S(p)`` observed in Run 1 and have them behave honestly except
   that they never send to ``p``.  Determinism makes Run 2's view
   identical to Run 1 for everyone outside ``S(p) ∪ {p}`` — so they output
   the Run-1 bit, while ``p``, having heard nothing, outputs its
   silent-default.  If the two differ, consistency is violated.

Protocols that send **more** than ``(f/2)²`` messages into ``V`` (e.g.
Dolev–Strong) leave no such ``p`` and the harness reports the attack
infeasible — the executable content of the ``Ω(f²)`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.adversaries.sandbox import SandboxRunner
from repro.errors import ConfigurationError
from repro.harness.runner import run_instance
from repro.protocols.base import ProtocolInstance
from repro.sim.adversary import Adversary
from repro.sim.conditions import NetworkConditions
from repro.sim.network import Delivery, Envelope
from repro.types import AdversaryModel, Bit, NodeId, Round


class _IgnoringSetAdversary(Adversary):
    """Adversary A: V behaves honestly, deaf for f/2 messages, mute to V."""

    name = "dolev-reischuk-A"

    def __init__(self, corrupt_set: Sequence[NodeId], ignore_first: int) -> None:
        super().__init__()
        self.corrupt_set = list(corrupt_set)
        self.ignore_first = ignore_first
        self._ignored: Dict[NodeId, int] = {node: 0 for node in corrupt_set}
        #: messages (from so-far-honest nodes) addressed into V, per member.
        self.received_by: Dict[NodeId, int] = {node: 0 for node in corrupt_set}
        #: distinct honest senders observed attempting to reach each member.
        self.senders_to: Dict[NodeId, Set[NodeId]] = {
            node: set() for node in corrupt_set}
        self.sandbox: Optional[SandboxRunner] = None

    def bind(self, api) -> None:
        # The sandbox must exist before on_setup() runs inside bind().
        self.sandbox = SandboxRunner(api)
        super().bind(api)

    def on_setup(self) -> None:
        for node_id in self.corrupt_set:
            self.sandbox.adopt(self.api.corrupt(node_id))

    def _inbox_filter(self, node_id: NodeId, delivery: Delivery) -> bool:
        if self._ignored[node_id] < self.ignore_first:
            self._ignored[node_id] += 1
            return False
        return True

    def _send_filter(self, node_id: NodeId, recipient: Optional[NodeId],
                     payload) -> bool:
        # (ii): V members do not send messages to each other.
        return recipient not in self.received_by or recipient is None

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        self.sandbox.step(inboxes, inbox_filter=self._inbox_filter,
                          send_filter=self._send_filter)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        member_set = self.received_by
        for envelope in staged:
            if not envelope.honest_sender:
                continue
            if envelope.is_multicast:
                recipients = [node for node in member_set
                              if node != envelope.sender]
            elif envelope.recipient in member_set:
                recipients = [envelope.recipient]
            else:
                continue
            for recipient in recipients:
                self.received_by[recipient] += 1
                self.senders_to[recipient].add(envelope.sender)


class _PrimeAdversary(Adversary):
    """Adversary A': "almost identical to A" (Section 2).

    Keeps corrupting ``V \\ {p}`` with A's deaf/mute behaviour, leaves the
    starved member ``p`` honest, and additionally corrupts the senders
    ``S(p)``, who behave honestly except that they never send to ``p``.
    Total corruptions: ``|V| - 1 + |S(p)| <= f``.
    """

    name = "dolev-reischuk-A-prime"

    def __init__(self, corrupt_set: Sequence[NodeId], victim: NodeId,
                 senders: Sequence[NodeId], ignore_first: int) -> None:
        super().__init__()
        self.v_members = [node for node in corrupt_set if node != victim]
        self.v_set = set(corrupt_set)  # including p: V stays mute towards p
        self.victim = victim
        self.senders = [node for node in senders if node not in self.v_set]
        self.ignore_first = ignore_first
        self._ignored: Dict[NodeId, int] = {node: 0 for node in self.v_members}
        self.sandbox: Optional[SandboxRunner] = None

    def bind(self, api) -> None:
        # The sandbox must exist before on_setup() runs inside bind().
        self.sandbox = SandboxRunner(api)
        super().bind(api)

    def on_setup(self) -> None:
        for node_id in self.v_members:
            self.sandbox.adopt(self.api.corrupt(node_id))
        for node_id in self.senders:
            self.sandbox.adopt(self.api.corrupt(node_id))

    def _inbox_filter(self, node_id: NodeId, delivery: Delivery) -> bool:
        if node_id in self._ignored and self._ignored[node_id] < self.ignore_first:
            self._ignored[node_id] += 1
            return False
        return True

    def _send_filter(self, node_id: NodeId, recipient: Optional[NodeId],
                     payload) -> bool:
        if node_id in self._ignored:
            # V members: mute towards V (including p), as under A.
            return recipient is None or recipient not in self.v_set
        # S(p) members: honest except towards the victim.
        return recipient is not None and recipient != self.victim

    def observe_deliveries(self, round_index: Round,
                           inboxes: Dict[NodeId, List[Delivery]]) -> None:
        self.sandbox.step(inboxes, inbox_filter=self._inbox_filter,
                          send_filter=self._send_filter)

    def react(self, round_index: Round, staged: List[Envelope]) -> None:
        return None


@dataclass
class DolevReischukReport:
    """Outcome of the two-run experiment."""

    protocol: str
    n: int
    f: int
    message_budget: int  # (f/2)^2, the bound being probed
    messages_into_v: int
    victim: Optional[NodeId]
    victim_message_count: Optional[int]
    senders_to_victim: int
    attack_feasible: bool
    honest_output_run1: Optional[Bit]
    victim_output_run2: Optional[Bit]
    others_output_run2: Optional[Bit]
    consistency_violated: bool


def run_dolev_reischuk_attack(
    builder: Callable[..., ProtocolInstance],
    n: int,
    f: int,
    sender_input: Bit,
    seed=0,
    sender: NodeId = 0,
    conditions: Optional[NetworkConditions] = None,
    **builder_kwargs,
) -> DolevReischukReport:
    """Execute the A / A' experiment against a deterministic protocol.

    The builder must accept ``(n, f, sender_input, seed, **kwargs)`` and
    produce a broadcast :class:`ProtocolInstance` (node 0 = sender by
    default).  The protocol must be deterministic for Run 2's
    view-identity argument to hold — the harness replays it with the same
    seed.

    ``conditions`` runs both executions under partial synchrony — a
    partition *study*.  Each run is still deterministic (the network's
    coins derive from the shared seed), but the view-identity argument is
    stated for lock-step delivery: Run 2's different send pattern shifts
    the network's coin stream, so a conditioned report is an empirical
    observation about the attack's robustness, not the Ω(f²) proof.
    """
    if f < 2:
        raise ConfigurationError("the experiment needs f >= 2")
    half_f = f // 2
    corrupt_set = [node for node in range(n) if node != sender][:half_f]

    # ---- Run 1: adversary A --------------------------------------------
    instance = builder(n=n, f=f, sender_input=sender_input, seed=seed,
                       **builder_kwargs)
    adversary_a = _IgnoringSetAdversary(corrupt_set, ignore_first=half_f)
    result_a = run_instance(instance, f, adversary_a,
                            model=AdversaryModel.ADAPTIVE, seed=seed,
                            conditions=conditions)
    messages_into_v = sum(adversary_a.received_by.values())
    honest_outputs = set(result_a.honest_outputs)
    honest_bit = honest_outputs.pop() if len(honest_outputs) == 1 else None

    # ---- Find the starved member p ----------------------------------------
    victim: Optional[NodeId] = None
    victim_count: Optional[int] = None
    for node_id in corrupt_set:
        count = adversary_a.received_by[node_id]
        if count <= half_f and (victim_count is None or count < victim_count):
            victim = node_id
            victim_count = count
    feasible = victim is not None
    senders_to_victim = (len(adversary_a.senders_to[victim]) if feasible else 0)

    victim_output: Optional[Bit] = None
    others_output: Optional[Bit] = None
    violated = False
    if feasible:
        # ---- Run 2: adversary A' ----------------------------------------
        instance2 = builder(n=n, f=f, sender_input=sender_input, seed=seed,
                            **builder_kwargs)
        suppressors = sorted(adversary_a.senders_to[victim])
        adversary_ap = _PrimeAdversary(corrupt_set, victim, suppressors,
                                       ignore_first=half_f)
        result_ap = run_instance(instance2, f, adversary_ap,
                                 model=AdversaryModel.ADAPTIVE, seed=seed,
                                 conditions=conditions)
        victim_output = result_ap.outputs.get(victim)
        other_nodes = [node for node in result_ap.forever_honest
                       if node != victim]
        other_bits = {result_ap.outputs[node] for node in other_nodes}
        others_output = other_bits.pop() if len(other_bits) == 1 else None
        violated = (victim_output is not None and others_output is not None
                    and victim_output != others_output)

    return DolevReischukReport(
        protocol=instance.name,
        n=n,
        f=f,
        message_budget=half_f * half_f,
        messages_into_v=messages_into_v,
        victim=victim,
        victim_message_count=victim_count,
        senders_to_victim=senders_to_victim,
        attack_feasible=feasible,
        honest_output_run1=honest_bit,
        victim_output_run2=victim_output,
        others_output_run2=others_output,
        consistency_violated=violated,
    )
