"""The ``Fmine`` ideal mining functionality (Figure 1).

    Fmine(1^κ, P)
      On receive mine(m) from node i for the first time:
        Coin[m, i] := Bernoulli(P(m)); return Coin[m, i].
      On receive verify(m, i):
        if mine(m) has been called by node i, return Coin[m, i]; else 0.

Properties implemented faithfully:

- **memoization** — repeated mining attempts on the same ``(m, i)`` reuse
  the first coin;
- **secrecy** — mining requires the node's capability, so no party learns
  an honest node's eligibility before that node chooses to reveal it;
- **verifiability** — anyone can verify a claimed success, and
  verification of a never-mined or failed attempt returns 0 (False).

Coins are drawn from a dedicated deterministic stream keyed by
``(node, topic)`` so executions replay exactly under a fixed seed and are
independent of call order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.eligibility.base import (
    EligibilitySource,
    MiningCapability,
    Ticket,
    Topic,
)
from repro.eligibility.difficulty import DifficultySchedule
from repro.eligibility.lottery_cache import SharedLotteryCache
from repro.rng import Seed, derive_rng, derive_seed
from repro.types import NodeId


@dataclass(frozen=True)
class FMineTicket(Ticket):
    """Marker ticket for the hybrid world; validity lives in ``Fmine``."""


class FMine:
    """The trusted party of Figure 1."""

    def __init__(self, schedule: DifficultySchedule, seed: Seed,
                 coin_cache: Optional[SharedLotteryCache] = None) -> None:
        self.schedule = schedule
        self._seed = seed
        self._coin_cache = coin_cache
        self._coins: Dict[Tuple[NodeId, Topic], bool] = {}
        # Count attempts per node for the stochastic analyses (Lemma 11).
        self.attempt_log: list[Tuple[NodeId, Topic]] = []

    def _flip(self, node_id: NodeId, topic: Topic) -> bool:
        """The Bernoulli(P(m)) coin, deterministic per (node, topic).

        With a :class:`SharedLotteryCache` attached, the flip is served
        from the sweep-wide memo; the key covers the fully derived seed
        *and* the success probability, so a hit is exactly the coin this
        instance would have computed itself.
        """
        probability = self.schedule.probability(topic)
        if self._coin_cache is not None:
            return self._coin_cache.coin(
                (derive_seed(self._seed, "fmine", node_id, topic), probability),
                lambda: self._compute_flip(node_id, topic, probability))
        return self._compute_flip(node_id, topic, probability)

    def _compute_flip(self, node_id: NodeId, topic: Topic,
                      probability: float) -> bool:
        rng = derive_rng(self._seed, "fmine", node_id, topic)
        return rng.random() < probability

    def mine(self, node_id: NodeId, topic: Topic) -> bool:
        """``Fmine.mine(m)`` from node i; memoized per Figure 1."""
        key = (node_id, topic)
        if key not in self._coins:
            self._coins[key] = self._flip(node_id, topic)
            self.attempt_log.append(key)
        return self._coins[key]

    def verify(self, node_id: NodeId, topic: Topic) -> bool:
        """``Fmine.verify(m, i)``: the recorded coin, else 0."""
        return self._coins.get((node_id, topic), False)


class FMineEligibility(EligibilitySource):
    """Adapter exposing ``Fmine`` through the eligibility interface."""

    def __init__(self, n: int, schedule: DifficultySchedule, seed: Seed,
                 coin_cache: Optional[SharedLotteryCache] = None) -> None:
        self.n = n
        self.fmine = FMine(schedule, seed, coin_cache=coin_cache)
        self._capabilities = [MiningCapability(self, node) for node in range(n)]

    def capability_for(self, node_id: NodeId) -> MiningCapability:
        return self._capabilities[node_id]

    def _mine(self, capability: MiningCapability,
              topic: Topic) -> Optional[FMineTicket]:
        self.check_capability(capability, self._capabilities[capability.node_id])
        if self.fmine.mine(capability.node_id, topic):
            return FMineTicket(node_id=capability.node_id, topic=topic)
        return None

    def verify(self, ticket: Ticket) -> bool:
        if not isinstance(ticket, FMineTicket):
            return False
        if not 0 <= ticket.node_id < self.n:
            return False
        return self.fmine.verify(ticket.node_id, ticket.topic)

    def ticket_bits(self) -> int:
        # Matches what a real ticket would carry (a 256-bit evaluation plus
        # a constant-size proof) so ideal-mode accounting is comparable.
        return 256
