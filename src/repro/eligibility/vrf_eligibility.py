"""Compiled real-world eligibility (Appendix D.4).

Replaces ``Fmine`` with the VRF of :mod:`repro.crypto.vrf`:

- ``mine(m)`` → evaluate the node's VRF on the topic, succeed iff the
  256-bit output ``beta`` is below the topic's difficulty threshold
  ``D_p``; the ticket carries the evaluation and its NIZK.
- ``verify`` → check the NIZK against the node's public key (from the
  PKI established at trusted setup) and re-check the threshold.

Evaluations are memoized per topic — a VRF is a deterministic function, so
re-mining the same topic cannot re-roll the lottery (the property the
paper's Footnote 7 adaptive-security discussion is about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.vrf import VrfKeyPair, VrfOutput, VrfPublicKey, verify_vrf
from repro.eligibility.base import (
    EligibilitySource,
    MiningCapability,
    Ticket,
    Topic,
)
from repro.eligibility.difficulty import DifficultySchedule
from repro.rng import Seed, derive_rng
from repro.types import NodeId


@dataclass(frozen=True)
class VrfTicket(Ticket):
    """A verifiable lottery win: the VRF output for the topic."""

    output: VrfOutput


class VrfEligibility(EligibilitySource):
    """Eligibility by real VRF evaluations under a per-node keypair.

    The constructor is the trusted setup of Theorem 2: it generates every
    node's VRF keypair and publishes the list of public keys (the PKI).
    """

    def __init__(self, n: int, schedule: DifficultySchedule, seed: Seed,
                 group: SchnorrGroup = TEST_GROUP) -> None:
        self.n = n
        self.schedule = schedule
        self.group = group
        setup_rng = derive_rng(seed, "vrf-setup")
        self._keypairs = [VrfKeyPair.generate(group, setup_rng) for _ in range(n)]
        #: The PKI: public keys indexed by node id, available to everyone.
        self.public_keys: list[VrfPublicKey] = [kp.public for kp in self._keypairs]
        self._prover_rng = derive_rng(seed, "vrf-prover")
        self._capabilities = [MiningCapability(self, node) for node in range(n)]
        self._memo: Dict[Tuple[NodeId, Topic], VrfOutput] = {}
        # Verification is pure (same ticket -> same verdict); memoize so
        # certificates re-checked by every recipient cost one proof check.
        self._verified: Dict[Ticket, bool] = {}

    def capability_for(self, node_id: NodeId) -> MiningCapability:
        return self._capabilities[node_id]

    def evaluate(self, node_id: NodeId, topic: Topic) -> VrfOutput:
        """Memoized VRF evaluation (a VRF is a function of the topic)."""
        key = (node_id, topic)
        if key not in self._memo:
            self._memo[key] = self._keypairs[node_id].evaluate(
                topic, self._prover_rng)
        return self._memo[key]

    def _mine(self, capability: MiningCapability,
              topic: Topic) -> Optional[VrfTicket]:
        self.check_capability(capability, self._capabilities[capability.node_id])
        node_id = capability.node_id
        output = self.evaluate(node_id, topic)
        if output.beta < self.schedule.threshold(topic):
            return VrfTicket(node_id=node_id, topic=topic, output=output)
        return None

    def verify(self, ticket: Ticket) -> bool:
        if not isinstance(ticket, VrfTicket):
            return False
        if ticket in self._verified:
            return self._verified[ticket]
        verdict = self._verify_uncached(ticket)
        self._verified[ticket] = verdict
        return verdict

    def _verify_uncached(self, ticket: VrfTicket) -> bool:
        if not 0 <= ticket.node_id < self.n:
            return False
        try:
            threshold = self.schedule.threshold(ticket.topic)
        except Exception:
            return False
        if ticket.output.beta >= threshold:
            return False
        return verify_vrf(self.group, self.public_keys[ticket.node_id],
                          ticket.topic, ticket.output)

    def ticket_bits(self) -> int:
        # gamma (one group element) + beta (256 bits) + proof (3 scalars).
        element = self.group.element_bits()
        scalar = 8 * ((self.group.q.bit_length() + 7) // 8)
        return element + 256 + 3 * scalar
