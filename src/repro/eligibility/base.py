"""Eligibility interface shared by the ideal and compiled worlds.

A *topic* is the message identity the lottery runs on — a tuple such as
``("Vote", r, b)`` or ``("Propose", r, b)``.  Tying the bit ``b`` into the
topic is the paper's key insight (bit-specific eligibility, Section 3.2).

Mining is gated by a per-node :class:`MiningCapability`, mirroring the
secret key that real-world mining requires: the adversary can mine on a
node's behalf only after corrupting it and receiving the capability, which
also gives the ideal functionality the secrecy property Figure 1 promises
(no one learns an honest node's committee membership before it speaks).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.errors import EligibilityError
from repro.types import NodeId

#: A message identity for the eligibility lottery, e.g. ("Vote", 3, 1).
Topic = Tuple[Any, ...]


@dataclass(frozen=True)
class Ticket:
    """Proof of a successful mining attempt, attached to multicasts.

    Subclasses carry mode-specific payloads (a VRF output in the compiled
    world; nothing beyond bookkeeping in the ``Fmine``-hybrid world).
    """

    node_id: NodeId
    topic: Topic


class MiningCapability:
    """The right to make mining attempts as one node."""

    def __init__(self, source: "EligibilitySource", node_id: NodeId) -> None:
        self._source = source
        self.node_id = node_id

    def try_mine(self, topic: Topic) -> Optional[Ticket]:
        """Attempt the lottery for ``topic``; a ticket iff successful."""
        return self._source._mine(self, topic)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MiningCapability(node={self.node_id})"


class EligibilitySource(abc.ABC):
    """Common interface of :class:`FMine` and :class:`VrfEligibility`."""

    def capability_for(self, node_id: NodeId) -> MiningCapability:
        """Hand out a node's mining capability (setup / corruption only)."""
        raise NotImplementedError

    @abc.abstractmethod
    def _mine(self, capability: MiningCapability, topic: Topic) -> Optional[Ticket]:
        """Run the lottery for the capability's node on ``topic``."""

    @abc.abstractmethod
    def verify(self, ticket: Ticket) -> bool:
        """Publicly verify a ticket; must never raise on malformed input."""

    @abc.abstractmethod
    def ticket_bits(self) -> int:
        """Nominal serialized size of one ticket, for accounting."""

    def check_capability(self, capability: MiningCapability,
                         expected: MiningCapability) -> None:
        if capability is not expected:
            raise EligibilityError(
                f"counterfeit mining capability for node {capability.node_id}")
