"""Per-sweep shared eligibility-lottery cache.

``Fmine`` coins are a deterministic function of ``(seed, node, topic)``
and the topic's success probability (:meth:`FMine._flip` derives a
dedicated RNG stream per ``(seed, "fmine", node, topic)``).  Two protocol
instances built with the same master seed and difficulty schedule
therefore draw *bit-identical* coins — yet each instance recomputes them
from scratch.  A scenario sweep multiplies that waste: an adversary grid
runs the same ``(n, λ, seed)`` lottery once per adversary, and a
resilience sweep once per corruption fraction.

:class:`SharedLotteryCache` memoizes the coin flips across instances.
The cache key covers **everything the flip reads** — the fully derived
seed string (master seed, node, topic) *and* the topic's success
probability — so cells with different ``λ`` or ``n`` (hence different
difficulty) can never alias, and a cache hit is observationally identical
to recomputation.  Only the ideal-world (``fmine``) lottery is shared:
real VRF *evaluations* are already memoized per instance, but their NIZK
proofs consume prover randomness in call order, so sharing them across
instances would change proof bytes (not verdicts) and break the
byte-identical-results contract.

Caches are registered in a process-local table keyed by a ``token`` and
pickle down to that token (see :meth:`SharedLotteryCache.__reduce__`):
shipping a cache to a worker process rebinds it to the *worker's* cache
for the same sweep, so trials that land in the same worker share coins
while processes never share mutable state.  For that to matter the
workers must outlive a single cell — which is why
:func:`~repro.harness.scenarios.run_sweep` keeps **one process pool for
the whole sweep** and lends it to every ``run_trials`` call: the
per-worker caches then accumulate coins cell over cell.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Callable, Dict, Optional, Tuple

#: Process-local registry: token -> cache.  Worker processes populate
#: their own copy lazily the first time a pickled cache arrives.
_PROCESS_CACHES: Dict[str, "SharedLotteryCache"] = {}

_TOKENS = itertools.count()

#: A fully-derived flip identity: (derived seed string, success probability).
CoinKey = Tuple[str, float]


def shared_cache(token: str) -> "SharedLotteryCache":
    """The process-local cache for ``token``, created on first use."""
    cache = _PROCESS_CACHES.get(token)
    if cache is None:
        cache = SharedLotteryCache(token=token)
    return cache


def release_cache(token: str) -> None:
    """Drop a cache from the process-local registry (sweep teardown)."""
    _PROCESS_CACHES.pop(token, None)


class SharedLotteryCache:
    """Memo of F-mine Bernoulli coins shared across protocol instances."""

    def __init__(self, token: Optional[str] = None) -> None:
        if token is None:
            token = f"lottery-{os.getpid()}-{next(_TOKENS)}"
        self.token = token
        self._coins: Dict[CoinKey, bool] = {}
        self.hits = 0
        self.misses = 0
        _PROCESS_CACHES[self.token] = self

    def coin(self, key: CoinKey, compute: Callable[[], bool]) -> bool:
        """The memoized coin for ``key``, computing it on first sight."""
        try:
            value = self._coins[key]
        except KeyError:
            self.misses += 1
            value = self._coins[key] = compute()
            return value
        self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._coins)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss counters for this process's view of the cache."""
        return {"token": self.token, "coins": len(self._coins),
                "hits": self.hits, "misses": self.misses}

    def __reduce__(self):
        # Pickle down to the token: the receiving process rebinds to its
        # own cache for the same sweep (coins are deterministic, so any
        # process's cache holds the same values for the same keys).
        return (shared_cache, (self.token,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedLotteryCache(token={self.token!r}, "
                f"coins={len(self._coins)}, hits={self.hits}, "
                f"misses={self.misses})")
