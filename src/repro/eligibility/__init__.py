"""Eligibility election: who may multicast which message.

The heart of the paper's upper bound is *vote-specific eligibility*
(Section 3.2): a node may send message topic ``m`` — e.g. ``(Vote, r, b)``
— only if a private lottery on ``m`` succeeds, and anyone can verify a
winner's ticket.  Crucially the lottery is **bit-specific**: eligibility to
vote for ``b`` in round ``r`` is independent of eligibility for ``1 - b``,
which is what defeats the adaptive-corruption equivocation attack
(Remark, Section 3.3).

Two implementations share the :class:`~repro.eligibility.base.EligibilitySource`
interface:

- :class:`~repro.eligibility.fmine.FMine` — the ideal functionality of
  Figure 1 (the ``Fmine``-hybrid world of Appendix C);
- :class:`~repro.eligibility.vrf_eligibility.VrfEligibility` — the
  compiled real world of Appendix D, with genuine VRF evaluations and
  proofs.
"""

from repro.eligibility.base import EligibilitySource, Ticket
from repro.eligibility.difficulty import DifficultySchedule, Topic
from repro.eligibility.fmine import FMine, FMineEligibility
from repro.eligibility.lottery_cache import SharedLotteryCache
from repro.eligibility.vrf_eligibility import VrfEligibility

__all__ = [
    "EligibilitySource",
    "Ticket",
    "DifficultySchedule",
    "Topic",
    "FMine",
    "FMineEligibility",
    "SharedLotteryCache",
    "VrfEligibility",
]
