"""Difficulty parameters ``D`` and ``D0`` (Sections 3.2 and C.2).

The paper uses two thresholds:

- ``D`` — committee difficulty: each Status / Vote / Commit / Terminate /
  ACK attempt succeeds with probability ``λ/n`` so that committees have
  expected size ``λ = ω(log κ)``;
- ``D0`` — leader difficulty: each ``(Propose, r, b)`` attempt succeeds
  with probability ``1/2n`` so that, with 2n possible attempts per
  iteration, a *unique* proposer appears with constant probability
  (Lemma 12's ``≥ 1/e``, halved for honesty).

:class:`DifficultySchedule` maps a topic to its success probability and to
the integer threshold used when comparing real VRF outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet

from repro.crypto.vrf import VRF_OUTPUT_BITS
from repro.eligibility.base import Topic
from repro.errors import ConfigurationError
from repro.types import SecurityParameters

#: Topic kinds gated at committee difficulty λ/n.
COMMITTEE_KINDS: FrozenSet[str] = frozenset(
    {"Status", "Vote", "Commit", "Terminate", "ACK"})
#: Topic kinds gated at leader difficulty 1/2n.
LEADER_KINDS: FrozenSet[str] = frozenset({"Propose"})


@dataclass(frozen=True)
class DifficultySchedule:
    """Success probability per topic kind."""

    committee_probability: float
    leader_probability: float
    committee_kinds: FrozenSet[str] = field(default=COMMITTEE_KINDS)
    leader_kinds: FrozenSet[str] = field(default=LEADER_KINDS)

    def __post_init__(self) -> None:
        for probability in (self.committee_probability, self.leader_probability):
            if not 0.0 < probability <= 1.0:
                raise ConfigurationError(
                    f"success probability {probability} outside (0, 1]")

    @classmethod
    def for_parameters(cls, params: SecurityParameters, n: int) -> "DifficultySchedule":
        """The paper's choices: ``λ/n`` for committees, ``1/2n`` for leaders."""
        return cls(
            committee_probability=params.committee_probability(n),
            leader_probability=params.leader_probability(n),
        )

    @classmethod
    def always(cls) -> "DifficultySchedule":
        """Degenerate schedule where everyone is always eligible.

        Running a subquadratic protocol under this schedule recovers its
        quadratic warmup counterpart; used in tests and ablations.
        """
        return cls(committee_probability=1.0, leader_probability=1.0)

    def probability(self, topic: Topic) -> float:
        """Success probability for a topic; raises on unknown kinds."""
        if not topic or not isinstance(topic[0], str):
            raise ConfigurationError(f"malformed topic {topic!r}")
        kind = topic[0]
        if kind in self.committee_kinds:
            return self.committee_probability
        if kind in self.leader_kinds:
            return self.leader_probability
        raise ConfigurationError(f"no difficulty defined for topic kind {kind!r}")

    def threshold(self, topic: Topic) -> int:
        """Integer threshold ``D_p``: success iff VRF output ``< D_p``."""
        return int(self.probability(topic) * (1 << VRF_OUTPUT_BITS))
