"""Canonical encoding-size accounting and canonical byte encoding.

The paper's complexity definitions (Definitions 6 and 7) count *bits*
exchanged or multicast by honest nodes.  To measure them we need a
deterministic size model for every message object the protocols send.  We
do not actually ship bytes between simulated nodes (objects are passed by
reference), but :func:`encoded_size_bits` computes the size a reasonable
wire encoding would have, and :func:`canonical_bytes` produces a
deterministic byte string used wherever cryptography needs to hash a
structured message (VRF inputs, signing, Fiat–Shamir transcripts).

Size model
----------
- ``None`` / ``bool``: 8 bits (a tag byte).
- ``int``: 64 bits for values fitting in a machine word, otherwise the
  minimal byte length (covers group elements and hash outputs carried as
  integers).
- ``bytes`` / ``str``: 32-bit length prefix + contents.
- ``float``: 64 bits.
- sequences / sets / dicts: 32-bit length prefix + elements.
- dataclasses: 32-bit type tag + fields in declaration order.
- any object exposing ``encoded_size_bits() -> int`` and/or
  ``canonical_bytes() -> bytes``: delegated to the object.
"""

from __future__ import annotations

import dataclasses
from typing import Any

_WORD_BITS = 64
_LEN_PREFIX_BITS = 32
_TAG_BITS = 32

# Identity-keyed memo for dataclass sizes: the same (immutable) message
# object is re-measured many times — one certificate object rides along
# in every envelope that attaches it — and sizing is pure, so each
# object's size is computed once.  Entries pin their object, so a
# recycled id can never alias; deliberately NOT content-keyed, because
# dataclass equality is coarser than the size model (a bool field
# compares equal to an int field but encodes 8 bits, not 64).  Bounded so
# pathological workloads cannot grow it without limit; a clear only costs
# recomputation.
_SIZE_BY_ID: dict = {}
_SIZE_CACHE_LIMIT = 1 << 20


def clear_size_cache() -> None:
    """Release every object pinned by the size memo.

    Sizing is pure, so clearing only costs recomputation.  The engine
    calls this when an execution finishes: message objects never recur
    across executions, so keeping them pinned would grow resident memory
    with every run in a long-lived process.
    """
    _SIZE_BY_ID.clear()


def _int_size_bits(value: int) -> int:
    """Size of an integer: one word, or minimal bytes for big integers."""
    if -(2**63) <= value < 2**63:
        return _WORD_BITS
    return 8 * ((value.bit_length() + 7) // 8)


def encoded_size_bits(obj: Any) -> int:
    """Return the canonical encoded size of ``obj`` in bits.

    Raises ``TypeError`` for objects with no defined size model so that
    accounting bugs fail loudly instead of silently under-counting.
    """
    if obj is None or isinstance(obj, bool):
        return 8
    if isinstance(obj, int):
        return _int_size_bits(obj)
    if isinstance(obj, float):
        return _WORD_BITS
    if isinstance(obj, (bytes, bytearray)):
        return _LEN_PREFIX_BITS + 8 * len(obj)
    if isinstance(obj, str):
        return _LEN_PREFIX_BITS + 8 * len(obj.encode("utf-8"))
    size_method = getattr(obj, "encoded_size_bits", None)
    if callable(size_method):
        return size_method()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        entry = _SIZE_BY_ID.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
        size = _TAG_BITS + sum(
            encoded_size_bits(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        )
        if len(_SIZE_BY_ID) >= _SIZE_CACHE_LIMIT:
            _SIZE_BY_ID.clear()
        _SIZE_BY_ID[id(obj)] = (obj, size)
        return size
    if isinstance(obj, (tuple, list)):
        return _LEN_PREFIX_BITS + sum(encoded_size_bits(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        return _LEN_PREFIX_BITS + sum(encoded_size_bits(item) for item in obj)
    if isinstance(obj, dict):
        return _LEN_PREFIX_BITS + sum(
            encoded_size_bits(key) + encoded_size_bits(value)
            for key, value in obj.items()
        )
    raise TypeError(f"no size model for object of type {type(obj).__name__}")


# Per-class memo of dataclass field names, so the hot tagging path skips
# the (surprisingly costly) is_dataclass/fields introspection per call.
_TYPE_TAG_FIELDS: dict = {}

# Leaf classes tagged inline (one tuple, no recursive call) on hot paths.
_SCALAR_TAG_CLASSES = frozenset({int, bool, float, str, bytes, type(None)})


def type_tagged(value: Any) -> Any:
    """A dict-key wrapper distinguishing values that compare equal but
    encode differently under :func:`canonical_bytes`.

    ``True == 1 == 1.0`` as dict keys, yet their canonical encodings
    differ — so a cache keyed on raw values could return a verdict
    computed for a different byte string.  Tagging every element with its
    class restores the distinction; tuples, frozensets, and dataclasses
    (message/auth objects whose fields feed hashes) are tagged
    recursively.
    """
    cls = value.__class__
    if cls in _SCALAR_TAG_CLASSES:
        return (value, cls)
    if cls is tuple:
        return tuple([
            (item, item.__class__)
            if item.__class__ in _SCALAR_TAG_CLASSES else type_tagged(item)
            for item in value])
    if cls is frozenset:
        # Hashable container whose elements feed canonical_bytes: must be
        # recursed, or frozenset({True}) and frozenset({1}) would alias.
        # (Mutable sets/dicts need no handling — the fallback wrapper is
        # then unhashable, which callers treat as "do not cache".)
        return (cls, frozenset(type_tagged(item) for item in value))
    names = _TYPE_TAG_FIELDS.get(cls)
    if names is None:
        names = (tuple(field.name for field in dataclasses.fields(cls))
                 if dataclasses.is_dataclass(cls) else ())
        _TYPE_TAG_FIELDS[cls] = names
    if names:
        return (cls,) + tuple([
            type_tagged(getattr(value, name)) for name in names])
    return (value, cls)


def _canonical_int(value: int) -> bytes:
    length = max(1, (value.bit_length() + 7) // 8)
    sign = b"-" if value < 0 else b"+"
    return sign + abs(value).to_bytes(length, "big")


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode ``obj`` as bytes for hashing.

    The encoding is injective over the types it supports: every value is
    framed with a type byte and a length, so distinct structures cannot
    collide.  It is *not* meant to be a wire format — only a stable input
    for hash functions.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        body = _canonical_int(obj)
        return b"I" + len(body).to_bytes(4, "big") + body
    if isinstance(obj, float):
        body = repr(obj).encode("ascii")
        return b"F" + len(body).to_bytes(4, "big") + body
    if isinstance(obj, (bytes, bytearray)):
        return b"Y" + len(obj).to_bytes(4, "big") + bytes(obj)
    if isinstance(obj, str):
        body = obj.encode("utf-8")
        return b"S" + len(body).to_bytes(4, "big") + body
    bytes_method = getattr(obj, "canonical_bytes", None)
    if callable(bytes_method):
        body = bytes_method()
        return b"O" + len(body).to_bytes(4, "big") + body
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = type(obj).__name__.encode("ascii")
        parts = [canonical_bytes(getattr(obj, field.name))
                 for field in dataclasses.fields(obj)]
        body = b"".join(parts)
        return (b"D" + len(tag).to_bytes(2, "big") + tag
                + len(parts).to_bytes(4, "big") + body)
    if isinstance(obj, (tuple, list)):
        parts = [canonical_bytes(item) for item in obj]
        return b"T" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        return b"E" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(obj, dict):
        parts = sorted(
            canonical_bytes(key) + canonical_bytes(value)
            for key, value in obj.items()
        )
        return b"M" + len(parts).to_bytes(4, "big") + b"".join(parts)
    raise TypeError(f"no canonical encoding for type {type(obj).__name__}")
