"""Canonical encoding-size accounting and canonical byte encoding.

The paper's complexity definitions (Definitions 6 and 7) count *bits*
exchanged or multicast by honest nodes.  To measure them we need a
deterministic size model for every message object the protocols send.  We
do not actually ship bytes between simulated nodes (objects are passed by
reference), but :func:`encoded_size_bits` computes the size a reasonable
wire encoding would have, and :func:`canonical_bytes` produces a
deterministic byte string used wherever cryptography needs to hash a
structured message (VRF inputs, signing, Fiat–Shamir transcripts).

Size model
----------
- ``None`` / ``bool``: 8 bits (a tag byte).
- ``int``: 64 bits for values fitting in a machine word, otherwise the
  minimal byte length (covers group elements and hash outputs carried as
  integers).
- ``bytes`` / ``str``: 32-bit length prefix + contents.
- ``float``: 64 bits.
- sequences / sets / dicts: 32-bit length prefix + elements.
- dataclasses: 32-bit type tag + fields in declaration order.
- any object exposing ``encoded_size_bits() -> int`` and/or
  ``canonical_bytes() -> bytes``: delegated to the object.

Compiled sizers
---------------
Size accounting sits on the metrics hot path — every staged envelope is
measured — so :func:`encoded_size_bits` dispatches on the *exact* class
of the object through :data:`_SIZERS`, a table of per-class sizer
functions generated on first sight.  A dataclass gets a closure over its
field names (no per-call ``dataclasses.fields`` introspection, no
``isinstance`` ladder), scalars get leaf sizers.  The ladder below
(:func:`_resolve_sizer`) is consulted once per class and mirrors the
historical ``isinstance`` dispatch order exactly, so subclass behavior
(``bool`` before ``int``, delegation before dataclass) is unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict

_WORD_BITS = 64
_LEN_PREFIX_BITS = 32
_TAG_BITS = 32

# Identity-keyed memo for dataclass sizes: the same (immutable) message
# object is re-measured many times — one certificate object rides along
# in every envelope that attaches it — and sizing is pure, so each
# object's size is computed once.  Entries pin their object, so a
# recycled id can never alias; deliberately NOT content-keyed, because
# dataclass equality is coarser than the size model (a bool field
# compares equal to an int field but encodes 8 bits, not 64).
#
# Eviction is *generational*: when the young table fills, it becomes the
# old generation (dropping the previous one) and a fresh young table
# starts.  Lookups consult young then old, promoting old hits — so
# hitting the limit mid-trial retires only entries that went a full
# generation unused, instead of wiping the whole memo and triggering a
# thundering recompute of every live message object.
_SIZE_BY_ID: dict = {}
_SIZE_BY_ID_OLD: dict = {}
_SIZE_CACHE_LIMIT = 1 << 20


def clear_size_cache() -> None:
    """Release every object pinned by the serialization-layer memos.

    Covers the size memo (both generations), the type-tag memo, and the
    payload intern arena.  All three are pure caches, so clearing only
    costs recomputation.  The engine calls this when an execution
    finishes: message objects never recur across executions, so keeping
    them pinned would grow resident memory with every run in a
    long-lived process.
    """
    _SIZE_BY_ID.clear()
    _SIZE_BY_ID_OLD.clear()
    _TAG_BY_ID.clear()
    _TAG_BY_ID_OLD.clear()
    _INTERN_REPS.clear()


def _int_size_bits(value: int) -> int:
    """Size of an integer: one word, or minimal bytes for big integers."""
    if -(2**63) <= value < 2**63:
        return _WORD_BITS
    return 8 * ((value.bit_length() + 7) // 8)


# -- compiled per-class sizers -----------------------------------------------

#: Exact class -> sizer function.  Populated lazily by _resolve_sizer.
_SIZERS: Dict[type, Callable[[Any], int]] = {}


def _size_tag_byte(obj: Any) -> int:
    return 8


def _size_float(obj: Any) -> int:
    return _WORD_BITS


def _size_bytes(obj: Any) -> int:
    return _LEN_PREFIX_BITS + 8 * len(obj)


def _size_str(obj: Any) -> int:
    return _LEN_PREFIX_BITS + 8 * len(obj.encode("utf-8"))


def _size_sequence(obj: Any) -> int:
    sizers = _SIZERS
    total = _LEN_PREFIX_BITS
    for item in obj:
        sizer = sizers.get(item.__class__)
        total += sizer(item) if sizer is not None else encoded_size_bits(item)
    return total


def _size_dict(obj: Any) -> int:
    total = _LEN_PREFIX_BITS
    for key, value in obj.items():
        total += encoded_size_bits(key) + encoded_size_bits(value)
    return total


def _size_delegated(obj: Any) -> int:
    return obj.encoded_size_bits()


def _remember_size(obj: Any, size: int) -> None:
    """Insert into the young generation, rotating generations when full."""
    global _SIZE_BY_ID, _SIZE_BY_ID_OLD
    if len(_SIZE_BY_ID) >= _SIZE_CACHE_LIMIT:
        _SIZE_BY_ID_OLD = _SIZE_BY_ID
        _SIZE_BY_ID = {}
    _SIZE_BY_ID[id(obj)] = (obj, size)


def _make_dataclass_sizer(cls: type) -> Callable[[Any], int]:
    """A sizer closure over the class's field names: tag + field sizes,
    memoized by object identity through the generational tables."""
    names = tuple(field.name for field in dataclasses.fields(cls))

    def sizer(obj: Any) -> int:
        key = id(obj)
        entry = _SIZE_BY_ID.get(key)
        if entry is None:
            entry = _SIZE_BY_ID_OLD.get(key)
            if entry is not None and entry[0] is obj:
                _SIZE_BY_ID[key] = entry  # promote: still hot
        if entry is not None and entry[0] is obj:
            return entry[1]
        sizers = _SIZERS
        size = _TAG_BITS
        for name in names:
            value = getattr(obj, name)
            child = sizers.get(value.__class__)
            size += child(value) if child is not None \
                else encoded_size_bits(value)
        _remember_size(obj, size)
        return size

    return sizer


def _resolve_sizer(cls: type) -> Callable[[Any], int]:
    """Classify ``cls`` once (same order as the historical ``isinstance``
    ladder), register and return its sizer.

    Raises ``TypeError`` for classes with no defined size model so that
    accounting bugs fail loudly instead of silently under-counting.
    """
    if cls is type(None) or issubclass(cls, bool):
        sizer = _size_tag_byte
    elif issubclass(cls, int):
        sizer = _int_size_bits
    elif issubclass(cls, float):
        sizer = _size_float
    elif issubclass(cls, (bytes, bytearray)):
        sizer = _size_bytes
    elif issubclass(cls, str):
        sizer = _size_str
    elif callable(getattr(cls, "encoded_size_bits", None)):
        sizer = _size_delegated
    elif dataclasses.is_dataclass(cls):
        sizer = _make_dataclass_sizer(cls)
    elif issubclass(cls, (tuple, list, set, frozenset)):
        sizer = _size_sequence
    elif issubclass(cls, dict):
        sizer = _size_dict
    else:
        raise TypeError(f"no size model for object of type {cls.__name__}")
    _SIZERS[cls] = sizer
    return sizer


def encoded_size_bits(obj: Any) -> int:
    """Return the canonical encoded size of ``obj`` in bits.

    Raises ``TypeError`` for objects with no defined size model so that
    accounting bugs fail loudly instead of silently under-counting.
    """
    sizer = _SIZERS.get(obj.__class__)
    if sizer is None:
        # Instance-level ``encoded_size_bits`` attributes (not visible on
        # the class) keep the historical delegation behavior.
        size_method = getattr(obj, "encoded_size_bits", None)
        if callable(size_method) and not isinstance(obj, type):
            return size_method()
        sizer = _resolve_sizer(obj.__class__)
    return sizer(obj)


# Per-class memo of dataclass field names, so the hot tagging path skips
# the (surprisingly costly) is_dataclass/fields introspection per call.
_TYPE_TAG_FIELDS: dict = {}

# Leaf classes tagged inline (one tuple, no recursive call) on hot paths.
_SCALAR_TAG_CLASSES = frozenset({int, bool, float, str, bytes, type(None)})

# Identity-keyed memo for *frozen* dataclass tags: the same auth or
# certificate object is tagged by every recipient of its message, and a
# frozen dataclass's tag cannot change, so it is built once.  Entries pin
# their object (no id aliasing); generational eviction as for sizes.
# Mutable dataclasses are never memoized — their content can change
# between calls.
_TAG_BY_ID: dict = {}
_TAG_BY_ID_OLD: dict = {}

# Classes whose instances may be tag-memoized (frozen dataclasses).
_TAG_MEMO_CLASSES: set = set()


def type_tagged(value: Any) -> Any:
    """A dict-key wrapper distinguishing values that compare equal but
    encode differently under :func:`canonical_bytes`.

    ``True == 1 == 1.0`` as dict keys, yet their canonical encodings
    differ — so a cache keyed on raw values could return a verdict
    computed for a different byte string.  Tagging every element with its
    class restores the distinction; tuples, frozensets, and dataclasses
    (message/auth objects whose fields feed hashes) are tagged
    recursively.
    """
    cls = value.__class__
    if cls in _SCALAR_TAG_CLASSES:
        return (value, cls)
    if cls is tuple:
        return tuple([
            (item, item.__class__)
            if item.__class__ in _SCALAR_TAG_CLASSES else type_tagged(item)
            for item in value])
    if cls is frozenset:
        # Hashable container whose elements feed canonical_bytes: must be
        # recursed, or frozenset({True}) and frozenset({1}) would alias.
        # (Mutable sets/dicts need no handling — the fallback wrapper is
        # then unhashable, which callers treat as "do not cache".)
        return (cls, frozenset(type_tagged(item) for item in value))
    names = _TYPE_TAG_FIELDS.get(cls)
    if names is None:
        if dataclasses.is_dataclass(cls):
            names = tuple(field.name for field in dataclasses.fields(cls))
            if cls.__dataclass_params__.frozen:
                _TAG_MEMO_CLASSES.add(cls)
        else:
            names = ()
        _TYPE_TAG_FIELDS[cls] = names
    if names:
        if cls in _TAG_MEMO_CLASSES:
            key = id(value)
            entry = _TAG_BY_ID.get(key)
            if entry is None:
                entry = _TAG_BY_ID_OLD.get(key)
                if entry is not None and entry[0] is value:
                    _TAG_BY_ID[key] = entry
            if entry is not None and entry[0] is value:
                return entry[1]
            tag = (cls,) + tuple([
                type_tagged(getattr(value, name)) for name in names])
            _remember_tag(value, tag)
            return tag
        return (cls,) + tuple([
            type_tagged(getattr(value, name)) for name in names])
    return (value, cls)


def _remember_tag(obj: Any, tag: Any) -> None:
    global _TAG_BY_ID, _TAG_BY_ID_OLD
    if len(_TAG_BY_ID) >= _SIZE_CACHE_LIMIT:
        _TAG_BY_ID_OLD = _TAG_BY_ID
        _TAG_BY_ID = {}
    _TAG_BY_ID[id(obj)] = (obj, tag)


# -- payload interning --------------------------------------------------------

# Arena of canonical payload representatives, keyed by shallow field
# identity (see intern_payload).  Cleared per execution by
# clear_size_cache.
_INTERN_REPS: dict = {}

#: Class -> field-name tuple for frozen dataclasses, or None for classes
#: intern_payload must pass through (mutable dataclasses, non-dataclasses).
_INTERN_FIELDS: Dict[type, Any] = {}


def _intern_field_key(value: Any) -> Any:
    """One field's contribution to an intern key.

    Scalars are tagged by (value, class) — ``True`` must not alias ``1``.
    Everything else is keyed by *identity*, not content: protocols wrap
    the same shared sub-objects (auth tickets, interned votes) over and
    over, so identity hits cover the repetition that matters without any
    deep content walk — and identity keys can never alias, because an
    arena entry keeps its key objects alive (two simultaneously live
    objects cannot share an id), which also makes the scheme immune to
    in-place mutation of non-scalar fields.  Tuples (vote quorums,
    commit lists) are keyed element-wise so that tuples *of* shared
    objects still match.
    """
    cls = value.__class__
    if cls in _SCALAR_TAG_CLASSES:
        return (value, cls)
    if cls is tuple:
        return (tuple, tuple([_intern_field_key(item) for item in value]))
    return (cls, id(value))


def intern_by_key(key: Any, factory: Callable[[], Any]) -> Any:
    """Arena lookup under a caller-built key; build via ``factory`` on miss.

    For call sites that can name the object they are *about* to build
    (e.g. a certificate from an ordered vote quorum) more cheaply than
    building it: an arena hit skips construction entirely.  The caller
    must guarantee (a) equal keys imply observably substitutable objects
    and (b) any ``id()`` appearing in the key belongs to an object the
    built representative keeps alive — that pin is what makes identity
    keys alias-free (see :func:`_intern_field_key`).
    """
    rep = _INTERN_REPS.get(key)
    if rep is None:
        rep = factory()
        if len(_INTERN_REPS) >= _SIZE_CACHE_LIMIT:
            _INTERN_REPS.clear()
        _INTERN_REPS[key] = rep
    return rep


def intern_payload(obj: Any) -> Any:
    """Return the canonical representative of an equal payload.

    Protocols assemble the *same* sub-objects over and over: every node
    builds its own certificate from the (shared) votes it saw, and every
    terminating node re-strips the same commit quorum — O(n) content-equal
    copies of O(n)-sized structures.  Interning collapses them to one
    representative object, so every identity-keyed memo downstream (size
    accounting, verification fronts, per-node certificate caches) hits
    for all of them.

    Only frozen dataclasses are interned, and a representative is only
    substituted when the candidate's fields are scalar-equal or
    *identical* (see :func:`_intern_field_key`) — the representative is
    then observably indistinguishable from the fresh copy under every
    downstream predicate (sizing, canonical bytes, signature and
    eligibility checks are pure functions of content).  Anything else is
    returned unchanged: interning is an optimization, never a
    requirement.
    """
    cls = obj.__class__
    names = _INTERN_FIELDS.get(cls)
    if names is None:
        if cls not in _INTERN_FIELDS:
            if (dataclasses.is_dataclass(cls)
                    and cls.__dataclass_params__.frozen):
                names = tuple(f.name for f in dataclasses.fields(cls))
            _INTERN_FIELDS[cls] = names
        if names is None:
            return obj
    key = (cls,) + tuple([_intern_field_key(getattr(obj, name))
                          for name in names])
    rep = _INTERN_REPS.get(key)
    if rep is None:
        if len(_INTERN_REPS) >= _SIZE_CACHE_LIMIT:
            _INTERN_REPS.clear()
        _INTERN_REPS[key] = obj
        return obj
    return rep


def _canonical_int(value: int) -> bytes:
    length = max(1, (value.bit_length() + 7) // 8)
    sign = b"-" if value < 0 else b"+"
    return sign + abs(value).to_bytes(length, "big")


def canonical_bytes(obj: Any) -> bytes:
    """Deterministically encode ``obj`` as bytes for hashing.

    The encoding is injective over the types it supports: every value is
    framed with a type byte and a length, so distinct structures cannot
    collide.  It is *not* meant to be a wire format — only a stable input
    for hash functions.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        body = _canonical_int(obj)
        return b"I" + len(body).to_bytes(4, "big") + body
    if isinstance(obj, float):
        body = repr(obj).encode("ascii")
        return b"F" + len(body).to_bytes(4, "big") + body
    if isinstance(obj, (bytes, bytearray)):
        return b"Y" + len(obj).to_bytes(4, "big") + bytes(obj)
    if isinstance(obj, str):
        body = obj.encode("utf-8")
        return b"S" + len(body).to_bytes(4, "big") + body
    bytes_method = getattr(obj, "canonical_bytes", None)
    if callable(bytes_method):
        body = bytes_method()
        return b"O" + len(body).to_bytes(4, "big") + body
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        tag = type(obj).__name__.encode("ascii")
        parts = [canonical_bytes(getattr(obj, field.name))
                 for field in dataclasses.fields(obj)]
        body = b"".join(parts)
        return (b"D" + len(tag).to_bytes(2, "big") + tag
                + len(parts).to_bytes(4, "big") + body)
    if isinstance(obj, (tuple, list)):
        parts = [canonical_bytes(item) for item in obj]
        return b"T" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        return b"E" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if isinstance(obj, dict):
        parts = sorted(
            canonical_bytes(key) + canonical_bytes(value)
            for key, value in obj.items()
        )
        return b"M" + len(parts).to_bytes(4, "big") + b"".join(parts)
    raise TypeError(f"no canonical encoding for type {type(obj).__name__}")
