"""Command-line interface: ``python -m repro <command>``.

Commands (the parser epilog enumerates the live registries — the
authoritative lists of experiments, sweeps, and protocols — so nothing
here goes stale when a registry grows)

``experiment`` — run one of the experiment tables::

    python -m repro experiment E3

``sweep`` — run a named scenario-matrix sweep (``--list`` to see them),
optionally fanning trials across worker processes, exporting CSV/JSON
artifacts (see ``docs/SCENARIOS.md``), and recording cells into a
persistent experiment store for incremental re-runs, ``--resume`` after
interruption, and ``--shard K/M`` multi-invocation fan-out (see
``docs/RESULTS.md``)::

    python -m repro sweep comm-vs-n --workers 4 --out-dir artifacts
    python -m repro sweep comm-vs-n --store .repro-store
    python -m repro sweep comm-vs-n --resume
    python -m repro sweep comm-vs-n --store shared --shard 2/4

``report`` — render the results book (provenance header + one table
section per recorded sweep, with deltas against a previous snapshot)
from an experiment store (see ``docs/RESULTS.md``)::

    python -m repro report --store .repro-store
    python -m repro report --format html --baseline old/book.json

``run`` — execute one protocol instance and print its result summary,
optionally under named partial-synchrony network conditions and a
per-link latency topology (see ``docs/NETWORK.md``); the GST-aware
early-stopping variants (see ``docs/PROTOCOLS.md``) additionally
report the rounds saved against their budget::

    python -m repro run --protocol subquadratic -n 300 -f 90 \\
        --adversary crash --input mixed --seed 7 --network wan
    python -m repro run --protocol phase-king-early-stop -n 40 -f 13 \\
        --network lan --topology clustered

``serve`` — run the experiment service: a long-running HTTP API over a
shared (by default SQLite/WAL, concurrency-safe) experiment store, with
a persistent worker pool draining submitted sweeps cell by cell and the
results book served as live HTML (see ``docs/RESULTS.md``)::

    python -m repro serve --store repro.sqlite --workers 4 --port 8765

``submit`` / ``status`` — the matching client: submit a sweep over HTTP
(optionally waiting and streaming per-cell progress), and inspect job
records::

    python -m repro submit smoke --wait
    python -m repro submit comm-vs-n --network lan --no-wait
    python -m repro status                      # newest jobs
    python -m repro status 20260807T120000Z-ab12cd34

``params`` — concrete parameter selection (the λ = ω(log κ) inversion)::

    python -m repro params -n 2000 --corrupt 0.3 --target 1e-9
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.adversaries import (
    ActualFaultsAdversary,
    AdaptiveSpeakerAdversary,
    CrashAdversary,
    LeaderKillerAdversary,
    StaticEquivocationAdversary,
    ViewSplitAdversary,
)
from repro.analysis import choose_lambda
from repro.analysis.parameters import protocol_failure_probability
from repro.harness import run_instance
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.scenarios import PROTOCOLS as PROTOCOL_REGISTRY
from repro.errors import ConfigurationError
from repro.sim.conditions import NETWORKS, TOPOLOGIES
from repro.sim.trace import summarize_transcript
from repro.types import SecurityParameters

#: ``run``-able protocols, derived from the scenario layer's registry
#: rather than hand-maintained: every per-node builder registered there
#: is automatically runnable here (sender-style broadcast builders need
#: a ``sender_input`` binding and stay sweep-only).
PROTOCOLS = {
    key: entry.builder for key, entry in PROTOCOL_REGISTRY.items()
    if entry.input_style == "per-node"
}

#: GST-aware variants whose builders take the execution's conditions
#: (to derive the trusted-round gate) and whose runs report the saving —
#: read off the registry's ``early_stopping`` flag.
EARLY_STOP_PROTOCOLS = frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.early_stopping)

#: Protocols whose builders take ``params=SecurityParameters(...)``.
_PARAMS_PROTOCOLS = frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.accepts_params)

#: Protocols whose builders take ``mode="fmine"|"vrf"`` — read off the
#: registry's ``takes_mode`` flag so an explicit ``--mode`` is never
#: silently dropped for a registry protocol that accepts it.
_MODE_PROTOCOLS = frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.takes_mode)

#: Builders that accept ``conditions=`` — the early-stop variants plus
#: the view-based leader family (whose view timers derive from Δ/GST).
_CONDITIONS_PROTOCOLS = EARLY_STOP_PROTOCOLS | frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.takes_conditions)

#: View-based leader protocols: ``run`` reports the settled view and the
#: view changes burned getting there.
_VIEW_PROTOCOLS = frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.view_based)

#: Adaptive protocols (words scale with the actual fault count): ``run``
#: reports the escalation epochs and the classical word count.
_ADAPTIVE_PROTOCOLS = frozenset(
    key for key, entry in PROTOCOL_REGISTRY.items() if entry.adaptive)

ADVERSARIES = {
    "none": lambda instance: None,
    "actual-faults": lambda instance: ActualFaultsAdversary(),
    "crash": lambda instance: CrashAdversary(),
    "equivocate": StaticEquivocationAdversary,
    "speaker": AdaptiveSpeakerAdversary,
    "leader-killer": LeaderKillerAdversary,
    "view-split": ViewSplitAdversary,
}


def _epilog() -> str:
    """The command summary, regenerated from the live registries so new
    experiments/sweeps/protocols can never be silently missing (parity
    is asserted in tests/test_cli_and_trace.py)."""
    from repro.harness.sweep_library import SWEEPS

    last_experiment = max(int(name[1:]) for name in ALL_EXPERIMENTS)
    return (
        f"commands: experiment (E1..E{last_experiment} tables), "
        f"sweep (scenario-matrix sweeps: {', '.join(sorted(SWEEPS))}; "
        "see docs/SCENARIOS.md), "
        "report (results book from an experiment store; see "
        "docs/RESULTS.md), "
        "serve (the experiment service: sweeps over HTTP against a "
        "concurrency-safe store), "
        "submit/status (the service client), "
        f"run (one execution; protocols: {', '.join(sorted(PROTOCOLS))}), "
        "params (λ selection)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Communication Complexity of "
                    "Byzantine Agreement, Revisited' (PODC 2019)",
        epilog=_epilog())
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run an experiment table")
    exp.add_argument("name", choices=sorted(ALL_EXPERIMENTS),
                     help="experiment id (E1..E12)")

    sweep = sub.add_parser(
        "sweep", help="run a named scenario-matrix sweep")
    sweep.add_argument("name", nargs="?", default=None,
                       help="sweep name (omit with --list to enumerate)")
    sweep.add_argument("--list", action="store_true", dest="list_sweeps",
                       help="list the available sweeps and exit")
    sweep.add_argument("--workers", type=int, default=1,
                       help="fan each cell's trials across N processes")
    sweep.add_argument("--no-shared-lottery", action="store_true",
                       help="disable the per-sweep eligibility-lottery "
                            "cache (results are identical either way)")
    sweep.add_argument("--out-dir", default=None,
                       help="write <name>.csv and <name>.json artifacts "
                            "into this directory")
    sweep.add_argument("--network", choices=sorted(NETWORKS), default=None,
                       help="force these network conditions onto every "
                            "scenario of the sweep (overrides any "
                            "network bindings; see docs/NETWORK.md)")
    sweep.add_argument("--topology", choices=sorted(TOPOLOGIES),
                       default=None,
                       help="force this per-link latency topology onto "
                            "every scenario (needs conditions with "
                            "delta > 1; see docs/NETWORK.md)")
    sweep.add_argument("--store", default=None, metavar="DIR",
                       help="record/replay cells through a persistent "
                            "experiment store at DIR: recorded cells "
                            "replay byte-identically, only new cells "
                            "compute (see docs/RESULTS.md)")
    sweep.add_argument("--resume", action="store_true",
                       help="shorthand for --store with the default "
                            "store directory (.repro-store): resume an "
                            "interrupted sweep, computing only the "
                            "missing cells")
    sweep.add_argument("--shard", default=None, metavar="K/M",
                       help="compute only every M-th cell (1-based "
                            "offset K) for coarse multi-invocation "
                            "fan-out; combine with a shared --store so "
                            "the shards union (see docs/RESULTS.md)")

    rep = sub.add_parser(
        "report", help="render a results book from an experiment store")
    rep.add_argument("--store", default=None, metavar="DIR",
                     help="experiment store to render (default: "
                          ".repro-store)")
    rep.add_argument("--out", default=None, metavar="PATH",
                     help="output document path (default: "
                          "<store>/book.md or book.html)")
    rep.add_argument("--format", choices=["md", "html"], dest="fmt",
                     default="md", help="document format")
    rep.add_argument("--baseline", default=None, metavar="JSON",
                     help="a previous book's .json snapshot; the book "
                          "gains per-sweep deltas against it")

    serve = sub.add_parser(
        "serve", help="run the experiment service (sweeps over HTTP)")
    serve.add_argument("--store", default="repro.sqlite", metavar="PATH",
                       help="experiment store to serve: *.sqlite/*.db "
                            "selects the concurrency-safe SQLite (WAL) "
                            "backend, anything else a JSON tree "
                            "(default: repro.sqlite)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; the API "
                            "is unauthenticated — do not expose it)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="persistent worker threads draining cells")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running experiment service")
    submit.add_argument("name", help="sweep name (see sweep --list)")
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    submit.add_argument("--network", choices=sorted(NETWORKS),
                        default=None,
                        help="force these network conditions onto every "
                             "scenario (as sweep --network)")
    submit.add_argument("--topology", choices=sorted(TOPOLOGIES),
                        default=None,
                        help="force this latency topology onto every "
                             "scenario (as sweep --topology)")
    submit.add_argument("--no-shared-lottery", action="store_true",
                        help="key the cells as if the shared lottery "
                             "cache were disabled (as sweep "
                             "--no-shared-lottery)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return immediately "
                             "instead of streaming progress to "
                             "completion")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="give up waiting after this long (the job "
                             "keeps running server-side)")

    status = sub.add_parser(
        "status", help="show experiment-service job status")
    status.add_argument("job", nargs="?", default=None,
                        help="job id (omit to list recent jobs)")
    status.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")

    run = sub.add_parser("run", help="run one protocol execution")
    run.add_argument("--protocol", choices=sorted(PROTOCOLS),
                     default="subquadratic")
    run.add_argument("-n", type=int, default=200, help="number of nodes")
    run.add_argument("-f", type=int, default=None,
                     help="corruption budget (default: 0.25n)")
    run.add_argument("--adversary", choices=sorted(ADVERSARIES),
                     default="none")
    run.add_argument("--actual", type=int, default=None,
                     help="actual fault count k for the actual-faults "
                          "adversary (default: the whole budget f)")
    run.add_argument("--input", choices=["zeros", "ones", "mixed"],
                     default="mixed")
    run.add_argument("--lam", type=int, default=30,
                     help="expected committee size λ")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--mode", choices=["fmine", "vrf"], default="fmine")
    run.add_argument("--network", choices=sorted(NETWORKS), default="perfect",
                     help="named network conditions for the execution "
                          "(see docs/NETWORK.md)")
    run.add_argument("--topology", choices=sorted(TOPOLOGIES), default=None,
                     help="per-link latency topology layered onto the "
                          "network conditions (needs delta > 1; see "
                          "docs/NETWORK.md)")

    par = sub.add_parser("params", help="choose λ for a target error")
    par.add_argument("-n", type=int, required=True)
    par.add_argument("--corrupt", type=float, default=0.3,
                     help="corrupt fraction (0..0.5)")
    par.add_argument("--target", type=float, default=1e-9,
                     help="target failure probability")
    par.add_argument("--iterations", type=int, default=40)
    return parser


def _inputs_for(kind: str, n: int) -> List[int]:
    if kind == "zeros":
        return [0] * n
    if kind == "ones":
        return [1] * n
    return [i % 2 for i in range(n)]


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = ALL_EXPERIMENTS[args.name]()
    print(result.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.harness.scenarios import run_sweep
    from repro.harness.sweep_library import SWEEPS, resolve_sweep

    if args.list_sweeps:
        for name in sorted(SWEEPS):
            print(f"{name:22s} {SWEEPS[name].description}")
        return 0
    if args.name is None:
        print("sweep: name required (or --list)", file=sys.stderr)
        return 2
    try:
        sweep = resolve_sweep(args.name, network=args.network,
                              topology=args.topology)
    except ConfigurationError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    store = None
    if args.store is not None or args.resume:
        from repro.harness.store import DEFAULT_STORE_DIR, ExperimentStore
        store = ExperimentStore(args.store or DEFAULT_STORE_DIR)
    if args.shard is not None and store is None:
        # A shard alone writes partial artifacts in the full-artifact
        # format; only a shared store makes the shards union.
        print("sweep: --shard requires --store or --resume (shards "
              "union through a shared store; see docs/RESULTS.md)",
              file=sys.stderr)
        return 2
    try:
        shard = None
        if args.shard is not None:
            from repro.harness.store import parse_shard
            shard = parse_shard(args.shard)
        result = run_sweep(sweep, workers=args.workers,
                           share_lottery=not args.no_shared_lottery,
                           store=store, shard=shard)
    except ConfigurationError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    print(result.to_table().render())
    if result.lottery is not None:
        lottery = result.lottery
        # Counters are per-process: with --workers the coins are drawn
        # inside the worker processes, so the main process reads zero.
        print(f"\nshared lottery (main process): {lottery['coins']} coins, "
              f"{lottery['hits']} hits, {lottery['misses']} misses")
    if result.store_stats is not None:
        stats = result.store_stats
        line = (f"\nstore: {stats['replayed']} replayed, "
                f"{stats['computed']} computed, "
                f"{stats['skipped']} skipped")
        if store is not None:
            line += f" (salt {stats['salt']}, dir {store.root})"
        if stats["shard"] is not None:
            line += f" [shard {stats['shard']}]"
        print(line)
    if args.out_dir is not None:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        csv_path = result.to_csv(out_dir / f"{args.name}.csv")
        json_path = result.to_json(out_dir / f"{args.name}.json")
        print(f"wrote {csv_path} and {json_path}")
        stats = result.store_stats
        if stats is not None and stats["skipped"]:
            # Partial artifacts are shaped exactly like complete ones;
            # say so where the consumer will see it.
            print(f"sweep: warning: artifacts are PARTIAL — "
                  f"{stats['skipped']} cell(s) skipped by shard "
                  f"{stats['shard']}; run the remaining shards against "
                  "the same store and re-export", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.harness.report import write_book
    from repro.harness.store import DEFAULT_STORE_DIR, ExperimentStore

    store = ExperimentStore(args.store or DEFAULT_STORE_DIR)
    if not store.root.exists():
        print(f"report: no experiment store at {store.root} "
              "(run a sweep with --store/--resume first)", file=sys.stderr)
        return 2
    try:
        book, snapshot = write_book(store, out_path=args.out, fmt=args.fmt,
                                    baseline_path=args.baseline)
    except (OSError, ValueError) as error:
        # A missing/unreadable --baseline path or malformed snapshot
        # JSON (json.JSONDecodeError is a ValueError) is a usage error,
        # not a crash.
        print(f"report: {error}", file=sys.stderr)
        return 2
    sweeps = store.sweep_names()
    print(f"wrote {book} and {snapshot} "
          f"({len(sweeps)} sweep(s), {store.cell_count()} cell(s))")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.harness.service.app import serve
    from repro.harness.store import ExperimentStore

    store = ExperimentStore(args.store)
    try:
        serve(store, host=args.host, port=args.port,
              workers=args.workers, verbose=not args.quiet)
    except ConfigurationError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"serve: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    finally:
        store.close()
    return 0


def _job_line(record: dict) -> str:
    settled = record["replayed"] + record["computed"] \
        + record["failed_cells"]
    line = (f"{record['id']}  {record['state']:7s} "
            f"{record['sweep']:20s} {settled}/{record['total']} cells "
            f"({record['replayed']} replayed, {record['computed']} "
            f"computed")
    if record["failed_cells"]:
        line += f", {record['failed_cells']} FAILED"
    return line + ")"


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.harness.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job_id = client.submit(
            args.name, share_lottery=not args.no_shared_lottery,
            network=args.network, topology=args.topology)
        print(f"submitted job {job_id}")
        if args.no_wait:
            return 0

        def show(event: dict) -> None:
            print(f"  [{event['index'] + 1:3d}] {event['status']:9s} "
                  f"{event['label']}")

        record = client.wait(job_id, on_event=show,
                             max_wait=args.timeout)
    except ServiceError as error:
        print(f"submit: {error}", file=sys.stderr)
        return 2
    print(_job_line(record))
    if record["state"] == "failed":
        if record.get("error"):
            print(record["error"], file=sys.stderr)
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.harness.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job is None:
            records = client.jobs()
            if not records:
                print("no jobs recorded")
                return 0
            for record in records:
                print(_job_line(record))
            return 0
        record = client.job(args.job)
    except ServiceError as error:
        print(f"status: {error}", file=sys.stderr)
        return 2
    print(_job_line(record))
    for key in ("submitted_at", "started_at", "finished_at"):
        if record.get(key):
            print(f"  {key}: {record[key]}")
    if record.get("overrides"):
        print(f"  overrides: {record['overrides']}")
    if record.get("error"):
        print(f"  error: {record['error']}")
    return 1 if record["state"] == "failed" else 0


def _cmd_run(args: argparse.Namespace) -> int:
    n = args.n
    f = args.f if args.f is not None else int(0.25 * n)
    params = SecurityParameters(lam=args.lam, epsilon=0.1)
    builder = PROTOCOLS[args.protocol]
    conditions = NETWORKS[args.network]
    if args.topology is not None:
        import dataclasses as _dataclasses
        try:
            conditions = _dataclasses.replace(
                conditions, topology=TOPOLOGIES[args.topology])
        except ConfigurationError as error:
            print(f"run: {error}", file=sys.stderr)
            return 2
    kwargs = dict(n=n, f=f, inputs=_inputs_for(args.input, n), seed=args.seed)
    if args.protocol in _PARAMS_PROTOCOLS:
        kwargs.update(params=params)
    if args.protocol in _MODE_PROTOCOLS:
        kwargs.update(mode=args.mode)
    if args.protocol in _CONDITIONS_PROTOCOLS:
        # The GST-aware builders gate their unanimity detectors (or view
        # timers) on the conditions' trusted-send round.
        kwargs.update(conditions=conditions)
    instance = builder(**kwargs)
    if args.adversary == "actual-faults":
        adversary = ActualFaultsAdversary(actual=args.actual)
    elif args.actual is not None:
        print("run: --actual only applies to --adversary actual-faults",
              file=sys.stderr)
        return 2
    else:
        adversary = ADVERSARIES[args.adversary](instance)
    result = run_instance(instance, f, adversary, seed=args.seed,
                          conditions=conditions)
    trace = summarize_transcript(result.require_transcript())
    print(f"protocol:            {instance.name}")
    print(f"n / f:               {n} / {f}  (adversary: {args.adversary})")
    if result.network_stats is not None:
        stats = result.network_stats
        print(f"network:             {args.network} "
              f"({conditions.describe()})")
        print(f"mean copy latency:   "
              f"{stats.mean_delivery_latency:.2f} network rounds")
        print(f"peak in flight:      {stats.max_in_flight} copies")
        if stats.dropped_copies:
            print(f"dropped copies:      {stats.dropped_copies}")
    print(f"consistent:          {result.consistent()}")
    print(f"valid:               {result.agreement_valid()}")
    print(f"all decided:         {result.all_decided()}")
    print(f"rounds:              {result.rounds_executed}")
    if args.protocol in EARLY_STOP_PROTOCOLS:
        print(f"rounds saved:        {result.rounds_saved} "
              f"(budget {result.rounds_budget})")
    if args.protocol in _VIEW_PROTOCOLS:
        from repro.protocols.leader_ba import decision_view_of
        settled = decision_view_of(result)
        print(f"settled view:        {settled} "
              f"({settled - 1} view change(s))")
    if args.protocol in _ADAPTIVE_PROTOCOLS:
        from repro.protocols.adaptive_ba import escalations_of, words_of
        print(f"escalations:         {escalations_of(result)} "
              f"(actual faults {result.corruptions_used}, "
              f"{words_of(result)} words)")
    print(f"corruptions used:    {result.corruptions_used}")
    print(f"honest multicasts:   "
          f"{result.metrics.multicast_complexity_messages}")
    print(f"distinct speakers:   {trace.speaker_count}")
    print(f"multicast bits:      {result.metrics.multicast_complexity_bits}")
    print(f"classical messages:  {result.metrics.classical_message_count}")
    violated = not (result.consistent() and result.agreement_valid())
    return 1 if violated else 0


def _cmd_params(args: argparse.Namespace) -> int:
    lam = choose_lambda(args.n, args.corrupt, args.target,
                        iterations=args.iterations)
    failure = protocol_failure_probability(
        args.n, int(args.corrupt * args.n), lam, args.iterations)
    print(f"n:                  {args.n}")
    print(f"corrupt fraction:   {args.corrupt}")
    print(f"target error:       {args.target}")
    print(f"chosen λ:           {lam}")
    print(f"committee quorum:   {(lam + 1) // 2}")
    print(f"predicted failure:  {failure:.3g}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "params":
        return _cmd_params(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
