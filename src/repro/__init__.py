"""repro — reproduction of "Communication Complexity of Byzantine
Agreement, Revisited" (Abraham, Chan, Dolev, Nayak, Pass, Ren, Shi;
PODC 2019).

Public API overview
-------------------
Protocol builders (each returns a
:class:`~repro.protocols.base.ProtocolInstance`):

>>> from repro.protocols import build_subquadratic_ba, build_quadratic_ba

Execution:

>>> from repro.harness import run_instance, run_trials

Adversaries (see :mod:`repro.adversaries`), lower-bound harnesses
(:mod:`repro.lowerbounds`), analysis (:mod:`repro.analysis`), and the
experiment suite E1..E10 (:mod:`repro.harness.experiments`).

See README.md for a tour and DESIGN.md for the paper-to-module map.
"""

from repro.types import (
    AdversaryModel,
    BROADCAST_SENDER,
    SecurityParameters,
)
from repro.harness import run_instance, run_trials
from repro.protocols import (
    build_broadcast_from_ba,
    build_dolev_strong,
    build_naive_broadcast,
    build_phase_king,
    build_phase_king_subquadratic,
    build_quadratic_ba,
    build_round_eligibility,
    build_static_committee,
    build_subquadratic_ba,
)

__version__ = "1.0.0"

__all__ = [
    "AdversaryModel",
    "BROADCAST_SENDER",
    "SecurityParameters",
    "run_instance",
    "run_trials",
    "build_broadcast_from_ba",
    "build_dolev_strong",
    "build_naive_broadcast",
    "build_phase_king",
    "build_phase_king_subquadratic",
    "build_quadratic_ba",
    "build_round_eligibility",
    "build_static_committee",
    "build_subquadratic_ba",
    "__version__",
]
