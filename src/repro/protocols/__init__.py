"""Protocol implementations.

The paper's own constructions:

- :mod:`repro.protocols.phase_king` — the warmup BA of Section 3.1
  (sticky-flag phase-king, tolerates < n/3, R = ω(log κ) epochs).
- :mod:`repro.protocols.phase_king_subquadratic` — Section 3.2: the same
  protocol compiled with bit-specific eligibility (committee threshold
  2λ/3, mined leader proposals).
- :mod:`repro.protocols.quadratic_ba` — Appendix C.1: the Abraham et al.
  Status/Propose/Vote/Commit BA (tolerates < n/2, expected O(1) rounds,
  quadratic communication).
- :mod:`repro.protocols.subquadratic_ba` — Appendix C.2: the headline
  protocol; the quadratic BA compiled with vote-specific eligibility
  (threshold λ/2, O(λ²) multicasts, expected O(1) rounds).
- :mod:`repro.protocols.broadcast` — Byzantine Broadcast from BA
  (Section 1.1's reduction).

Baselines the paper positions itself against:

- :mod:`repro.protocols.dolev_strong` — classic authenticated broadcast.
- :mod:`repro.protocols.static_committee` — CRS-elected committee BA,
  secure only against static adversaries (Section 1's motivating failure).
- :mod:`repro.protocols.round_eligibility` — the Chen–Micali strawman of
  Section 3.2: eligibility per round but *not* per bit, with an optional
  memory-erasure defence (forward-secure keys).
- :mod:`repro.protocols.naive` — deliberately cheap deterministic
  broadcast protocols used as lower-bound targets.

GST-aware early-stopping variants (``docs/PROTOCOLS.md``):

- :mod:`repro.protocols.early_stopping` — quadratic BA and phase-king
  with certified-round detectors that terminate the moment a trusted
  unanimous round is observed, instead of running out the worst-case
  round budget.

The deployed leader-based family (``docs/PROTOCOLS.md``):

- :mod:`repro.protocols.leader_ba` — Tendermint-style view-based BA
  under partial synchrony: round-robin leaders, n−f prevote-QCs, a
  locked-value/valid-value view-change path, and a multi-height chain
  workload (``leader-chain``) with locks carried across heights.

The adaptive family (``docs/PROTOCOLS.md``):

- :mod:`repro.protocols.adaptive_ba` — communication scales with the
  *actual* fault count: a silent-when-honest fast path decides in
  O(n) words when f* = 0, and each observed fault buys at most one
  linear-cost amplification epoch — O((f* + 1) · n) words total.
"""

from repro.protocols.adaptive_ba import build_adaptive_ba
from repro.protocols.base import ProtocolInstance
from repro.protocols.early_stopping import (
    build_phase_king_early_stop,
    build_quadratic_ba_early_stop,
)
from repro.protocols.leader_ba import build_leader_ba, build_leader_chain
from repro.protocols.quadratic_ba import build_quadratic_ba
from repro.protocols.subquadratic_ba import build_subquadratic_ba
from repro.protocols.phase_king import build_phase_king
from repro.protocols.phase_king_subquadratic import build_phase_king_subquadratic
from repro.protocols.dolev_strong import build_dolev_strong
from repro.protocols.static_committee import build_static_committee
from repro.protocols.round_eligibility import build_round_eligibility
from repro.protocols.broadcast import build_broadcast_from_ba
from repro.protocols.naive import build_naive_broadcast
from repro.protocols.verification import VerificationCache

__all__ = [
    "ProtocolInstance",
    "VerificationCache",
    "build_adaptive_ba",
    "build_leader_ba",
    "build_leader_chain",
    "build_quadratic_ba",
    "build_quadratic_ba_early_stop",
    "build_subquadratic_ba",
    "build_phase_king",
    "build_phase_king_early_stop",
    "build_phase_king_subquadratic",
    "build_dolev_strong",
    "build_static_committee",
    "build_round_eligibility",
    "build_broadcast_from_ba",
    "build_naive_broadcast",
]
