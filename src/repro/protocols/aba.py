"""The iterated Status/Propose/Vote/Commit BA node (Appendix C).

One node implementation serves both worlds:

- **quadratic warmup** (C.1): signature authenticator (everyone speaks),
  threshold ``f + 1``, oracle leader;
- **subquadratic** (C.2): eligibility authenticator (conditional
  multicast), threshold ``λ/2``, mined leaders.

Protocol structure per iteration ``r`` (the very first iteration skips
Status and Propose):

1. **Status** — multicast the highest certificate seen so far.
2. **Propose** — an eligible proposer multicasts ``(Propose, r, b)`` for
   the bit ``b`` carrying its highest certificate, certificate attached.
3. **Vote** — vote for a proposed ``b`` unless a *strictly* higher
   certificate for ``1 - b`` has been observed (an equal-rank opposite
   certificate does not block).  Iteration 1: vote for the input bit.
   Votes attach the justifying proposal (footnote 11) — this is what
   prevents corrupt nodes from manufacturing votes for a bit no eligible
   proposer proposed.
4. **Commit** — upon a quorum of iteration-``r`` votes for ``b`` with *no*
   valid iteration-``r`` vote for ``1 - b``, multicast ``(Commit, r, b)``
   with the certificate attached.

At any time, a quorum of iteration-``r`` commits for ``b`` (or a valid
``Terminate`` message) makes the node output ``b``, conditionally multicast
``(Terminate, b)`` with the commits attached, and halt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.protocols.base import Authenticator, ProposerPolicy
from repro.protocols.certificates import (
    Certificate,
    certificate_from_votes,
    rank,
)
from repro.protocols.verification import CACHE_LIMIT, VerificationCache
from repro.protocols.messages import (
    CommitMsg,
    ProposeMsg,
    SignedVote,
    StatusMsg,
    TerminateMsg,
    VoteMsg,
)
from repro.serialization import _intern_field_key, intern_by_key, intern_payload
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId, Round, other_bit

PHASE_STATUS = "Status"
PHASE_PROPOSE = "Propose"
PHASE_VOTE = "Vote"
PHASE_COMMIT = "Commit"

_LATER_PHASES = (PHASE_STATUS, PHASE_PROPOSE, PHASE_VOTE, PHASE_COMMIT)


def schedule(round_index: Round) -> Tuple[int, str]:
    """Map a global round to ``(iteration, phase)``.

    Iteration 1 consists of Vote and Commit only (C.1: "the protocol for
    the very first iteration skips the Status and Propose rounds").
    """
    if round_index == 0:
        return 1, PHASE_VOTE
    if round_index == 1:
        return 1, PHASE_COMMIT
    offset = round_index - 2
    return 2 + offset // 4, _LATER_PHASES[offset % 4]


def rounds_for_iterations(iterations: int) -> int:
    """Rounds needed to run the given number of iterations to completion,
    plus one delivery round so final-commit quorums can be tallied."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    return 2 + 4 * (iterations - 1) + 1


def vote_send_round(iteration: int) -> Round:
    """The global round in which iteration-``r`` votes are multicast
    (inverse of :func:`schedule` for the Vote phase)."""
    return 0 if iteration == 1 else 4 * iteration - 4


@dataclass
class AbaConfig:
    """Parameters distinguishing the quadratic and subquadratic worlds."""

    threshold: int
    authenticator: Authenticator
    proposer: ProposerPolicy
    max_iterations: int
    #: Execution-wide memo for the public verification predicates; the
    #: nodes of one instance share it (see repro.protocols.verification).
    verification: VerificationCache = field(default_factory=VerificationCache)
    #: GST-aware early stopping (the ``quadratic-early-stop`` registry
    #: key): decide the moment an iteration's votes are unanimous — all
    #: ``n`` voters for one bit — instead of waiting for the Commit
    #: round-trip.  Sound because a unanimous vote round leaves at most
    #: ``f < threshold`` possible opposite votes, so no conflicting
    #: certificate can ever form.  Detection is gated on
    #: ``trusted_send_round``: before it, drops or unhealed partitions
    #: can fake unanimity in a single node's view (see
    #: ``docs/PROTOCOLS.md``).
    early_stop_unanimity: bool = False
    #: First protocol round whose sends provably reach every honest node
    #: (``NetworkConditions.trusted_send_round``; 0 under lock-step).
    trusted_send_round: Round = 0


class AbaNode(Node):
    """One party of the iterated BA protocol."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: AbaConfig) -> None:
        super().__init__(node_id, n)
        self.input_bit = input_bit
        self.config = config
        # Highest certificate observed per bit (None = iteration-0 rank).
        self.best_cert: Dict[Bit, Optional[Certificate]] = {0: None, 1: None}
        # (iteration, bit) -> voter -> auth, valid votes only.
        self.votes_seen: Dict[Tuple[int, Bit], Dict[NodeId, Any]] = {}
        # (iteration, bit) -> sender -> CommitMsg, valid commits only.
        self.commits_seen: Dict[Tuple[int, Bit], Dict[NodeId, CommitMsg]] = {}
        # Valid proposals received, per iteration.
        self.proposals: Dict[int, List[ProposeMsg]] = {}
        self.last_vote: Optional[Bit] = None
        self.decision: Optional[Bit] = None
        self.decision_iteration: Optional[int] = None
        # Verification of votes, certificates, and proposals is a public
        # pure predicate, memoized by *content* and shared across the
        # instance's nodes: every sender assembles its own content-equal
        # certificate objects, and the historical per-node identity-keyed
        # cache re-verified each copy from scratch.
        self._verification = config.verification
        # Per-node identity front for certificates: each received object
        # is resolved at most once per node (entries pin the object, so
        # ids cannot be recycled).  Unlike the shared cache this may hold
        # negative results — the same "each object checked once" contract
        # the original per-node cache had.
        self._cert_cache: Dict[int, Tuple[Certificate, bool]] = {}

    # -- validation helpers --------------------------------------------------
    def _check_auth(self, node_id: NodeId, topic: Any, auth: Any) -> bool:
        return self._verification.check_auth(
            self.config.authenticator, node_id, topic, auth)

    def _check_vote_auth(self, vote: SignedVote) -> bool:
        return self._verification.check_vote(self.config.authenticator, vote)

    def _check_certificate(self, certificate: Optional[Certificate],
                           expected_bit: Optional[Bit] = None) -> bool:
        if certificate is None:
            return True  # the fictitious iteration-0 certificate
        if expected_bit is not None and certificate.bit != expected_bit:
            return False
        entry = self._cert_cache.get(id(certificate))
        if entry is not None and entry[0] is certificate:
            return entry[1]
        result = self._verification.check_certificate(
            certificate, self.config.threshold, self._check_vote_auth)
        if len(self._cert_cache) >= CACHE_LIMIT:
            self._cert_cache.clear()
        self._cert_cache[id(certificate)] = (certificate, result)
        return result

    def _absorb_certificate(self, certificate: Optional[Certificate]) -> None:
        """Track the highest-ranked certificate per bit (pre-validated)."""
        if certificate is None:
            return
        current = self.best_cert[certificate.bit]
        # Inlined ``rank(certificate) > rank(current)`` (None ranks as
        # GENESIS_RANK) — this runs once per absorbed message and the
        # attribute compare is measurably cheaper than two function calls
        # at n ≥ 768.
        if certificate.iteration > (
                current.iteration if current is not None else 0):
            self.best_cert[certificate.bit] = certificate

    def _proposal_valid(self, msg: ProposeMsg) -> bool:
        if msg.bit not in (0, 1):
            return False
        if not self._verification.check_proposal(
                self.config.proposer, msg.sender, msg.iteration,
                msg.bit, msg.auth):
            return False
        return self._check_certificate(msg.certificate, expected_bit=msg.bit)

    def _preferred_bit(self) -> Bit:
        """Bit of the overall highest certificate; falls back to the last
        vote, then the input bit."""
        rank0, rank1 = rank(self.best_cert[0]), rank(self.best_cert[1])
        if rank0 > rank1:
            return 0
        if rank1 > rank0:
            return 1
        return self.last_vote if self.last_vote is not None else self.input_bit

    # -- inbox processing ------------------------------------------------------
    def _process_inbox(self, ctx: RoundContext) -> Optional[Tuple[int, Bit]]:
        """Validate and absorb every delivery; return a pending decision
        ``(iteration, bit)`` if one became available."""
        pending: Optional[Tuple[int, Bit]] = None
        # The shared valid-payload front is probed inline: at n = 1536 a
        # single execution dispatches millions of deliveries, and the
        # method-call indirection of ``is_known_valid`` per delivery is
        # itself a top-five profile entry.  Reading the dict directly is
        # equivalent — ``mark_valid`` is gated on CACHING_ENABLED, so the
        # dict stays empty (every ``get`` misses) when caching is off.
        # Dispatch compares exact classes first (payload dataclasses are
        # never subclassed in-tree) with an isinstance fallback so
        # out-of-tree subclasses keep the historical behavior.
        front = self._verification.valid_payloads
        for delivery in ctx.inbox:
            msg = delivery.payload
            entry = front.get(id(msg))
            known = entry is not None and entry[0] is msg
            cls = msg.__class__
            if cls is VoteMsg:
                self._handle_vote(msg, known)
            elif cls is StatusMsg:
                self._handle_status(msg, known)
            elif cls is CommitMsg:
                self._handle_commit(msg, known)
            elif cls is ProposeMsg:
                self._handle_propose(msg, known)
            elif cls is TerminateMsg:
                adopted = self._handle_terminate(msg, known)
                if adopted is not None:
                    pending = adopted
            elif isinstance(msg, StatusMsg):
                self._handle_status(msg, known)
            elif isinstance(msg, ProposeMsg):
                self._handle_propose(msg, known)
            elif isinstance(msg, VoteMsg):
                self._handle_vote(msg, known)
            elif isinstance(msg, CommitMsg):
                self._handle_commit(msg, known)
            elif isinstance(msg, TerminateMsg):
                adopted = self._handle_terminate(msg, known)
                if adopted is not None:
                    pending = adopted
        for (iteration, bit), commits in self.commits_seen.items():
            if len(commits) >= self.config.threshold:
                pending = (iteration, bit)
        return pending

    def _handle_status(self, msg: StatusMsg, known: bool = False) -> None:
        # Validation (not absorption) of a message is recipient-independent:
        # the first recipient to validate this exact object spares the rest
        # (see VerificationCache.is_known_valid; ``known`` is the inlined
        # front probe from _process_inbox).  The handlers below follow the
        # same shape: skip to the state updates on a front hit.
        if not (known or self._verification.is_known_valid(msg)):
            topic = ("Status", msg.iteration, msg.bit)
            if not self._check_auth(msg.sender, topic, msg.auth):
                return
            if not self._check_certificate(msg.certificate,
                                           expected_bit=msg.bit):
                return
            self._verification.mark_valid(msg)
        self._absorb_certificate(msg.certificate)

    def _handle_propose(self, msg: ProposeMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if not self._proposal_valid(msg):
                return
            self._verification.mark_valid(msg)
        self._absorb_certificate(msg.certificate)
        self.proposals.setdefault(msg.iteration, []).append(msg)

    def _handle_vote(self, msg: VoteMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            topic = ("Vote", msg.iteration, msg.bit)
            if not self._check_auth(msg.sender, topic, msg.auth):
                return
            if msg.iteration > 1:
                # Footnote 11: votes beyond iteration 1 carry the leader
                # proposal that justifies them.
                proposal = msg.proposal
                if (proposal is None or proposal.iteration != msg.iteration
                        or proposal.bit != msg.bit
                        or not self._proposal_valid(proposal)):
                    return
            self._verification.mark_valid(msg)
        if msg.iteration > 1:
            self._absorb_certificate(msg.proposal.certificate)
        self._record_vote(msg.iteration, msg.bit, msg.sender, msg.auth)

    def _record_vote(self, iteration: int, bit: Bit, voter: NodeId,
                     auth: Any) -> None:
        votes = self.votes_seen.setdefault((iteration, bit), {})
        votes.setdefault(voter, auth)
        best = self.best_cert[bit]
        # Inlined ``rank(best) < iteration`` (None ranks as GENESIS_RANK).
        if (len(votes) >= self.config.threshold
                and (best.iteration if best is not None else 0) < iteration):
            # A quorum of valid votes *is* a certificate, whether or not
            # the commit condition later holds.  Once best_cert holds an
            # iteration-r certificate for this bit, re-assembling one from
            # a larger vote set could never outrank it, so skip the
            # (quadratic-in-n) rebuild on every extra vote.  Every node
            # assembles the same certificate from the same quorum, so the
            # intern arena collapses the n content-equal copies to one
            # object — and every identity-keyed memo downstream (size
            # accounting, certificate fronts) hits for all of them.
            self._absorb_certificate(intern_payload(certificate_from_votes(
                iteration, bit, votes, self.config.threshold)))

    def _commit_valid(self, msg: CommitMsg) -> bool:
        if msg.bit not in (0, 1):
            return False
        topic = ("Commit", msg.iteration, msg.bit)
        if not self._check_auth(msg.sender, topic, msg.auth):
            return False
        certificate = msg.certificate
        if (certificate is None or certificate.iteration != msg.iteration
                or certificate.bit != msg.bit):
            return False
        return self._check_certificate(certificate, expected_bit=msg.bit)

    def _handle_commit(self, msg: CommitMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if not self._commit_valid(msg):
                return
            self._verification.mark_valid(msg)
        self._absorb_certificate(msg.certificate)
        self.commits_seen.setdefault(
            (msg.iteration, msg.bit), {}).setdefault(msg.sender, msg)

    def _commit_ref_valid(self, commit: CommitMsg) -> bool:
        """Validity of a certificate-stripped commit inside a Terminate.

        Lemma 15 bounds messages at O(λ(log κ + log n)), so Terminate
        attaches the λ/2 commits *without* their vote certificates.  The
        ticket quorum alone is sound: fewer than λ/2 corrupt nodes hold
        commit tickets (Lemma 11), so the quorum contains an honest
        committer.
        """
        if commit.bit not in (0, 1):
            return False
        topic = ("Commit", commit.iteration, commit.bit)
        return self._check_auth(commit.sender, topic, commit.auth)

    def _handle_terminate(self, msg: TerminateMsg,
                          known: bool = False) -> Optional[Tuple[int, Bit]]:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return None
            topic = ("Terminate", msg.bit)
            if not self._check_auth(msg.sender, topic, msg.auth):
                return None
            senders = set()
            for commit in msg.commits:
                if (commit.iteration != msg.iteration or commit.bit != msg.bit
                        or not self._commit_ref_valid(commit)):
                    return None
                senders.add(commit.sender)
            if len(senders) < self.config.threshold:
                return None
            self._verification.mark_valid(msg)
        # Record the quorum so this node's own (relayed) Terminate can
        # attach it.
        recorded = self.commits_seen.setdefault((msg.iteration, msg.bit), {})
        for commit in msg.commits:
            recorded.setdefault(commit.sender, commit)
        return (msg.iteration, msg.bit)

    # -- decision ---------------------------------------------------------------
    def _terminate(self, ctx: RoundContext, iteration: int, bit: Bit) -> None:
        self.decision = bit
        self.decision_iteration = iteration
        self.decide(bit, ctx.round)
        auth = self.config.authenticator.attempt(
            self.node_id, ("Terminate", bit))
        if auth is not None:
            commits = self.commits_seen.get((iteration, bit), {})
            # Strip the vote certificates from the attached commits to meet
            # the O(λ(log κ + log n)) message bound (see _commit_ref_valid).
            # Interned as a whole quorum: every terminating node strips the
            # same commits, so the content-equal stripped tuples collapse
            # to one object — keyed by the chosen commits' identity (their
            # sender/auth determine the stripped content; iteration and bit
            # are fixed by the key head).  The arena entry keeps the chosen
            # originals alive alongside the stripped tuple, pinning every
            # id() the key references.
            chosen = sorted(commits.values(),
                            key=lambda c: c.sender)[:self.config.threshold]
            stripped = intern_by_key(
                (TerminateMsg, iteration, bit,
                 tuple([(c.sender, _intern_field_key(c.auth))
                        for c in chosen])),
                lambda: (tuple(chosen), tuple(
                    intern_payload(CommitMsg(
                        iteration=c.iteration, bit=c.bit, certificate=None,
                        sender=c.sender, auth=c.auth))
                    for c in chosen)))[1]
            payload = TerminateMsg(
                bit=bit,
                iteration=iteration,
                commits=stripped,
                sender=self.node_id,
                auth=auth,
            )
            ctx.multicast(payload)
        self.halted = True

    # -- phase actions -------------------------------------------------------------
    def _do_status(self, ctx: RoundContext, iteration: int) -> None:
        preferred = self._preferred_bit()
        certificate = self.best_cert[preferred]
        bit = preferred if certificate is not None else None
        auth = self.config.authenticator.attempt(
            self.node_id, ("Status", iteration, bit))
        if auth is not None:
            ctx.multicast(StatusMsg(iteration=iteration, bit=bit,
                                    certificate=certificate,
                                    sender=self.node_id, auth=auth))

    def _do_propose(self, ctx: RoundContext, iteration: int) -> None:
        bit = self._preferred_bit()
        auth = self.config.proposer.attempt(self.node_id, iteration, bit)
        if auth is not None:
            proposal = ProposeMsg(iteration=iteration, bit=bit,
                                  certificate=self.best_cert[bit],
                                  sender=self.node_id, auth=auth)
            ctx.multicast(proposal)
            # A proposer also justifies its own vote with its proposal.
            self.proposals.setdefault(iteration, []).append(proposal)

    def _choose_vote(self, iteration: int) -> Optional[VoteMsg]:
        if iteration == 1:
            bit = self.input_bit
            auth = self.config.authenticator.attempt(
                self.node_id, ("Vote", 1, bit))
            if auth is None:
                return None
            return VoteMsg(iteration=1, bit=bit, sender=self.node_id,
                           auth=auth, proposal=None)
        acceptable = [
            proposal for proposal in self.proposals.get(iteration, [])
            if rank(self.best_cert[other_bit(proposal.bit)])
            <= rank(proposal.certificate)
        ]
        if not acceptable:
            return None
        # Prefer the proposal carrying the highest certificate; break ties
        # deterministically towards bit 0 (any tie-break is sound: an
        # equal-rank certificate for the other bit never blocks, C.1 Vote).
        chosen = max(acceptable, key=lambda p: (rank(p.certificate), -p.bit))
        auth = self.config.authenticator.attempt(
            self.node_id, ("Vote", iteration, chosen.bit))
        if auth is None:
            return None
        return VoteMsg(iteration=iteration, bit=chosen.bit,
                       sender=self.node_id, auth=auth, proposal=chosen)

    def _do_vote(self, ctx: RoundContext, iteration: int) -> None:
        vote = self._choose_vote(iteration)
        if vote is None:
            return
        self.last_vote = vote.bit
        ctx.multicast(vote)
        # Count the node's own vote towards its quorums (the network does
        # not self-deliver).
        self._record_vote(vote.iteration, vote.bit, self.node_id, vote.auth)

    def _do_commit(self, ctx: RoundContext, iteration: int) -> None:
        for bit in (0, 1):
            votes = self.votes_seen.get((iteration, bit), {})
            opposing = self.votes_seen.get((iteration, other_bit(bit)), {})
            if len(votes) < self.config.threshold or opposing:
                continue
            certificate = intern_payload(certificate_from_votes(
                iteration, bit, votes, self.config.threshold))
            self._absorb_certificate(certificate)
            auth = self.config.authenticator.attempt(
                self.node_id, ("Commit", iteration, bit))
            if auth is not None:
                commit = CommitMsg(iteration=iteration, bit=bit,
                                   certificate=certificate,
                                   sender=self.node_id, auth=auth)
                ctx.multicast(commit)
                self.commits_seen.setdefault(
                    (iteration, bit), {}).setdefault(self.node_id, commit)

    def _unanimous_votes(self) -> Optional[Tuple[int, Bit]]:
        """An iteration whose votes are unanimous — all ``n`` voters for
        one bit — and whose vote round is past the trusted-send round."""
        trusted = self.config.trusted_send_round
        for (iteration, bit), votes in self.votes_seen.items():
            if (len(votes) >= self.n
                    and vote_send_round(iteration) >= trusted):
                return (iteration, bit)
        return None

    # -- main entry point ---------------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        iteration, phase = schedule(ctx.round)
        pending = self._process_inbox(ctx)
        if pending is not None:
            self._terminate(ctx, pending[0], pending[1])
            return
        if iteration > self.config.max_iterations:
            self.halted = True
            return
        if phase == PHASE_STATUS:
            self._do_status(ctx, iteration)
        elif phase == PHASE_PROPOSE:
            self._do_propose(ctx, iteration)
        elif phase == PHASE_VOTE:
            self._do_vote(ctx, iteration)
        elif phase == PHASE_COMMIT:
            self._do_commit(ctx, iteration)
        if self.config.early_stop_unanimity:
            # The fast path runs *after* the phase action: at the Commit
            # round the node has already multicast its own commit (so the
            # quorum machinery of slower nodes — whose view a rushing
            # equivocator can keep short of unanimity — is fed as usual)
            # and then decides immediately instead of waiting a round for
            # the commit quorum to come back.  Quietly: peers' commits
            # are still in flight, so a Terminate here would carry fewer
            # than threshold commits and be rejected by every receiver —
            # n wasted copies (when a quorum *is* already on hand,
            # _process_inbox has fired the normal _terminate above).
            unanimous = self._unanimous_votes()
            if unanimous is not None:
                self.decision_iteration, self.decision = unanimous
                self.decide(self.decision, ctx.round)
                self.halted = True

    def output(self) -> Optional[Bit]:
        return self.decision

    def finalize(self) -> Bit:
        decided = self.output()
        return decided if decided is not None else self._preferred_bit()
