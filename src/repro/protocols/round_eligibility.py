"""The Chen–Micali strawman: round-specific (NOT bit-specific) eligibility.

Section 3.2 describes this design and its flaw: eligibility is determined
per *round* — ``VRF(ACK, r) < D`` — so a node eligible to ACK bit ``b`` is
automatically eligible to ACK ``1 - b``.  An adaptive adversary that sees
an honest node ACK ``b`` can corrupt it immediately and make it ACK
``1 - b`` **in the same round with the same ticket** (the Remark in
Section 3.3).  Chen–Micali's defence is the *memory-erasure model*: votes
are additionally signed with a forward-secure key whose per-epoch secret
is erased immediately after the vote, so the freshly corrupted node can no
longer produce a second valid vote for the round.

This module implements the strawman as a phase-king variant with a
``memory_erasure`` switch, so the experiment E6 can show all three cells:

=====================  ======================  =====================
protocol               adversary capability    consistency
=====================  ======================  =====================
round eligibility      equivocation attack     **broken**
round + erasure        equivocation attack     holds
bit-specific (ours)    equivocation attack     holds, *no erasure*
=====================  ======================  =====================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.crypto.hashing import hash_objects
from repro.eligibility.base import EligibilitySource, Topic
from repro.errors import ConfigurationError, SignatureError
from repro.protocols.base import Authenticator, ProposerPolicy, ProtocolInstance
from repro.protocols.phase_king import (
    DEFAULT_EPOCHS,
    PhaseKingConfig,
    PhaseKingNode,
    phase_king_rounds,
)
from repro.protocols.subquadratic_ba import FMINE_MODE, make_eligibility
from repro.rng import Seed
from repro.types import Bit, NodeId, SecurityParameters


# ---------------------------------------------------------------------------
# Ideal forward-secure ("ephemeral key") signatures.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EpochSignature:
    """An unforgeable per-epoch signature token."""

    signer: NodeId
    epoch: int
    digest: bytes


class EpochSigningCapability:
    """Evolving signing right: can sign only epochs >= ``current_epoch``.

    :meth:`evolve` is the *memory erasure*: after evolving past epoch
    ``t``, not even the holder (nor an adversary that corrupts it) can
    sign for epoch ``t`` — footnote 5's ephemeral keys, idealized.
    """

    def __init__(self, registry: "EpochKeyRegistry", node_id: NodeId) -> None:
        self._registry = registry
        self.node_id = node_id
        self.current_epoch = 0

    def sign(self, epoch: int, message: Any) -> EpochSignature:
        if epoch < self.current_epoch:
            raise SignatureError(
                f"epoch-{epoch} key was erased (current epoch "
                f"{self.current_epoch})")
        return self._registry._sign(self, epoch, message)

    def evolve(self, to_epoch: int) -> None:
        self.current_epoch = max(self.current_epoch, to_epoch)


class EpochKeyRegistry:
    """Ideal forward-secure signature functionality."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._capabilities = [EpochSigningCapability(self, node)
                              for node in range(n)]
        self._issued: set[Tuple[NodeId, int, bytes]] = set()

    def capability_for(self, node_id: NodeId) -> EpochSigningCapability:
        return self._capabilities[node_id]

    def _sign(self, capability: EpochSigningCapability, epoch: int,
              message: Any) -> EpochSignature:
        if capability is not self._capabilities[capability.node_id]:
            raise SignatureError("counterfeit epoch-signing capability")
        digest = hash_objects("epoch-sig", capability.node_id, epoch, message)
        self._issued.add((capability.node_id, epoch, digest))
        return EpochSignature(signer=capability.node_id, epoch=epoch,
                              digest=digest)

    def verify(self, node_id: NodeId, epoch: int, message: Any,
               signature: EpochSignature) -> bool:
        if not isinstance(signature, EpochSignature):
            return False
        if signature.signer != node_id or signature.epoch != epoch:
            return False
        expected = hash_objects("epoch-sig", node_id, epoch, message)
        return (signature.digest == expected
                and (node_id, epoch, signature.digest) in self._issued)


# ---------------------------------------------------------------------------
# Round-specific eligibility authentication.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RoundAuth:
    """Ticket for the *round* lottery plus a per-epoch signature that
    binds the bit (the part erasure protects).

    ``signature`` is an :class:`EpochSignature` in the ideal mode or a
    :class:`~repro.crypto.forward_secure.ForwardSecureSignature` in the
    real-crypto mode.
    """

    ticket: Any
    signature: Any


def _round_topic(topic: Topic) -> Topic:
    """Strip the bit: ``(kind, epoch, bit)`` → ``(kind, epoch)``.

    This is the strawman's defining flaw — the lottery does not see the
    bit.
    """
    return (topic[0], topic[1])


def signing_slot(topic: Topic) -> int:
    """The forward-secure key slot for a topic.

    Chen–Micali keys evolve per *slot*, one slot per protocol step: the
    proposal of epoch ``r`` is slot ``2r`` and the ACK is slot ``2r + 1``,
    so erasing the key after a proposal never disables the same epoch's
    ACK.
    """
    kind, epoch = topic[0], topic[1]
    return 2 * epoch + (1 if kind == "ACK" else 0)


class RoundEligibilityAuthenticator(Authenticator):
    """ACK auth = round ticket + per-slot signature over the full topic."""

    def __init__(self, source: EligibilitySource,
                 epoch_registry: EpochKeyRegistry,
                 memory_erasure: bool) -> None:
        self.source = source
        self.epoch_registry = epoch_registry
        self.memory_erasure = memory_erasure

    def attempt(self, node_id: NodeId, topic: Topic) -> Optional[RoundAuth]:
        ticket = self.source.capability_for(node_id).try_mine(
            _round_topic(topic))
        if ticket is None:
            return None
        slot = signing_slot(topic)
        capability = self.epoch_registry.capability_for(node_id)
        signature = capability.sign(slot, topic)
        if self.memory_erasure:
            # Chen–Micali: erase the slot key immediately after voting.
            capability.evolve(slot + 1)
        return RoundAuth(ticket=ticket, signature=signature)

    def check(self, node_id: NodeId, topic: Topic, auth: Any) -> bool:
        if not isinstance(auth, RoundAuth):
            return False
        ticket = auth.ticket
        if getattr(ticket, "node_id", None) != node_id:
            return False
        if getattr(ticket, "topic", None) != _round_topic(topic):
            return False
        if not self.source.verify(ticket):
            return False
        return self.epoch_registry.verify(node_id, signing_slot(topic), topic,
                                          auth.signature)

    def capability_of(self, node_id: NodeId):
        return (self.source.capability_for(node_id),
                self.epoch_registry.capability_for(node_id))


class RealFsEpochRegistry:
    """Drop-in for :class:`EpochKeyRegistry` using the real Merkle-tree
    forward-secure scheme of :mod:`repro.crypto.forward_secure`.

    Same capability interface (``sign``/``evolve`` with slot semantics and
    key erasure), but signatures are genuine Schnorr-under-Merkle-path
    objects verified against each node's published root.
    """

    def __init__(self, n: int, max_slots: int, seed, group=None) -> None:
        from repro.crypto.forward_secure import ForwardSecureKeyPair
        from repro.crypto.groups import TEST_GROUP
        from repro.rng import derive_rng

        self.n = n
        self.max_slots = max_slots
        self.group = group if group is not None else TEST_GROUP
        setup_rng = derive_rng(seed, "real-fs-setup")
        self._keypairs = [
            ForwardSecureKeyPair(self.group, max_slots, setup_rng)
            for _ in range(n)
        ]
        #: The PKI: each node's Merkle root, public.
        self.public_roots = [kp.public_root for kp in self._keypairs]
        self._sign_rng = derive_rng(seed, "real-fs-sign")
        self._capabilities = [
            _RealFsCapability(self, node) for node in range(n)]

    def capability_for(self, node_id: NodeId) -> "_RealFsCapability":
        return self._capabilities[node_id]

    def verify(self, node_id: NodeId, slot: int, message: Any,
               signature: Any) -> bool:
        from repro.crypto.forward_secure import (
            ForwardSecureSignature,
            verify_forward_secure,
        )
        if not isinstance(signature, ForwardSecureSignature):
            return False
        if signature.epoch != slot:
            return False
        return verify_forward_secure(
            self.group, self.public_roots[node_id], self.max_slots,
            message, signature)


class _RealFsCapability:
    """Real-crypto signing capability with slot-erasure semantics."""

    def __init__(self, registry: RealFsEpochRegistry, node_id: NodeId) -> None:
        self._registry = registry
        self.node_id = node_id

    @property
    def current_epoch(self) -> int:
        return self._registry._keypairs[self.node_id].current_epoch

    def sign(self, slot: int, message: Any):
        keypair = self._registry._keypairs[self.node_id]
        return keypair.sign(slot, message, self._registry._sign_rng)

    def evolve(self, to_slot: int) -> None:
        self._registry._keypairs[self.node_id].evolve(to_slot)


class RoundMiningProposerPolicy(ProposerPolicy):
    """Proposals mined per round (bit chosen after winning — equivocable)."""

    def __init__(self, authenticator: RoundEligibilityAuthenticator) -> None:
        self.authenticator = authenticator

    def attempt(self, node_id: NodeId, iteration: int,
                bit: Bit) -> Optional[RoundAuth]:
        return self.authenticator.attempt(
            node_id, ("Propose", iteration, bit))

    def check(self, node_id: NodeId, iteration: int, bit: Bit,
              auth: Any) -> bool:
        return self.authenticator.check(
            node_id, ("Propose", iteration, bit), auth)


def build_round_eligibility(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    params: SecurityParameters = SecurityParameters(),
    epochs: int = DEFAULT_EPOCHS,
    memory_erasure: bool = False,
    mode: str = FMINE_MODE,
    fs_mode: str = "ideal",
) -> ProtocolInstance:
    """Phase-king with round-specific eligibility (± memory erasure).

    ``fs_mode="ideal"`` uses the ideal epoch-key functionality;
    ``fs_mode="real"`` uses the genuine Merkle-tree forward-secure
    signature scheme (slower; for small-n validation runs).
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(f"phase-king requires f < n/3: n={n}, f={f}")
    eligibility = make_eligibility(n, params, seed, mode)
    if fs_mode == "ideal":
        epoch_registry = EpochKeyRegistry(n)
    elif fs_mode == "real":
        epoch_registry = RealFsEpochRegistry(
            n, max_slots=2 * epochs + 2, seed=seed)
    else:
        raise ConfigurationError(f"unknown fs_mode {fs_mode!r}")
    authenticator = RoundEligibilityAuthenticator(
        eligibility, epoch_registry, memory_erasure)
    config = PhaseKingConfig(
        threshold=max(1, math.ceil(2 * params.lam / 3)),
        authenticator=authenticator,
        proposer=RoundMiningProposerPolicy(authenticator),
        epochs=epochs,
    )
    nodes = [PhaseKingNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    erasure_tag = "erasure" if memory_erasure else "no-erasure"
    return ProtocolInstance(
        name=f"round-eligibility[{erasure_tag}]",
        nodes=nodes,
        max_rounds=phase_king_rounds(epochs),
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[epoch_registry.capability_for(i)
                              for i in range(n)],
        mining_capabilities=[eligibility.capability_for(i) for i in range(n)],
        services={
            "eligibility": eligibility,
            "epoch_registry": epoch_registry,
            "authenticator": authenticator,
            "threshold": config.threshold,
            "memory_erasure": memory_erasure,
            "params": params,
            "config": config,
        },
    )
