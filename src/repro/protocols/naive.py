"""Deliberately cheap deterministic broadcast protocols.

Lower-bound targets for the Dolev–Reischuk harness (Section 2 warmup):
protocols that spend far fewer than ``(f/2)²`` messages and are therefore
provably attackable.  They are *correct in the all-honest case* — the
point is exactly that correctness without enough messages cannot survive
``f`` corruptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolInstance
from repro.rng import Seed
from repro.sim.node import Node, RoundContext
from repro.types import BROADCAST_SENDER, Bit, NodeId


@dataclass(frozen=True)
class NaiveBit:
    """The sender's (or a relayer's) bare bit."""

    bit: Bit


class NaiveBroadcastNode(Node):
    """Sender unicasts its bit to everyone; everyone echoes once through a
    sparse relay set; nodes output the first bit heard, or a default.

    ``default_when_silent`` is the bit a node outputs if it never hears
    anything — the Dolev–Reischuk attack turns exactly this default
    against the protocol.
    """

    def __init__(self, node_id: NodeId, n: int,
                 sender: NodeId, sender_input: Optional[Bit],
                 relay_width: int, total_rounds: int,
                 default_when_silent: Bit = 1) -> None:
        super().__init__(node_id, n)
        self.sender = sender
        self.sender_input = sender_input
        self.relay_width = relay_width
        self.total_rounds = total_rounds
        self.default_when_silent = default_when_silent
        self.heard: Optional[Bit] = None
        self._relayed = False

    def _relay_targets(self) -> Sequence[NodeId]:
        """A fixed sparse set of successors (deterministic protocol)."""
        return [(self.node_id + offset + 1) % self.n
                for offset in range(self.relay_width)]

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round == 0 and self.node_id == self.sender:
            bit = self.sender_input if self.sender_input is not None else 0
            self.heard = bit
            for recipient in range(self.n):
                if recipient != self.node_id:
                    ctx.send(recipient, NaiveBit(bit=bit))
            self._relayed = True
        for delivery in ctx.inbox:
            msg = delivery.payload
            if isinstance(msg, NaiveBit) and msg.bit in (0, 1):
                if self.heard is None:
                    self.heard = msg.bit
        if (self.heard is not None and not self._relayed
                and self.relay_width > 0):
            self._relayed = True
            for recipient in self._relay_targets():
                if recipient != self.node_id:
                    ctx.send(recipient, NaiveBit(bit=self.heard))
        if ctx.round >= self.total_rounds - 1:
            self.decide(self.finalize(), ctx.round)
            self.halted = True

    def output(self) -> Optional[Bit]:
        return self.finalize() if self.halted else None

    def finalize(self) -> Bit:
        return self.heard if self.heard is not None else self.default_when_silent


def build_naive_broadcast(
    n: int,
    f: int,
    sender_input: Bit,
    seed: Seed = 0,
    sender: NodeId = BROADCAST_SENDER,
    relay_width: int = 2,
    total_rounds: int = 4,
    default_when_silent: Bit = 1,
) -> ProtocolInstance:
    """A deterministic broadcast spending ``O(n · relay_width)`` messages."""
    if not 0 <= f < n:
        raise ConfigurationError(f"need 0 <= f < n, got f={f}, n={n}")
    nodes = [
        NaiveBroadcastNode(
            node_id, n, sender,
            sender_input if node_id == sender else None,
            relay_width, total_rounds, default_when_silent)
        for node_id in range(n)
    ]
    return ProtocolInstance(
        name="naive-broadcast",
        nodes=nodes,
        max_rounds=total_rounds,
        inputs={sender: sender_input},
        signing_capabilities=[],
        mining_capabilities=[],
        services={"sender": sender, "relay_width": relay_width},
    )
