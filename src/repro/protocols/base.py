"""Shared protocol plumbing: authenticators, proposer policies, instances.

The paper presents each subquadratic protocol as a *compilation* of its
warmup: every ``multicast`` becomes ``conditionally multicast``, quorum
thresholds shrink from ``f + 1`` to ``λ/2`` (or ``2n/3`` to ``2λ/3``), and
signature checks become ``Fmine.verify`` calls (Sections 3.2, C.2).  We
realise that compilation literally: one node implementation per protocol
family, parameterised by

- an :class:`Authenticator` — how a node authenticates a topic
  ``(kind, r, b)``.  :class:`SignatureAuthenticator` always succeeds
  (everyone may speak; quadratic world); :class:`EligibilityAuthenticator`
  succeeds only when the mining lottery does (subquadratic world).
- a :class:`ProposerPolicy` — who may propose in iteration ``r``:
  the announced oracle leader (warmups) or any node that mines
  ``(Propose, r, b)`` (the compiled protocols, removing the oracle).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.registry import KeyRegistry, SigningCapability
from repro.eligibility.base import EligibilitySource, MiningCapability, Topic
from repro.sim.leader import LeaderOracle
from repro.sim.node import Node
from repro.types import Bit, NodeId


class Authenticator(abc.ABC):
    """Mode-specific message authentication for one execution."""

    @abc.abstractmethod
    def attempt(self, node_id: NodeId, topic: Topic) -> Optional[Any]:
        """Try to authenticate ``topic`` as ``node_id``.

        Returns the auth object, or ``None`` if the node is not eligible
        to send this topic (subquadratic mode losing the lottery).
        """

    @abc.abstractmethod
    def check(self, node_id: NodeId, topic: Topic, auth: Any) -> bool:
        """Publicly verify an auth object; never raises."""

    @abc.abstractmethod
    def capability_of(self, node_id: NodeId) -> Any:
        """The per-node secret capability (revealed on corruption)."""


class SignatureAuthenticator(Authenticator):
    """Quadratic world: every node may speak; auth = signature on topic."""

    def __init__(self, registry: KeyRegistry) -> None:
        self.registry = registry

    def attempt(self, node_id: NodeId, topic: Topic) -> Any:
        return self.registry.capability_for(node_id).sign(topic)

    def check(self, node_id: NodeId, topic: Topic, auth: Any) -> bool:
        return self.registry.verify(node_id, topic, auth)

    def capability_of(self, node_id: NodeId) -> SigningCapability:
        return self.registry.capability_for(node_id)


class EligibilityAuthenticator(Authenticator):
    """Subquadratic world: auth = a mining ticket for the topic."""

    def __init__(self, source: EligibilitySource) -> None:
        self.source = source

    def attempt(self, node_id: NodeId, topic: Topic) -> Optional[Any]:
        return self.source.capability_for(node_id).try_mine(topic)

    def check(self, node_id: NodeId, topic: Topic, auth: Any) -> bool:
        if auth is None:
            return False
        if getattr(auth, "node_id", None) != node_id:
            return False
        if getattr(auth, "topic", None) != topic:
            return False
        return self.source.verify(auth)

    def capability_of(self, node_id: NodeId) -> MiningCapability:
        return self.source.capability_for(node_id)


class ProposerPolicy(abc.ABC):
    """Who may send ``(Propose, r, b)``, and how it is verified."""

    @abc.abstractmethod
    def attempt(self, node_id: NodeId, iteration: int, bit: Bit) -> Optional[Any]:
        """Auth for a proposal, or None if this node may not propose."""

    @abc.abstractmethod
    def check(self, node_id: NodeId, iteration: int, bit: Bit, auth: Any) -> bool:
        """Verify a received proposal's right to exist."""


class OracleProposerPolicy(ProposerPolicy):
    """Warmup worlds: the announced oracle leader signs its proposal."""

    def __init__(self, oracle: LeaderOracle, authenticator: Authenticator) -> None:
        self.oracle = oracle
        self.authenticator = authenticator

    def attempt(self, node_id: NodeId, iteration: int, bit: Bit) -> Optional[Any]:
        if self.oracle.leader(iteration) != node_id:
            return None
        return self.authenticator.attempt(node_id, ("Propose", iteration, bit))

    def check(self, node_id: NodeId, iteration: int, bit: Bit, auth: Any) -> bool:
        if self.oracle.leader(iteration) != node_id:
            return False
        return self.authenticator.check(node_id, ("Propose", iteration, bit), auth)


class MiningProposerPolicy(ProposerPolicy):
    """Compiled worlds: anyone who mines ``(Propose, r, b)`` may propose."""

    def __init__(self, source: EligibilitySource) -> None:
        self.source = source

    def attempt(self, node_id: NodeId, iteration: int, bit: Bit) -> Optional[Any]:
        return self.source.capability_for(node_id).try_mine(
            ("Propose", iteration, bit))

    def check(self, node_id: NodeId, iteration: int, bit: Bit, auth: Any) -> bool:
        if auth is None:
            return False
        if getattr(auth, "node_id", None) != node_id:
            return False
        if getattr(auth, "topic", None) != ("Propose", iteration, bit):
            return False
        return self.source.verify(auth)


@dataclass
class ProtocolInstance:
    """Everything a runner needs to simulate one protocol execution."""

    name: str
    nodes: List[Node]
    max_rounds: int
    inputs: Dict[NodeId, Bit]
    signing_capabilities: Sequence[Any] = field(default_factory=list)
    mining_capabilities: Sequence[Any] = field(default_factory=list)
    #: Mode-specific shared objects attacks may need (registry,
    #: eligibility source, leader oracle, ...).
    services: Dict[str, Any] = field(default_factory=dict)
