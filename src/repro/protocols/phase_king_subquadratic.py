"""Section 3.2: the phase-king warmup compiled with bit-specific eligibility.

Changes relative to :mod:`repro.protocols.phase_king`, exactly as the
paper lists them:

- every multicast becomes a conditional multicast gated by
  ``VRF(ACK, r, b) < D`` — eligibility is **bit-specific**;
- the ACK threshold ``2n/3`` becomes ``2λ/3``;
- the leader-election oracle disappears: a node proposes its epoch coin
  ``b`` iff ``VRF(Propose, r, b) < D0``;
- every received message's eligibility proof is verified.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.errors import ConfigurationError
from repro.protocols.base import (
    EligibilityAuthenticator,
    MiningProposerPolicy,
    ProtocolInstance,
)
from repro.protocols.phase_king import (
    DEFAULT_EPOCHS,
    PhaseKingConfig,
    PhaseKingNode,
    phase_king_rounds,
)
from repro.protocols.subquadratic_ba import FMINE_MODE, make_eligibility
from repro.rng import Seed
from repro.types import Bit, NodeId, SecurityParameters


def ack_threshold(params: SecurityParameters) -> int:
    """The ``2λ/3`` quorum threshold of Section 3.2."""
    return max(1, math.ceil(2 * params.lam / 3))


def build_phase_king_subquadratic(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    params: SecurityParameters = SecurityParameters(),
    epochs: int = DEFAULT_EPOCHS,
    mode: str = FMINE_MODE,
    group: SchnorrGroup = TEST_GROUP,
    eligibility=None,
    coin_cache=None,
) -> ProtocolInstance:
    """The compiled phase-king protocol, tolerating ``(1/3 - ε) n``.

    A pre-built ``eligibility`` source may be supplied (the Theorem 3
    experiment shares one random-oracle-style lottery across executions);
    ``coin_cache`` shares the ideal lottery's coins across instances (see
    :func:`~repro.protocols.subquadratic_ba.make_eligibility`).
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(
            f"phase-king requires f < n/3: n={n}, f={f}")
    if eligibility is None:
        eligibility = make_eligibility(n, params, seed, mode, group,
                                       coin_cache=coin_cache)
    config = PhaseKingConfig(
        threshold=ack_threshold(params),
        authenticator=EligibilityAuthenticator(eligibility),
        proposer=MiningProposerPolicy(eligibility),
        epochs=epochs,
    )
    nodes = [PhaseKingNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    input_map: Dict[NodeId, Bit] = {i: inputs[i] for i in range(n)}
    return ProtocolInstance(
        name=f"phase-king-subquadratic[{mode}]",
        nodes=nodes,
        max_rounds=phase_king_rounds(epochs),
        inputs=input_map,
        signing_capabilities=[],
        mining_capabilities=[eligibility.capability_for(i) for i in range(n)],
        services={
            "eligibility": eligibility,
            "authenticator": config.authenticator,
            "threshold": config.threshold,
            "params": params,
            "config": config,
        },
    )
