"""The Section 3.1 warmup: sticky-flag phase-king BA, tolerating < n/3.

Epochs ``r = 0 .. R-1`` of two synchronous rounds each:

1. **Propose round** — the epoch's leader flips a random coin ``b`` and
   multicasts ``(propose, r, b)``.
2. **ACK round** — every node sets ``b* := b_i`` if its sticky flag is 1
   or no valid leader proposal was heard, else ``b* :=`` the proposal, and
   multicasts ``(ACK, r, b*)``.

At the start of the next epoch each node tallies the ACKs: on at least
``2n/3`` ACKs for the same ``b*`` from distinct nodes it sets
``b_i := b*`` and ``F := 1``, else ``F := 0``.  After ``R = ω(log κ)``
epochs a node outputs the bit it last ACKed (0 if it never ACKed).

The same node class also runs the Section 3.2 compiled protocol (see
:mod:`repro.protocols.phase_king_subquadratic`): conditional multicasts,
``2λ/3`` threshold, and self-elected (mined) proposers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.base import (
    Authenticator,
    OracleProposerPolicy,
    ProposerPolicy,
    ProtocolInstance,
    SignatureAuthenticator,
)
from repro.protocols.messages import AckMsg, PhaseKingProposeMsg
from repro.protocols.verification import VerificationCache
from repro.rng import Seed
from repro.sim.leader import LeaderOracle, RoundRobinLeaderOracle
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId

DEFAULT_EPOCHS = 20


@dataclass
class PhaseKingConfig:
    threshold: int
    authenticator: Authenticator
    proposer: ProposerPolicy
    epochs: int
    #: Execution-wide memo for the public verification predicates; the
    #: nodes of one instance share it (see repro.protocols.verification).
    verification: VerificationCache = field(default_factory=VerificationCache)


def phase_king_rounds(epochs: int) -> int:
    """Two rounds per epoch plus one final tally round."""
    return 2 * epochs + 1


class PhaseKingNode(Node):
    """One party of the phase-king protocol (warmup or compiled)."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: PhaseKingConfig) -> None:
        super().__init__(node_id, n)
        self.config = config
        self.belief: Bit = input_bit
        self.sticky: bool = True  # F = 1 at initialization (footnote 4)
        self.last_acked: Optional[Bit] = None
        # (epoch, bit) -> set of distinct ACKers.
        self.acks_seen: Dict[Tuple[int, Bit], Set[NodeId]] = {}
        # epoch -> set of valid proposal bits heard.
        self.proposals_heard: Dict[int, Set[Bit]] = {}
        # Content-addressed memo shared across the instance's nodes: an
        # ACK or proposal is verified once per execution, not once per
        # recipient.
        self._verification = config.verification

    # -- message intake -----------------------------------------------------
    def _process_inbox(self, ctx: RoundContext) -> None:
        for delivery in ctx.inbox:
            msg = delivery.payload
            if isinstance(msg, PhaseKingProposeMsg):
                if msg.bit in (0, 1) and self._verification.check_proposal(
                        self.config.proposer, msg.sender, msg.epoch,
                        msg.bit, msg.auth):
                    self.proposals_heard.setdefault(msg.epoch, set()).add(msg.bit)
            elif isinstance(msg, AckMsg):
                if msg.bit in (0, 1) and self._verification.check_auth(
                        self.config.authenticator, msg.sender,
                        ("ACK", msg.epoch, msg.bit), msg.auth):
                    self.acks_seen.setdefault(
                        (msg.epoch, msg.bit), set()).add(msg.sender)

    def _tally(self, epoch: int) -> None:
        """Step 3: adopt a bit with ample ACKs, else clear the sticky flag."""
        counts = {bit: len(self.acks_seen.get((epoch, bit), set()))
                  for bit in (0, 1)}
        winners = [bit for bit in (0, 1) if counts[bit] >= self.config.threshold]
        if winners:
            # Two winners is impossible for f < n/3 (quorum intersection);
            # break deterministically for out-of-model sweeps.
            chosen = max(winners, key=lambda bit: (counts[bit], -bit))
            self.belief = chosen
            self.sticky = True
        else:
            self.sticky = False

    # -- round behaviour --------------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        self._process_inbox(ctx)
        epoch, is_ack_round = divmod(ctx.round, 2)
        if epoch >= self.config.epochs:
            # Final tally round: absorb the last epoch's ACKs and stop.
            self._tally(self.config.epochs - 1)
            self.decide(self.finalize(), ctx.round)
            self.halted = True
            return
        if not is_ack_round:
            if epoch > 0:
                self._tally(epoch - 1)
            # Propose round: flip the epoch coin and (conditionally) propose.
            coin: Bit = ctx.rng.randrange(2)
            auth = self.config.proposer.attempt(self.node_id, epoch, coin)
            if auth is not None:
                ctx.multicast(PhaseKingProposeMsg(
                    epoch=epoch, bit=coin, sender=self.node_id, auth=auth))
        else:
            # ACK round: pick b* per step 2 and (conditionally) ACK it.
            proposals = self.proposals_heard.get(epoch, set())
            if self.sticky or not proposals:
                chosen = self.belief
            else:
                chosen = min(proposals)  # arbitrary tie-break is allowed
            # The node's output tracks the bit it *chose* to ACK each epoch
            # (in the warmup everyone sends, so this equals "last ACK
            # sent"; in the compiled protocol a node keeps its choice even
            # when the lottery denies it the right to multicast it).
            self.last_acked = chosen
            auth = self.config.authenticator.attempt(
                self.node_id, ("ACK", epoch, chosen))
            if auth is not None:
                ctx.multicast(AckMsg(epoch=epoch, bit=chosen,
                                     sender=self.node_id, auth=auth))
                self.acks_seen.setdefault(
                    (epoch, chosen), set()).add(self.node_id)

    def output(self) -> Optional[Bit]:
        if not self.halted:
            return None
        return self.last_acked if self.last_acked is not None else 0

    def finalize(self) -> Bit:
        return self.last_acked if self.last_acked is not None else 0


def build_phase_king(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    epochs: int = DEFAULT_EPOCHS,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
) -> ProtocolInstance:
    """The warmup of Section 3.1: signed multicasts, 2n/3 quorums."""
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(
            f"phase-king requires f < n/3: n={n}, f={f}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = SignatureAuthenticator(registry)
    leader_oracle = oracle if oracle is not None else RoundRobinLeaderOracle(n)
    config = PhaseKingConfig(
        threshold=math.ceil(2 * n / 3),
        authenticator=authenticator,
        proposer=OracleProposerPolicy(leader_oracle, authenticator),
        epochs=epochs,
    )
    nodes = [PhaseKingNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    return ProtocolInstance(
        name="phase-king",
        nodes=nodes,
        max_rounds=phase_king_rounds(epochs),
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "authenticator": authenticator,
            "oracle": leader_oracle,
            "threshold": config.threshold,
            "config": config,
        },
    )
