"""The Section 3.1 warmup: sticky-flag phase-king BA, tolerating < n/3.

Epochs ``r = 0 .. R-1`` of two synchronous rounds each:

1. **Propose round** — the epoch's leader flips a random coin ``b`` and
   multicasts ``(propose, r, b)``.
2. **ACK round** — every node sets ``b* := b_i`` if its sticky flag is 1
   or no valid leader proposal was heard, else ``b* :=`` the proposal, and
   multicasts ``(ACK, r, b*)``.

At the start of the next epoch each node tallies the ACKs: on at least
``2n/3`` ACKs for the same ``b*`` from distinct nodes it sets
``b_i := b*`` and ``F := 1``, else ``F := 0``.  After ``R = ω(log κ)``
epochs a node outputs the bit it last ACKed (0 if it never ACKed).

The same node class also runs the Section 3.2 compiled protocol (see
:mod:`repro.protocols.phase_king_subquadratic`): conditional multicasts,
``2λ/3`` threshold, and self-elected (mined) proposers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.base import (
    Authenticator,
    OracleProposerPolicy,
    ProposerPolicy,
    ProtocolInstance,
    SignatureAuthenticator,
)
from repro.protocols.messages import (
    AckMsg,
    PhaseKingDecideMsg,
    PhaseKingProposeMsg,
)
from repro.protocols.verification import VerificationCache
from repro.rng import Seed
from repro.sim.leader import LeaderOracle, RoundRobinLeaderOracle
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId

DEFAULT_EPOCHS = 20


@dataclass
class PhaseKingConfig:
    threshold: int
    authenticator: Authenticator
    proposer: ProposerPolicy
    epochs: int
    #: Execution-wide memo for the public verification predicates; the
    #: nodes of one instance share it (see repro.protocols.verification).
    verification: VerificationCache = field(default_factory=VerificationCache)
    #: GST-aware early stopping (the ``phase-king-early-stop`` registry
    #: key): a node that observes a *unanimous* epoch — authenticated
    #: ACKs for one bit from all ``n`` nodes — multicasts the ACK set as
    #: a transferable unanimity certificate (:class:`PhaseKingDecideMsg`)
    #: and halts instead of running out the epoch budget.  Detection is
    #: gated on ``trusted_send_round``: a unanimous-looking epoch
    #: observed while drops or partitions are still possible may be an
    #: artifact of one node's view (see ``docs/PROTOCOLS.md``).
    early_stop_unanimity: bool = False
    #: First protocol round whose sends provably reach every honest node
    #: (``NetworkConditions.trusted_send_round``; 0 under lock-step).
    trusted_send_round: int = 0


def phase_king_rounds(epochs: int) -> int:
    """Two rounds per epoch plus one final tally round."""
    return 2 * epochs + 1


class PhaseKingNode(Node):
    """One party of the phase-king protocol (warmup or compiled)."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: PhaseKingConfig) -> None:
        super().__init__(node_id, n)
        self.config = config
        self.belief: Bit = input_bit
        self.sticky: bool = True  # F = 1 at initialization (footnote 4)
        self.last_acked: Optional[Bit] = None
        # (epoch, bit) -> set of distinct ACKers.
        self.acks_seen: Dict[Tuple[int, Bit], Set[NodeId]] = {}
        # epoch -> set of valid proposal bits heard.
        self.proposals_heard: Dict[int, Set[Bit]] = {}
        # Content-addressed memo shared across the instance's nodes: an
        # ACK or proposal is verified once per execution, not once per
        # recipient.
        self._verification = config.verification
        # Early-stopping bookkeeping (populated only when the variant is
        # enabled): the authenticated ACK objects per (epoch, bit) — the
        # raw material of a unanimity certificate — and a decision
        # adopted from a received certificate, applied at the top of the
        # next on_round.
        self._ack_msgs: Dict[Tuple[int, Bit], Dict[NodeId, AckMsg]] = {}
        self._adopted_decision: Optional[Tuple[int, Bit]] = None

    # -- message intake -----------------------------------------------------
    def _process_inbox(self, ctx: RoundContext) -> None:
        for delivery in ctx.inbox:
            msg = delivery.payload
            if isinstance(msg, PhaseKingProposeMsg):
                if msg.bit in (0, 1) and self._verification.check_proposal(
                        self.config.proposer, msg.sender, msg.epoch,
                        msg.bit, msg.auth):
                    self.proposals_heard.setdefault(msg.epoch, set()).add(msg.bit)
            elif isinstance(msg, AckMsg):
                if msg.bit in (0, 1) and self._verification.check_auth(
                        self.config.authenticator, msg.sender,
                        ("ACK", msg.epoch, msg.bit), msg.auth):
                    self.acks_seen.setdefault(
                        (msg.epoch, msg.bit), set()).add(msg.sender)
                    if self.config.early_stop_unanimity:
                        self._ack_msgs.setdefault(
                            (msg.epoch, msg.bit), {}).setdefault(
                                msg.sender, msg)
            elif isinstance(msg, PhaseKingDecideMsg):
                if (self.config.early_stop_unanimity
                        and self._decide_msg_valid(msg)):
                    self._adopted_decision = (msg.epoch, msg.bit)

    def _decide_msg_valid(self, msg: PhaseKingDecideMsg) -> bool:
        """A decide message is exactly as good as the unanimity
        certificate it carries: ``n`` authenticated epoch-``r`` ACKs for
        one bit, from a trusted (fully synchronous) epoch.  The sender's
        own authority is irrelevant — a valid certificate is
        transferable proof regardless of who relays it."""
        if msg.bit not in (0, 1):
            return False
        if 2 * msg.epoch + 1 < self.config.trusted_send_round:
            return False
        ackers: Set[NodeId] = set()
        for ack in msg.acks:
            if ack.epoch != msg.epoch or ack.bit != msg.bit:
                return False
            if not self._verification.check_auth(
                    self.config.authenticator, ack.sender,
                    ("ACK", ack.epoch, ack.bit), ack.auth):
                return False
            ackers.add(ack.sender)
        return len(ackers) >= self.n

    def _tally(self, epoch: int) -> None:
        """Step 3: adopt a bit with ample ACKs, else clear the sticky flag."""
        counts = {bit: len(self.acks_seen.get((epoch, bit), set()))
                  for bit in (0, 1)}
        winners = [bit for bit in (0, 1) if counts[bit] >= self.config.threshold]
        if winners:
            # Two winners is impossible for f < n/3 (quorum intersection);
            # break deterministically for out-of-model sweeps.
            chosen = max(winners, key=lambda bit: (counts[bit], -bit))
            self.belief = chosen
            self.sticky = True
        else:
            self.sticky = False

    # -- early stopping ------------------------------------------------------
    def _unanimity_bit(self, epoch: int) -> Optional[Bit]:
        """The bit all ``n`` nodes ACKed in ``epoch``, if the epoch was
        unanimous and its ACK round is past the trusted-send round."""
        if 2 * epoch + 1 < self.config.trusted_send_round:
            return None
        for bit in (0, 1):
            if len(self.acks_seen.get((epoch, bit), ())) >= self.n:
                return bit
        return None

    def _early_decide(self, ctx: RoundContext, epoch: int, bit: Bit,
                      certificate: Optional[Tuple[AckMsg, ...]]) -> None:
        """Adopt ``bit``, publish the unanimity certificate (detection
        only — adopters received the certificate by multicast, so every
        honest node already has it), and halt."""
        self.belief = bit
        self.sticky = True
        self.last_acked = bit
        self.decide(bit, ctx.round)
        if certificate is not None:
            auth = self.config.authenticator.attempt(
                self.node_id, ("Decide", epoch, bit))
            if auth is not None:
                ctx.multicast(PhaseKingDecideMsg(
                    epoch=epoch, bit=bit, acks=certificate,
                    sender=self.node_id, auth=auth))
        self.halted = True

    # -- round behaviour --------------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        self._process_inbox(ctx)
        if self._adopted_decision is not None:
            epoch, bit = self._adopted_decision
            self._early_decide(ctx, epoch, bit, certificate=None)
            return
        epoch, is_ack_round = divmod(ctx.round, 2)
        if epoch >= self.config.epochs:
            # Final tally round: absorb the last epoch's ACKs and stop.
            self._tally(self.config.epochs - 1)
            self.decide(self.finalize(), ctx.round)
            self.halted = True
            return
        if not is_ack_round:
            if epoch > 0:
                self._tally(epoch - 1)
                if self.config.early_stop_unanimity:
                    unanimous = self._unanimity_bit(epoch - 1)
                    if unanimous is not None:
                        acks = self._ack_msgs.get((epoch - 1, unanimous), {})
                        self._early_decide(
                            ctx, epoch - 1, unanimous,
                            certificate=tuple(
                                acks[node] for node in sorted(acks)))
                        return
            # Propose round: flip the epoch coin and (conditionally) propose.
            coin: Bit = ctx.rng.randrange(2)
            auth = self.config.proposer.attempt(self.node_id, epoch, coin)
            if auth is not None:
                ctx.multicast(PhaseKingProposeMsg(
                    epoch=epoch, bit=coin, sender=self.node_id, auth=auth))
        else:
            # ACK round: pick b* per step 2 and (conditionally) ACK it.
            proposals = self.proposals_heard.get(epoch, set())
            if self.sticky or not proposals:
                chosen = self.belief
            else:
                chosen = min(proposals)  # arbitrary tie-break is allowed
            # The node's output tracks the bit it *chose* to ACK each epoch
            # (in the warmup everyone sends, so this equals "last ACK
            # sent"; in the compiled protocol a node keeps its choice even
            # when the lottery denies it the right to multicast it).
            self.last_acked = chosen
            auth = self.config.authenticator.attempt(
                self.node_id, ("ACK", epoch, chosen))
            if auth is not None:
                ack = AckMsg(epoch=epoch, bit=chosen,
                             sender=self.node_id, auth=auth)
                ctx.multicast(ack)
                self.acks_seen.setdefault(
                    (epoch, chosen), set()).add(self.node_id)
                if self.config.early_stop_unanimity:
                    self._ack_msgs.setdefault(
                        (epoch, chosen), {}).setdefault(self.node_id, ack)

    def output(self) -> Optional[Bit]:
        if not self.halted:
            return None
        return self.last_acked if self.last_acked is not None else 0

    def finalize(self) -> Bit:
        return self.last_acked if self.last_acked is not None else 0


def build_phase_king(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    epochs: int = DEFAULT_EPOCHS,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
) -> ProtocolInstance:
    """The warmup of Section 3.1: signed multicasts, 2n/3 quorums."""
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(
            f"phase-king requires f < n/3: n={n}, f={f}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = SignatureAuthenticator(registry)
    leader_oracle = oracle if oracle is not None else RoundRobinLeaderOracle(n)
    config = PhaseKingConfig(
        threshold=math.ceil(2 * n / 3),
        authenticator=authenticator,
        proposer=OracleProposerPolicy(leader_oracle, authenticator),
        epochs=epochs,
    )
    nodes = [PhaseKingNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    return ProtocolInstance(
        name="phase-king",
        nodes=nodes,
        max_rounds=phase_king_rounds(epochs),
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "authenticator": authenticator,
            "oracle": leader_oracle,
            "threshold": config.threshold,
            "config": config,
        },
    )
