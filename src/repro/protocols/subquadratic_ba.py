"""The headline protocol: subquadratic BA via vote-specific eligibility
(Appendix C.2, Theorem 2 / Theorem 17).

The quadratic warmup compiled per Section C.2:

- every multicast becomes a *conditional* multicast, gated by
  ``Fmine.mine(i, (T, r, b))`` (or a real VRF in ``vrf`` mode) — note the
  topic includes the **bit**, the paper's key insight;
- quorum thresholds shrink from ``f + 1`` to ``λ/2``;
- the leader oracle disappears: a node proposes iff it mines
  ``(Propose, r, b)`` at difficulty ``1/2n``;
- every received message is verified via ``Fmine.verify`` / VRF proofs.

Tolerates ``(1/2 - ε)n`` adaptive corruptions (without after-the-fact
removal), terminates in expected O(1) iterations, and multicasts
``O(λ²)`` messages of ``O(λ(log κ + log n))`` bits — independent of n.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.eligibility.base import EligibilitySource
from repro.eligibility.difficulty import DifficultySchedule
from repro.eligibility.fmine import FMineEligibility
from repro.eligibility.vrf_eligibility import VrfEligibility
from repro.errors import ConfigurationError
from repro.protocols.aba import AbaConfig, AbaNode, rounds_for_iterations
from repro.protocols.base import (
    EligibilityAuthenticator,
    MiningProposerPolicy,
    ProtocolInstance,
)
from repro.rng import Seed
from repro.types import Bit, NodeId, SecurityParameters

DEFAULT_MAX_ITERATIONS = 40

FMINE_MODE = "fmine"
VRF_MODE = "vrf"


def committee_threshold(params: SecurityParameters) -> int:
    """The ``λ/2`` quorum threshold of Appendix C.2."""
    return max(1, math.ceil(params.lam / 2))


def make_eligibility(n: int, params: SecurityParameters, seed: Seed,
                     mode: str = FMINE_MODE,
                     group: SchnorrGroup = TEST_GROUP,
                     coin_cache=None) -> EligibilitySource:
    """The eligibility source for the requested world.

    ``fmine`` is the hybrid world of Appendix C (fast, ideal);
    ``vrf`` is the compiled real world of Appendix D (real proofs).
    ``coin_cache`` (a :class:`~repro.eligibility.lottery_cache.\
SharedLotteryCache`) shares the ideal lottery's coins across instances
    built with the same seed and schedule; it is ignored in ``vrf`` mode,
    whose NIZK proofs consume prover randomness in call order and so
    cannot be shared without changing proof bytes.
    """
    schedule = DifficultySchedule.for_parameters(params, n)
    if mode == FMINE_MODE:
        return FMineEligibility(n, schedule, seed, coin_cache=coin_cache)
    if mode == VRF_MODE:
        return VrfEligibility(n, schedule, seed, group)
    raise ConfigurationError(f"unknown eligibility mode {mode!r}")


def build_subquadratic_ba(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    params: SecurityParameters = SecurityParameters(),
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    mode: str = FMINE_MODE,
    group: SchnorrGroup = TEST_GROUP,
    eligibility: EligibilitySource = None,
    coin_cache=None,
) -> ProtocolInstance:
    """Construct a subquadratic-BA execution over ``n`` nodes.

    ``f`` must stay below ``(1/2 - ε) n`` for the Theorem 17 guarantees;
    the builder enforces only the hard bound ``n > 2f`` and leaves
    resilience sweeps free to exercise the boundary.  A pre-built
    ``eligibility`` source may be supplied (the Theorem 3 experiment uses
    this to share one random-oracle-style lottery across executions);
    ``coin_cache`` shares the ideal lottery's coins across instances (see
    :func:`make_eligibility`).
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 2 * f:
        raise ConfigurationError(
            f"subquadratic BA requires honest majority: n={n} > 2f={2 * f}")
    if eligibility is None:
        eligibility = make_eligibility(n, params, seed, mode, group,
                                       coin_cache=coin_cache)
    authenticator = EligibilityAuthenticator(eligibility)
    config = AbaConfig(
        threshold=committee_threshold(params),
        authenticator=authenticator,
        proposer=MiningProposerPolicy(eligibility),
        max_iterations=max_iterations,
    )
    nodes = [AbaNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    input_map: Dict[NodeId, Bit] = {i: inputs[i] for i in range(n)}
    return ProtocolInstance(
        name=f"subquadratic-ba[{mode}]",
        nodes=nodes,
        max_rounds=rounds_for_iterations(max_iterations) + 2,
        inputs=input_map,
        signing_capabilities=[],
        mining_capabilities=[eligibility.capability_for(i) for i in range(n)],
        services={
            "eligibility": eligibility,
            "authenticator": authenticator,
            "threshold": committee_threshold(params),
            "params": params,
            "config": config,
        },
    )
