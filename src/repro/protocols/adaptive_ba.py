"""Adaptive BA: communication scales with the *actual* fault count.

The paper asks how few words Byzantine agreement needs against a
worst-case adversary; the natural "revisited" follow-up — Cohen, Keidar
and Spiegelman's "Make Every Word Count" (and the "From Few to Many
Faults" frontier after it) — asks how few it needs against the faults
that actually *show up*.  Their answer is O((f* + 1) · n) words, where
``f* <= f`` is the number of parties that really deviate: a silent
all-honest execution should cost a linear number of words, and every
observed fault may buy the adversary at most one more linear-cost
amplification round, with the quadratic worst case reached only at
``f* ≈ f``.

This module implements that regime against the repo's simulation
contract, reusing :mod:`repro.protocols.certificates` and the shared
:class:`~repro.protocols.verification.VerificationCache` exactly like
the leader family does.  Resilience **as implemented** is ``n > 3f``
(certificate threshold ``n - f``; two quorums overlap in ``n - 2f > f``
nodes, more than the possible double-voters — the same argument as
``leader_ba``; the CKS original achieves ``n > 2f`` with heavier
view-change machinery this reproduction does not need for its
communication claims).

Epochs: the execution proceeds in epochs ``e = 1, 2, ...``, each with a
round-robin **collector** ``(e - 1) mod n`` and :data:`EPOCH_ROUNDS`
lock-step rounds:

1. **Report** — every active node *unicasts* a
   :class:`~repro.protocols.messages.SignedVote` for its current belief
   to the epoch's collector (auth topic ``("Vote", e, b)``, the
   certificate machinery's native format).  Cost: at most ``n - 1``
   words — point-to-point, not multicast; this is where adaptivity
   comes from.
2. **Propose** — the collector, holding the reports:

   - if some bit has ``n - f`` valid votes, it assembles the epoch
     certificate (:func:`~repro.protocols.certificates.
     certificate_from_votes`) and multicasts an
     :class:`AdaptiveProposeMsg` carrying it (``n - 1`` words);
   - otherwise (split beliefs) it multicasts an
     :class:`AdaptiveKingMsg` for the most-reported bit, justified by
     ``f + 1`` of the reports it received — corrupt nodes alone are one
     vote short, so a bit no honest node believes is never adopted
     (agreement validity).  Unlocked nodes adopt the king bit as their
     next belief, re-unifying split inputs exactly like phase-king —
     except the king's cost is linear, not quadratic.

3. **Ack** — a node that received a valid epoch-``e`` propose locks its
   certificate (locks only grow in epoch rank) and unicasts a signed
   ack back to the collector (``n - 1`` words).
4. **Decide** — on ``n - f`` valid acks the collector multicasts an
   :class:`AdaptiveDecideMsg` carrying the ack quorum (transferable,
   each ack individually authenticated) and decides.  Recipients verify
   the quorum, decide, and — under lock-step, where every send is
   trusted — halt *silently*: the fast path never multicasts from more
   than one node.

**Words as implemented** (classical messages, Definition 6: a multicast
is ``n - 1`` pairwise words): a fault-free unanimous execution decides
in epoch 1 for at most ``4(n - 1)`` words — reports, one propose
multicast, acks, one decide multicast — i.e. ``c · n`` with ``c = 4``.
Every actually-faulty collector can silence (or stall) at most its own
epoch, wasting the ``<= n - 1`` report words sent to it, so ``k``
observed faults cost at most ``k`` extra epochs before an honest
collector presides and decides: total words ``<= 4(n - 1) + k(n - 1) =
O((f* + 1) · n)``, versus the quadratic protocol's ``Θ(n²)`` — the
``words-vs-actual-f`` sweep plots exactly this against the
Dolev–Reischuk Ω(f²) floor.

**Safety** (the ``n > 3f`` overlap argument): a decision on ``b`` at
epoch ``e`` means ``n - f`` acks, hence ``>= n - 2f > f`` honest nodes
locked on ``b``.  Honest nodes report their locked bit in later epochs,
so a conflicting certificate for ``1 - b`` would need ``n - f`` votes
drawn from the ``<= 2f < n - f`` nodes that are corrupt or unlocked —
it never forms, and neither does the conflicting decide quorum behind
it.  Same-epoch conflicting certificates are impossible outright: two
``n - f`` quorums overlap in more than the ``f`` possible double-voters
and honest nodes report once per epoch.

**Escalation budget**: the default epoch budget is ``f + 2`` plus the
epochs burned before the conditions' trusted-send round (as in the
leader family's view budget): among any ``f* + 2`` consecutive distinct
collectors at most ``f*`` are faulty, so two consecutive honest-
collector epochs occur within the budget — the first unifies beliefs
through the king path if needed, the second certifies and decides.

Deciders under partial synchrony re-announce their decide message at
epoch boundaries until a round at or past
:func:`~repro.protocols.early_stopping.trusted_send_round_for`, exactly
like the leader family's drain gate, so no laggard is stranded behind a
pre-GST drop; the silent halt happens only once the quorum's send round
was itself trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.base import (
    Authenticator,
    ProtocolInstance,
    SignatureAuthenticator,
)
from repro.protocols.certificates import (
    Certificate,
    certificate_from_votes,
    rank,
)
from repro.protocols.early_stopping import trusted_send_round_for
from repro.protocols.messages import SignedVote
from repro.protocols.verification import CACHE_LIMIT, VerificationCache
from repro.rng import Seed
from repro.serialization import _intern_field_key, intern_by_key, intern_payload
from repro.sim.conditions import NetworkConditions
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId, Round

#: Lock-step rounds per epoch, in phase order.
PHASE_REPORT = "Report"
PHASE_PROPOSE = "Propose"
PHASE_ACK = "Ack"
PHASE_DECIDE = "Decide"

_PHASES = (PHASE_REPORT, PHASE_PROPOSE, PHASE_ACK, PHASE_DECIDE)

EPOCH_ROUNDS = len(_PHASES)

#: The documented fast-path constant: a fault-free unanimous execution
#: costs at most ``FAST_PATH_WORD_FACTOR * n`` classical words (reports,
#: one propose multicast, acks, one decide multicast — each at most
#: ``n - 1`` words).
FAST_PATH_WORD_FACTOR = 4


def epoch_schedule(round_index: Round) -> Tuple[int, str]:
    """Map a global protocol round to ``(epoch, phase)`` (epochs 1-based)."""
    epoch, offset = divmod(round_index, EPOCH_ROUNDS)
    return epoch + 1, _PHASES[offset]


def epoch_of_round(round_index: Round) -> int:
    """The (1-based) epoch a global protocol round belongs to."""
    return round_index // EPOCH_ROUNDS + 1


def collector_of(epoch: int, n: int) -> NodeId:
    """The round-robin collector of an epoch (epochs 1-based)."""
    return (epoch - 1) % n


def rounds_for_epochs(epochs: int) -> int:
    """Round budget for ``epochs`` full epochs plus two trailing delivery
    rounds, so the last epoch's decide multicast can land and be tallied."""
    if epochs < 1:
        raise ValueError("need at least one epoch")
    return EPOCH_ROUNDS * epochs + 2


def default_epochs(f: int, conditions: Optional[NetworkConditions]) -> int:
    """The Δ-derived epoch budget.

    ``ceil(trusted_send_round / EPOCH_ROUNDS)`` epochs may burn before
    sends are reliable; after that, any ``f + 2`` consecutive distinct
    collectors contain two consecutive honest ones — one to unify split
    beliefs through the king path, one to certify and decide.
    """
    trusted = trusted_send_round_for(conditions)
    burned = -(-trusted // EPOCH_ROUNDS)  # ceil division
    return burned + f + 2


def escalations_of(result: Any) -> int:
    """Fault-triggered escalation epochs a finished execution burned.

    Zero on the silent fast path (a decision inside epoch 1); each
    escalation is one epoch that ended without settling the execution.
    Derived like :func:`~repro.protocols.leader_ba.decision_view_of`:
    the last honest decision round's epoch when everyone decided (the
    decide multicast lands one round after the quorum was certified),
    otherwise the epoch of the last executed round, clamped to the
    budgeted epochs.
    """
    rounds = result.decision_rounds()
    if rounds and result.all_decided():
        return epoch_of_round(max(max(rounds) - 1, 0)) - 1
    settled = epoch_of_round(max(result.rounds_executed - 1, 0))
    budget = getattr(result, "rounds_budget", None)
    if budget is not None and budget > EPOCH_ROUNDS:
        # The budget pads two trailing delivery rounds past the last
        # epoch (rounds_for_epochs); an exhausted run must not report
        # those as an escalation of their own.
        settled = min(settled, (budget - 2) // EPOCH_ROUNDS)
    return settled - 1


def actual_faults_of(result: Any) -> int:
    """The execution's observed fault count f* (corruptions used)."""
    return result.corruptions_used


def words_of(result: Any) -> int:
    """Total classical words of an execution (Definition 6: a multicast
    counts as ``n - 1`` pairwise words) — the adaptive family's metric,
    since its fast path is built from unicasts the multicast-complexity
    columns do not see."""
    return result.metrics.classical_message_count


# ---------------------------------------------------------------------------
# Messages.  Reports are plain SignedVote payloads (the certificate
# machinery's native format); everything else is epoch-tagged.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveProposeMsg:
    """The collector's certified proposal: ``cert`` is an epoch-``e``
    certificate (``n - f`` votes) for ``bit``; ``auth`` signs
    ``("Propose", epoch, bit)``.  Only the epoch's round-robin collector
    may send one."""

    epoch: int
    bit: Bit
    cert: Certificate
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class AdaptiveKingMsg:
    """The collector's unification fallback when no bit reached the
    certificate threshold: ``votes`` are ``f + 1`` distinct epoch-``e``
    reports for ``bit`` — corrupt nodes alone are one short, so a bit no
    honest node reported can never be pushed (agreement validity).
    Unlocked recipients adopt ``bit`` as their next belief."""

    epoch: int
    bit: Bit
    votes: Tuple[SignedVote, ...]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class AdaptiveAckMsg:
    """``(Ack, e, b)``: the sender locked epoch ``e``'s certificate for
    ``b``; ``n - f`` of these form the decide quorum."""

    epoch: int
    bit: Bit
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class AdaptiveDecideMsg:
    """``(Decide, e, b)`` carrying the ``n - f`` ack quorum.

    Transferable proof: each attached ack is authenticated individually
    (never through the certificate cache — an ack quorum must not be
    replayable as a vote certificate)."""

    epoch: int
    bit: Bit
    acks: Tuple[AdaptiveAckMsg, ...]
    sender: NodeId
    auth: Any


# ---------------------------------------------------------------------------
# Config and node.
# ---------------------------------------------------------------------------


@dataclass
class AdaptiveBaConfig:
    """Shared parameters of one adaptive-BA execution."""

    threshold: int  # n - f certificates and ack quorums (n > 3f overlap)
    king_quorum: int  # f + 1 reports justify a king bit
    epochs: int
    authenticator: Authenticator
    #: Execution-wide memo for the public verification predicates; the
    #: nodes of one instance share it (see repro.protocols.verification).
    verification: VerificationCache = field(default_factory=VerificationCache)
    #: First protocol round whose sends provably reach every honest node
    #: (0 under lock-step).  Deciders re-announce their decide message at
    #: epoch boundaries until a round at or past this one, then halt; a
    #: decide quorum sent at or past it lets recipients halt silently.
    trusted_send_round: Round = 0


class AdaptiveBaNode(Node):
    """One party of the adaptive collector-based protocol."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: AdaptiveBaConfig) -> None:
        super().__init__(node_id, n)
        self.config = config
        self.input_bit = input_bit
        #: Current belief: the input, until a king or certificate moves it.
        self.belief: Bit = input_bit
        #: The lock: highest-epoch propose certificate seen (None = none).
        self.locked: Optional[Certificate] = None
        # (epoch, bit) -> voter -> auth, valid reports only (collector role).
        self.votes_seen: Dict[Tuple[int, Bit], Dict[NodeId, Any]] = {}
        # (epoch, bit) -> sender -> AdaptiveAckMsg, valid acks only.
        self.acks_seen: Dict[Tuple[int, Bit], Dict[NodeId,
                                                   AdaptiveAckMsg]] = {}
        # Valid proposes per epoch (a corrupt collector may equivocate —
        # same-epoch certificates for both bits cannot both verify, but
        # duplicate sends can land).
        self.proposals: Dict[int, AdaptiveProposeMsg] = {}
        self._final_msg: Optional[AdaptiveDecideMsg] = None
        self._decided_bit: Optional[Bit] = None
        self._verification = config.verification
        # Per-node identity front for certificates (same contract as
        # LeaderBaNode._cert_cache: each received object resolved once).
        self._cert_cache: Dict[int, Tuple[Certificate, bool]] = {}

    # -- validation helpers --------------------------------------------------
    def _check_auth(self, node_id: NodeId, topic: Any, auth: Any) -> bool:
        return self._verification.check_auth(
            self.config.authenticator, node_id, topic, auth)

    def _check_report(self, vote: SignedVote) -> bool:
        return self._verification.check_vote(self.config.authenticator, vote)

    def _check_cert(self, cert: Certificate, epoch: int, bit: Bit) -> bool:
        if cert.iteration != epoch or cert.bit != bit:
            return False
        entry = self._cert_cache.get(id(cert))
        if entry is not None and entry[0] is cert:
            return entry[1]
        result = self._verification.check_certificate(
            cert, self.config.threshold, self._check_report)
        if len(self._cert_cache) >= CACHE_LIMIT:
            self._cert_cache.clear()
        self._cert_cache[id(cert)] = (cert, result)
        return result

    def _absorb_cert(self, cert: Certificate) -> None:
        """Adopt a (pre-validated) certificate as the lock if it outranks
        it; the lock's epoch is monotone over the whole execution."""
        if cert.iteration > rank(self.locked):
            self.locked = cert
            self.belief = cert.bit

    def _is_collector(self, epoch: int) -> bool:
        return collector_of(epoch, self.n) == self.node_id

    # -- inbox processing ----------------------------------------------------
    def _process_inbox(self, ctx: RoundContext) -> None:
        front = self._verification.valid_payloads
        for delivery in ctx.inbox:
            msg = delivery.payload
            entry = front.get(id(msg))
            known = entry is not None and entry[0] is msg
            cls = msg.__class__
            if cls is SignedVote:
                self._handle_report(msg, known)
            elif cls is AdaptiveAckMsg:
                self._handle_ack(msg, known)
            elif cls is AdaptiveProposeMsg:
                self._handle_propose(msg, known)
            elif cls is AdaptiveKingMsg:
                self._handle_king(msg, known)
            elif cls is AdaptiveDecideMsg:
                self._handle_decide(msg, known)

    def _handle_report(self, msg: SignedVote, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_report(msg):
                return
            self._verification.mark_valid(msg)
        self.votes_seen.setdefault(
            (msg.iteration, msg.bit), {}).setdefault(msg.voter, msg.auth)

    def _handle_propose(self, msg: AdaptiveProposeMsg,
                        known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if msg.sender != collector_of(msg.epoch, self.n):
                return
            if not self._check_auth(msg.sender,
                                    ("Propose", msg.epoch, msg.bit),
                                    msg.auth):
                return
            if not self._check_cert(msg.cert, msg.epoch, msg.bit):
                return
            self._verification.mark_valid(msg)
        self._absorb_cert(msg.cert)
        self.proposals.setdefault(msg.epoch, msg)

    def _handle_king(self, msg: AdaptiveKingMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if msg.sender != collector_of(msg.epoch, self.n):
                return
            if not self._check_auth(msg.sender,
                                    ("King", msg.epoch, msg.bit), msg.auth):
                return
            voters = set()
            for vote in msg.votes:
                if (vote.iteration != msg.epoch or vote.bit != msg.bit
                        or not self._check_report(vote)):
                    return
                voters.add(vote.voter)
            if len(voters) < self.config.king_quorum:
                return
            self._verification.mark_valid(msg)
        # Unification: only nodes holding no lock follow the king — a
        # locked node's bit is already pinned by quorum intersection.
        if self.locked is None:
            self.belief = msg.bit

    def _handle_ack(self, msg: AdaptiveAckMsg, known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("Ack", msg.epoch, msg.bit), msg.auth):
                return
            self._verification.mark_valid(msg)
        self.acks_seen.setdefault(
            (msg.epoch, msg.bit), {}).setdefault(msg.sender, msg)

    def _handle_decide(self, msg: AdaptiveDecideMsg,
                       known: bool = False) -> None:
        if not (known or self._verification.is_known_valid(msg)):
            if msg.bit not in (0, 1):
                return
            if not self._check_auth(msg.sender,
                                    ("Decide", msg.epoch, msg.bit),
                                    msg.auth):
                return
            senders = set()
            for ack in msg.acks:
                if (ack.epoch != msg.epoch or ack.bit != msg.bit
                        or not self._check_auth(
                            ack.sender, ("Ack", ack.epoch, ack.bit),
                            ack.auth)):
                    return
                senders.add(ack.sender)
            if len(senders) < self.config.threshold:
                return
            self._verification.mark_valid(msg)
        # Adoption flows through the ordinary ack tally, so the carried
        # quorum makes _maybe_decide fire on it.
        recorded = self.acks_seen.setdefault((msg.epoch, msg.bit), {})
        for ack in msg.acks:
            recorded.setdefault(ack.sender, ack)

    # -- decision ------------------------------------------------------------
    def _decide_msg(self, epoch: int, bit: Bit) -> Optional[AdaptiveDecideMsg]:
        auth = self.config.authenticator.attempt(
            self.node_id, ("Decide", epoch, bit))
        if auth is None:
            return None
        quorum = self.acks_seen.get((epoch, bit), {})
        chosen = sorted(quorum.values(),
                        key=lambda a: a.sender)[:self.config.threshold]
        # Interned as a whole quorum: every decider picks the same acks,
        # so content-equal tuples collapse to one object.
        acks = intern_by_key(
            (AdaptiveDecideMsg, epoch, bit,
             tuple([(a.sender, _intern_field_key(a.auth)) for a in chosen])),
            lambda: tuple(chosen))
        return AdaptiveDecideMsg(epoch=epoch, bit=bit, acks=acks,
                                 sender=self.node_id, auth=auth)

    def _settle(self, ctx: RoundContext, epoch: int, bit: Bit,
                announce: bool) -> None:
        """Record the decision and either announce it or halt silently.

        ``announce`` is True for the collector (its decide multicast is
        the propagation) and for adopters whose quorum's send round was
        not yet trusted — the fast path's other ``n - 1`` deciders halt
        without a word.
        """
        self.decide(bit, ctx.round)
        self._decided_bit = bit
        message = self._decide_msg(epoch, bit)
        self._final_msg = message
        if announce and message is not None:
            ctx.multicast(message)
            if ctx.round >= self.config.trusted_send_round:
                self.halted = True
        else:
            self.halted = True

    def _maybe_decide(self, ctx: RoundContext) -> bool:
        """Adopt a decide quorum observed in the tally, if any."""
        ready = sorted(
            key for key, quorum in self.acks_seen.items()
            if len(quorum) >= self.config.threshold)
        for epoch, bit in ready:
            # The epoch's collector always announces — its decide
            # multicast *is* the propagation.  Everyone else adopted the
            # quorum from that multicast: it was staged in the epoch's
            # decide round, and a send at or past the trusted round
            # reached every honest node, so a silent halt strands nobody;
            # otherwise keep announcing until a trusted round passes.
            send_round = EPOCH_ROUNDS * (epoch - 1) + 3
            trusted = send_round >= self.config.trusted_send_round
            announce = self._is_collector(epoch) or not trusted
            self._settle(ctx, epoch, bit, announce=announce)
            return True
        return False

    # -- phase actions -------------------------------------------------------
    def _do_report(self, ctx: RoundContext, epoch: int) -> None:
        bit = self.belief
        auth = self.config.authenticator.attempt(
            self.node_id, ("Vote", epoch, bit))
        if auth is None:
            return
        collector = collector_of(epoch, self.n)
        if collector == self.node_id:
            # The network does not self-deliver; record the own report.
            self.votes_seen.setdefault((epoch, bit), {}).setdefault(
                self.node_id, auth)
        else:
            ctx.send(collector, intern_payload(SignedVote(
                iteration=epoch, bit=bit, voter=self.node_id, auth=auth)))

    def _do_propose(self, ctx: RoundContext, epoch: int) -> None:
        if not self._is_collector(epoch):
            return
        counts = {bit: self.votes_seen.get((epoch, bit), {})
                  for bit in (0, 1)}
        certified = [bit for bit in (0, 1)
                     if len(counts[bit]) >= self.config.threshold]
        if certified:
            # Same-epoch certificates for both bits cannot coexist
            # (quorum overlap beats the double-voters); pick the first.
            bit = certified[0]
            cert = intern_payload(certificate_from_votes(
                epoch, bit, counts[bit], self.config.threshold))
            auth = self.config.authenticator.attempt(
                self.node_id, ("Propose", epoch, bit))
            if auth is None:
                return
            message = AdaptiveProposeMsg(epoch=epoch, bit=bit, cert=cert,
                                         sender=self.node_id, auth=auth)
            ctx.multicast(message)
            self._absorb_cert(cert)
            self.proposals.setdefault(epoch, message)
            return
        backed = [bit for bit in (0, 1)
                  if len(counts[bit]) >= self.config.king_quorum]
        if not backed:
            return  # too few reports (pre-GST drops); the epoch idles out
        bit = max(backed, key=lambda b: (len(counts[b]),
                                         b == self.belief, -b))
        chosen = sorted(counts[bit].items())[:self.config.king_quorum]
        votes = intern_by_key(
            (AdaptiveKingMsg, epoch, bit,
             tuple([(voter, _intern_field_key(auth))
                    for voter, auth in chosen])),
            lambda: tuple(
                intern_payload(SignedVote(iteration=epoch, bit=bit,
                                          voter=voter, auth=auth))
                for voter, auth in chosen))
        auth = self.config.authenticator.attempt(
            self.node_id, ("King", epoch, bit))
        if auth is None:
            return
        if self.locked is None:
            self.belief = bit
        ctx.multicast(AdaptiveKingMsg(epoch=epoch, bit=bit, votes=votes,
                                      sender=self.node_id, auth=auth))

    def _do_ack(self, ctx: RoundContext, epoch: int) -> None:
        proposal = self.proposals.get(epoch)
        if proposal is None:
            return
        # The current epoch's certificate outranks any held lock, so a
        # valid propose is always acceptable (locks were absorbed on
        # receipt); ack it back to the collector.
        auth = self.config.authenticator.attempt(
            self.node_id, ("Ack", epoch, proposal.bit))
        if auth is None:
            return
        message = AdaptiveAckMsg(epoch=epoch, bit=proposal.bit,
                                 sender=self.node_id, auth=auth)
        collector = collector_of(epoch, self.n)
        if collector == self.node_id:
            self.acks_seen.setdefault(
                (epoch, proposal.bit), {}).setdefault(self.node_id, message)
        else:
            ctx.send(collector, message)

    # -- main entry point ----------------------------------------------------
    def on_round(self, ctx: RoundContext) -> None:
        if self._final_msg is not None:
            # Decided before sends were trusted: re-announce at each
            # epoch boundary until one announcement provably reaches
            # everyone, then halt (the GST-aware drain).
            if ctx.round % EPOCH_ROUNDS == 0:
                ctx.multicast(self._final_msg)
                if ctx.round >= self.config.trusted_send_round:
                    self.halted = True
            return
        self._process_inbox(ctx)
        if self._maybe_decide(ctx):
            return
        epoch, phase = epoch_schedule(ctx.round)
        if epoch > self.config.epochs:
            # Budget exhausted without a decision.
            self.halted = True
            return
        if phase == PHASE_REPORT:
            self._do_report(ctx, epoch)
        elif phase == PHASE_PROPOSE:
            self._do_propose(ctx, epoch)
        elif phase == PHASE_ACK:
            self._do_ack(ctx, epoch)
        # PHASE_DECIDE has no send of its own: the collector's quorum
        # lands in its decide-round inbox and _maybe_decide above fires.

    def output(self) -> Optional[Bit]:
        return self._decided_bit

    def finalize(self) -> Bit:
        decided = self.output()
        return decided if decided is not None else self.belief


# ---------------------------------------------------------------------------
# Builder.
# ---------------------------------------------------------------------------


def build_adaptive_ba(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    epochs: Optional[int] = None,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    conditions: Optional[NetworkConditions] = None,
) -> ProtocolInstance:
    """Construct an adaptive-BA execution over ``n`` nodes.

    ``f`` must satisfy ``n > 3f`` (resilience as implemented — see the
    module docstring); certificates and ack quorums are ``n - f``.
    ``conditions`` — the same
    :class:`~repro.sim.conditions.NetworkConditions` the engine will run
    under — derives the epoch budget and the decide-announcement drain
    gate from Δ/GST; ``None`` (or perfect conditions) is lock-step,
    where every round is trusted and the budget is ``f + 2`` epochs.
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 3 * f:
        raise ConfigurationError(
            f"adaptive BA requires f < n/3: n={n}, f={f}")
    if epochs is None:
        epochs = default_epochs(f, conditions)
    if epochs < 1:
        raise ConfigurationError(f"need at least one epoch, got {epochs}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = SignatureAuthenticator(registry)
    config = AdaptiveBaConfig(
        threshold=n - f,
        king_quorum=f + 1,
        epochs=epochs,
        authenticator=authenticator,
        trusted_send_round=trusted_send_round_for(conditions),
    )
    nodes = [AdaptiveBaNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    return ProtocolInstance(
        name="adaptive-ba",
        nodes=nodes,
        max_rounds=rounds_for_epochs(epochs),
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "authenticator": authenticator,
            "threshold": config.threshold,
            "config": config,
        },
    )
