"""Message types for the BA protocol family.

Message kinds follow Appendix C: ``Status``, ``Propose``, ``Vote``,
``Commit``, ``Terminate`` for the iterated BA, and ``Propose``/``ACK`` for
the phase-king family (Section 3).  Every message carries an ``auth``
field — a signature in the quadratic world, an eligibility ticket in the
subquadratic world — authenticating the tuple ``(kind, iteration, bit)``
exactly as the paper's conditional-multicast compiler prescribes.

All messages are frozen dataclasses: once multicast, nobody (including the
sender) can mutate them, matching the "messages already sent cannot be
retracted" rule of the execution model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.types import Bit, NodeId


@dataclass(frozen=True)
class SignedVote:
    """One authenticated iteration-``r`` vote for ``bit``.

    ``f + 1`` (resp. ``λ/2``) of these from distinct voters form a
    :class:`~repro.protocols.certificates.Certificate`.
    """

    iteration: int
    bit: Bit
    voter: NodeId
    auth: Any


@dataclass(frozen=True)
class StatusMsg:
    """``(Status, r, b, C)``: the sender's highest certificate so far."""

    iteration: int
    bit: Optional[Bit]
    certificate: Optional["Certificate"]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class ProposeMsg:
    """``(Propose, r, b)`` with the justifying certificate attached."""

    iteration: int
    bit: Bit
    certificate: Optional["Certificate"]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class VoteMsg:
    """``(Vote, r, b)``; for iterations > 1 the leader proposal that
    justifies the vote is attached (footnote 11)."""

    iteration: int
    bit: Bit
    sender: NodeId
    auth: Any
    proposal: Optional[ProposeMsg] = None

    def as_signed_vote(self) -> SignedVote:
        return SignedVote(iteration=self.iteration, bit=self.bit,
                          voter=self.sender, auth=self.auth)


@dataclass(frozen=True)
class CommitMsg:
    """``(Commit, r, b)`` with the vote certificate attached."""

    iteration: int
    bit: Bit
    certificate: "Certificate"
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class TerminateMsg:
    """``(Terminate, b)`` with the λ/2 (or f+1) commits attached."""

    bit: Bit
    iteration: int
    commits: Tuple[CommitMsg, ...]
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class PhaseKingProposeMsg:
    """``(propose, r, b)`` of the Section 3 phase-king family."""

    epoch: int
    bit: Bit
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class AckMsg:
    """``(ACK, r, b)`` of the Section 3 phase-king family."""

    epoch: int
    bit: Bit
    sender: NodeId
    auth: Any


@dataclass(frozen=True)
class PhaseKingDecideMsg:
    """``(Decide, r, b)`` of the GST-aware early-stopping phase-king.

    Carries a *unanimity certificate*: the ``n`` authenticated epoch-``r``
    ACKs for ``b`` the sender observed.  The certificate is transferable
    proof that every honest node ACKed ``b`` in epoch ``r`` — which (for
    ``f < n/3``) pins every honest tally at ``≥ 2n/3`` for ``b``, makes
    ``b`` sticky everywhere, and therefore fixes every honest output —
    so a receiver may adopt ``b`` and halt without waiting out the
    remaining epoch budget.  Only the early-stopping variant sends or
    accepts it; the fixed-budget protocol ignores unknown payloads.
    """

    epoch: int
    bit: Bit
    acks: Tuple[AckMsg, ...]
    sender: NodeId
    auth: Any


# NOTE: "Certificate" stays a string annotation (defined in
# repro.protocols.certificates) to avoid a circular import; dataclasses
# never resolve the annotation at runtime.
