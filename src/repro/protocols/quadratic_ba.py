"""The warmup quadratic BA (Appendix C.1, after Abraham et al. [1]).

Synchronous BA with ``n = 2f + 1`` (any ``n > 2f`` works), expected O(1)
iterations, and quadratic communication: every node multicasts in every
round, messages are signed, quorums are ``f + 1`` votes, and a random
leader oracle announces the proposer of each iteration.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.aba import AbaConfig, AbaNode, rounds_for_iterations
from repro.protocols.base import (
    OracleProposerPolicy,
    ProtocolInstance,
    SignatureAuthenticator,
)
from repro.rng import Seed
from repro.sim.leader import LeaderOracle, RandomLeaderOracle
from repro.types import Bit, NodeId

DEFAULT_MAX_ITERATIONS = 30


def build_quadratic_ba(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
    oracle: Optional[LeaderOracle] = None,
) -> ProtocolInstance:
    """Construct a quadratic-BA execution over ``n`` nodes.

    ``inputs[i]`` is node i's input bit.  ``f`` must satisfy ``n > 2f``
    (honest majority).
    """
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    if not n > 2 * f:
        raise ConfigurationError(
            f"quadratic BA requires honest majority: n={n} > 2f={2 * f}")
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = SignatureAuthenticator(registry)
    leader_oracle = oracle if oracle is not None else RandomLeaderOracle(n, seed)
    config = AbaConfig(
        threshold=f + 1,
        authenticator=authenticator,
        proposer=OracleProposerPolicy(leader_oracle, authenticator),
        max_iterations=max_iterations,
    )
    nodes = [AbaNode(node_id, n, inputs[node_id], config)
             for node_id in range(n)]
    input_map: Dict[NodeId, Bit] = {i: inputs[i] for i in range(n)}
    return ProtocolInstance(
        name="quadratic-ba",
        nodes=nodes,
        max_rounds=rounds_for_iterations(max_iterations) + 2,
        inputs=input_map,
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "authenticator": authenticator,
            "oracle": leader_oracle,
            "threshold": f + 1,
            "config": config,
        },
    )
