"""Byzantine Broadcast from BA (the Section 1.1 reduction).

*"Given an adaptively secure BA protocol, one can construct an adaptively
secure Byzantine Broadcast protocol by first having the designated sender
multicast its input to everyone, and then having everyone invoke the BA
instance [with the received bit as input].  If the BA scheme is
communication efficient, so is the resulting Byzantine Broadcast
scheme."*

The wrapper adds exactly one round: round 0 is the sender's input
multicast (channel-authenticated); from round 1 on, the wrapped BA nodes
run unmodified with their rounds shifted by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolInstance
from repro.sim.node import Node, RoundContext
from repro.types import BROADCAST_SENDER, Bit, NodeId


@dataclass(frozen=True)
class SenderInputMsg:
    """The designated sender's input announcement (round 0)."""

    bit: Bit
    sender: NodeId


class BroadcastNode(Node):
    """Wraps a BA node: learn the sender's bit, then run BA on it."""

    def __init__(self, inner: Node, sender: NodeId,
                 sender_input: Optional[Bit], default_input: Bit = 0) -> None:
        super().__init__(inner.node_id, inner.n)
        self.inner = inner
        self.sender = sender
        self.sender_input = sender_input
        self.default_input = default_input
        self.received_input: Optional[Bit] = None

    def on_round(self, ctx: RoundContext) -> None:
        if ctx.round == 0:
            if self.node_id == self.sender and self.sender_input is not None:
                ctx.multicast(SenderInputMsg(bit=self.sender_input,
                                             sender=self.sender))
                self.received_input = self.sender_input
            return
        if ctx.round == 1:
            for delivery in ctx.inbox:
                msg = delivery.payload
                # Channel authentication: trust only the true sender's
                # announcement, first one wins on equivocation.
                if (isinstance(msg, SenderInputMsg)
                        and delivery.sender == self.sender
                        and msg.bit in (0, 1)
                        and self.received_input is None):
                    self.received_input = msg.bit
            ba_input = (self.received_input if self.received_input is not None
                        else self.default_input)
            # Install the BA input on whichever state the inner node uses.
            self.inner.input_bit = ba_input
            if hasattr(self.inner, "belief"):
                self.inner.belief = ba_input
        # Delegate to the BA node with the round shifted down by one and
        # the sender announcement filtered out of the inbox.
        inner_ctx = RoundContext(
            self.node_id, ctx.round - 1,
            [d for d in ctx.inbox if not isinstance(d.payload, SenderInputMsg)],
            ctx.rng)
        self.inner.on_round(inner_ctx)
        ctx.staged.extend(inner_ctx.staged)
        self.halted = self.inner.halted
        if self.inner.decided_round is not None and self.decided_round is None:
            self.decide(self.inner.output(), ctx.round)

    def output(self) -> Optional[Bit]:
        return self.inner.output()

    def finalize(self) -> Bit:
        return self.inner.finalize()

    def reveal_state(self) -> dict:
        state = dict(vars(self))
        state["inner_state"] = self.inner.reveal_state()
        return state


def build_broadcast_from_ba(
    ba_builder: Callable[..., ProtocolInstance],
    n: int,
    f: int,
    sender_input: Bit,
    sender: NodeId = BROADCAST_SENDER,
    default_input: Bit = 0,
    **ba_kwargs,
) -> ProtocolInstance:
    """Wrap any agreement-protocol builder into a broadcast protocol.

    The BA instance is built with all-``default_input`` placeholder inputs
    — real inputs are installed in round 1 from the sender's multicast.
    """
    if sender_input not in (0, 1):
        raise ConfigurationError("sender input must be a bit")
    placeholder_inputs: Sequence[Bit] = [default_input] * n
    instance = ba_builder(n=n, f=f, inputs=placeholder_inputs, **ba_kwargs)
    nodes = [
        BroadcastNode(
            inner, sender,
            sender_input if inner.node_id == sender else None,
            default_input)
        for inner in instance.nodes
    ]
    return ProtocolInstance(
        name=f"broadcast[{instance.name}]",
        nodes=nodes,
        max_rounds=instance.max_rounds + 1,
        inputs={sender: sender_input},
        signing_capabilities=instance.signing_capabilities,
        mining_capabilities=instance.mining_capabilities,
        services=dict(instance.services, sender=sender,
                      inner_name=instance.name),
    )
