"""Multi-valued Byzantine Agreement from parallel binary instances.

The paper studies binary BA; this extension module composes ``width``
independent binary instances — one per bit of an ℓ-bit value — into an
agreement protocol on values, the standard reduction:

- **consistency**: every bit position is individually consistent, so the
  concatenated outputs agree;
- **validity**: if all honest nodes hold the same value, every bit
  instance starts unanimous and outputs that bit (binary validity);
- **complexity**: ℓ × the binary protocol's O(λ²) multicasts, still
  independent of n; all instances share rounds, so the round complexity
  is the maximum of ℓ geometrics — O(log ℓ) expected iterations.

Each instance's eligibility lottery is domain-separated by an instance
tag inside the topic (committees for bit 3 are independent of committees
for bit 5), preserving the per-instance Lemma 11 counting exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.eligibility.base import EligibilitySource, Topic
from repro.errors import ConfigurationError
from repro.protocols.aba import AbaConfig, AbaNode, rounds_for_iterations
from repro.protocols.base import (
    Authenticator,
    EligibilityAuthenticator,
    ProposerPolicy,
    ProtocolInstance,
)
from repro.protocols.subquadratic_ba import (
    DEFAULT_MAX_ITERATIONS,
    FMINE_MODE,
    committee_threshold,
    make_eligibility,
)
from repro.rng import Seed
from repro.sim.node import Node, RoundContext
from repro.sim.network import Delivery
from repro.types import Bit, NodeId, SecurityParameters


@dataclass(frozen=True)
class TaggedMsg:
    """A binary-instance message wrapped with its instance index."""

    instance: int
    inner: Any


def _tag_topic(tag: int, topic: Topic) -> Topic:
    """Domain-separate a topic by instance: kind stays first (for the
    difficulty schedule), the tag slots in right after."""
    return (topic[0], tag) + tuple(topic[1:])


class TaggedAuthenticator(Authenticator):
    """Authenticator whose lottery is domain-separated per instance."""

    def __init__(self, inner: EligibilityAuthenticator, tag: int) -> None:
        self.inner = inner
        self.tag = tag

    def attempt(self, node_id: NodeId, topic: Topic) -> Optional[Any]:
        return self.inner.attempt(node_id, _tag_topic(self.tag, topic))

    def check(self, node_id: NodeId, topic: Topic, auth: Any) -> bool:
        return self.inner.check(node_id, _tag_topic(self.tag, topic), auth)

    def capability_of(self, node_id: NodeId) -> Any:
        return self.inner.capability_of(node_id)


class TaggedMiningProposer(ProposerPolicy):
    """Mined proposals, domain-separated per instance."""

    def __init__(self, source: EligibilitySource, tag: int) -> None:
        self.source = source
        self.tag = tag

    def _topic(self, iteration: int, bit: Bit) -> Topic:
        return ("Propose", self.tag, iteration, bit)

    def attempt(self, node_id: NodeId, iteration: int,
                bit: Bit) -> Optional[Any]:
        return self.source.capability_for(node_id).try_mine(
            self._topic(iteration, bit))

    def check(self, node_id: NodeId, iteration: int, bit: Bit,
              auth: Any) -> bool:
        if auth is None:
            return False
        if getattr(auth, "node_id", None) != node_id:
            return False
        if getattr(auth, "topic", None) != self._topic(iteration, bit):
            return False
        return self.source.verify(auth)


class MultiValuedNode(Node):
    """Runs ``width`` binary AbaNodes in lockstep, one per value bit."""

    def __init__(self, node_id: NodeId, n: int, value: int, width: int,
                 configs: Sequence[AbaConfig]) -> None:
        super().__init__(node_id, n)
        if not 0 <= value < (1 << width):
            raise ConfigurationError(
                f"value {value} does not fit in {width} bits")
        self.value = value
        self.width = width
        self.instances: List[AbaNode] = [
            AbaNode(node_id, n, (value >> position) & 1, configs[position])
            for position in range(width)
        ]

    def on_round(self, ctx: RoundContext) -> None:
        # Split the inbox per instance.
        split: Dict[int, List[Delivery]] = {i: [] for i in range(self.width)}
        for delivery in ctx.inbox:
            msg = delivery.payload
            if isinstance(msg, TaggedMsg) and 0 <= msg.instance < self.width:
                split[msg.instance].append(
                    Delivery(sender=delivery.sender, payload=msg.inner))
        for index, inner in enumerate(self.instances):
            if inner.halted:
                continue
            inner_ctx = RoundContext(self.node_id, ctx.round, split[index],
                                     ctx.rng)
            inner.on_round(inner_ctx)
            for recipient, payload in inner_ctx.staged:
                ctx.staged.append(
                    (recipient, TaggedMsg(instance=index, inner=payload)))
        if all(inner.halted for inner in self.instances):
            if self.decided_round is None and self.output() is not None:
                self.decide(self.output(), ctx.round)
            self.halted = True

    def output(self) -> Optional[int]:
        bits = [inner.output() for inner in self.instances]
        if any(bit is None for bit in bits):
            return None
        return sum(bit << position for position, bit in enumerate(bits))

    def finalize(self) -> int:
        return sum(inner.finalize() << position
                   for position, inner in enumerate(self.instances))


def build_multivalued_ba(
    n: int,
    f: int,
    values: Sequence[int],
    width: int = 8,
    seed: Seed = 0,
    params: SecurityParameters = SecurityParameters(),
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    mode: str = FMINE_MODE,
) -> ProtocolInstance:
    """Agreement on ``width``-bit values via parallel binary BA."""
    if len(values) != n:
        raise ConfigurationError("need exactly one input value per node")
    if not n > 2 * f:
        raise ConfigurationError(
            f"multivalued BA requires honest majority: n={n} > 2f={2 * f}")
    if width < 1:
        raise ConfigurationError("width must be at least 1")
    eligibility = make_eligibility(n, params, seed, mode)
    base_authenticator = EligibilityAuthenticator(eligibility)
    threshold = committee_threshold(params)
    configs = [
        AbaConfig(
            threshold=threshold,
            authenticator=TaggedAuthenticator(base_authenticator, tag),
            proposer=TaggedMiningProposer(eligibility, tag),
            max_iterations=max_iterations,
        )
        for tag in range(width)
    ]
    nodes = [MultiValuedNode(node_id, n, values[node_id], width, configs)
             for node_id in range(n)]
    return ProtocolInstance(
        name=f"multivalued-ba[{width}bit,{mode}]",
        nodes=nodes,
        max_rounds=rounds_for_iterations(max_iterations) + 2,
        inputs={i: values[i] for i in range(n)},
        signing_capabilities=[],
        mining_capabilities=[eligibility.capability_for(i) for i in range(n)],
        services={
            "eligibility": eligibility,
            "threshold": threshold,
            "params": params,
            "width": width,
            "configs": configs,
        },
    )
