"""CRS-elected committee BA: the Section 1 motivating construction.

*"if there is a trusted common random string (CRS) that is chosen
independently of the adversary's corruption choices, we can use the CRS to
select a small committee of players, and then run any BA protocol among
the committee.  Finally the committee members may send their outputs to
all other non-committee players who could then output the majority bit."*

This is secure against a *static* adversary (the committee is chosen after
the corrupt set is fixed, so it has honest majority w.h.p.) and utterly
broken against an *adaptive* one, which simply corrupts the announced
committee — the failure that motivates the whole paper.  The
:mod:`repro.adversaries.adaptive_committee` attack demonstrates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.groups import SchnorrGroup, TEST_GROUP
from repro.crypto.registry import IDEAL_MODE, KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.aba import AbaConfig, AbaNode, rounds_for_iterations
from repro.protocols.base import (
    Authenticator,
    OracleProposerPolicy,
    ProtocolInstance,
)
from repro.rng import Seed, derive_rng
from repro.sim.leader import LeaderOracle
from repro.sim.node import Node, RoundContext
from repro.types import Bit, NodeId


@dataclass(frozen=True)
class CommitteeOutputMsg:
    """A committee member announcing the BA outcome to everyone."""

    bit: Bit
    sender: NodeId
    auth: Any


def elect_committee(n: int, size: int, crs_seed: Seed) -> List[NodeId]:
    """The CRS committee: a public pseudorandom subset of nodes."""
    rng = derive_rng(crs_seed, "crs-committee")
    return sorted(rng.sample(range(n), size))


class CommitteeAuthenticator(Authenticator):
    """Signature auth restricted to committee members."""

    def __init__(self, registry: KeyRegistry, committee: Sequence[NodeId]) -> None:
        self.registry = registry
        self.committee = frozenset(committee)

    def attempt(self, node_id: NodeId, topic) -> Optional[Any]:
        if node_id not in self.committee:
            return None
        return self.registry.capability_for(node_id).sign(topic)

    def check(self, node_id: NodeId, topic, auth: Any) -> bool:
        if node_id not in self.committee:
            return False
        return self.registry.verify(node_id, topic, auth)

    def capability_of(self, node_id: NodeId):
        return self.registry.capability_for(node_id)


class CommitteeLeaderOracle(LeaderOracle):
    """Random leader drawn from the committee (public announcement)."""

    def __init__(self, committee: Sequence[NodeId], seed: Seed) -> None:
        self.committee = list(committee)
        self._seed = seed
        self._memo: Dict[int, NodeId] = {}

    def leader(self, epoch: int) -> NodeId:
        if epoch not in self._memo:
            rng = derive_rng(self._seed, "committee-leader", epoch)
            self._memo[epoch] = rng.choice(self.committee)
        return self._memo[epoch]


class CommitteeMemberNode(AbaNode):
    """Committee member: runs BA in-committee, then announces the output."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 config: AbaConfig, registry: KeyRegistry) -> None:
        super().__init__(node_id, n, input_bit, config)
        self._registry = registry
        self._announced = False

    def _terminate(self, ctx: RoundContext, iteration: int, bit: Bit) -> None:
        if not self._announced:
            self._announced = True
            auth = self._registry.capability_for(self.node_id).sign(
                ("committee-output", bit))
            ctx.multicast(CommitteeOutputMsg(bit=bit, sender=self.node_id,
                                             auth=auth))
        super()._terminate(ctx, iteration, bit)


class ListenerNode(Node):
    """Non-member: outputs the majority of announced committee outputs."""

    def __init__(self, node_id: NodeId, n: int, input_bit: Bit,
                 registry: KeyRegistry, committee: Sequence[NodeId],
                 max_rounds: int) -> None:
        super().__init__(node_id, n)
        self.input_bit = input_bit
        self._registry = registry
        self.committee = frozenset(committee)
        self.majority = len(committee) // 2 + 1
        self.max_rounds = max_rounds
        self.outputs_seen: Dict[Bit, set] = {0: set(), 1: set()}
        self.decision: Optional[Bit] = None

    def on_round(self, ctx: RoundContext) -> None:
        for delivery in ctx.inbox:
            msg = delivery.payload
            if not isinstance(msg, CommitteeOutputMsg):
                continue
            if msg.sender not in self.committee or msg.bit not in (0, 1):
                continue
            if self._registry.verify(msg.sender, ("committee-output", msg.bit),
                                     msg.auth):
                self.outputs_seen[msg.bit].add(msg.sender)
        for bit in (0, 1):
            if self.decision is None and len(self.outputs_seen[bit]) >= self.majority:
                self.decision = bit
                self.decide(bit, ctx.round)
                self.halted = True
                return
        if ctx.round >= self.max_rounds - 1:
            self.halted = True

    def output(self) -> Optional[Bit]:
        return self.decision

    def finalize(self) -> Bit:
        if self.decision is not None:
            return self.decision
        # Best effort: plurality of whatever announcements arrived.
        zero, one = len(self.outputs_seen[0]), len(self.outputs_seen[1])
        if zero == one:
            return self.input_bit
        return 0 if zero > one else 1


def build_static_committee(
    n: int,
    f: int,
    inputs: Sequence[Bit],
    seed: Seed = 0,
    committee_size: Optional[int] = None,
    max_iterations: int = 20,
    registry_mode: str = IDEAL_MODE,
    group: SchnorrGroup = TEST_GROUP,
) -> ProtocolInstance:
    """Committee BA with a CRS-elected, publicly-known committee."""
    if len(inputs) != n:
        raise ConfigurationError("need exactly one input bit per node")
    size = committee_size if committee_size is not None else max(
        3, min(n, 2 * int(math.log2(max(n, 2))) + 1))
    if size > n:
        raise ConfigurationError("committee larger than the network")
    committee = elect_committee(n, size, seed)
    committee_f = (size - 1) // 2
    registry = KeyRegistry(n, registry_mode, group, seed)
    authenticator = CommitteeAuthenticator(registry, committee)
    config = AbaConfig(
        threshold=committee_f + 1,
        authenticator=authenticator,
        proposer=OracleProposerPolicy(
            CommitteeLeaderOracle(committee, seed), authenticator),
        max_iterations=max_iterations,
    )
    max_rounds = rounds_for_iterations(max_iterations) + 2
    committee_set = set(committee)
    nodes: List[Node] = []
    for node_id in range(n):
        if node_id in committee_set:
            nodes.append(CommitteeMemberNode(
                node_id, n, inputs[node_id], config, registry))
        else:
            nodes.append(ListenerNode(
                node_id, n, inputs[node_id], registry, committee, max_rounds))
    return ProtocolInstance(
        name="static-committee",
        nodes=nodes,
        max_rounds=max_rounds,
        inputs={i: inputs[i] for i in range(n)},
        signing_capabilities=[registry.capability_for(i) for i in range(n)],
        mining_capabilities=[],
        services={
            "registry": registry,
            "committee": committee,
            "threshold": committee_f + 1,
        },
    )
